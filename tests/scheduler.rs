//! Integration: the campaign-global bounded cell scheduler.
//!
//! Four properties:
//!
//! 1. **Ordering** — `Campaign::prefetch` executes cells in the order
//!    the cost model dictates, longest recorded duration first (with
//!    `jobs = 1` the single worker drains the priority queue in
//!    order, so the emitted `CellExecuted` sequence *is* the
//!    schedule).
//! 2. **Bounded concurrency** — under `jobs = N` at most N cells are
//!    ever in flight, no matter how many cells a prefetch submits.
//! 3. **Value identity** — the cost model and the `jobs` value only
//!    shape the schedule.  Cells run on independent per-cell clusters
//!    with per-cell noise seeds, so the assembled tables are
//!    bit-identical under any cost model or pool size, even with
//!    measurement noise enabled.
//! 4. **Exact accounting** — concurrent `prefetch` calls over one
//!    shared cache attribute every cell to exactly one disposition:
//!    their `cells_executed` / `backend_hits` sums equal the
//!    `CacheStats` counters exactly (the ISSUE 4 accounting fix).
//! 5. **Deadline ordering is safe and conservative** (property-based)
//!    — arbitrary cost/deadline mixes, NaN and infinities included,
//!    never panic and never lose a cell; and a deadline-free drain
//!    (`drain`, `drain_with_deadline(None)`, or a NaN deadline) pops
//!    in *exactly* the pure cost order the scheduler had before
//!    deadlines existed.

use kernel_couplings::coupling::{
    CacheStats, CellContext, CellKind, Disposition, KernelId, MeasurementKey, MemorySink,
    TelemetryEvent, TelemetrySink,
};
use kernel_couplings::experiments::render::Artifact;
use kernel_couplings::experiments::{
    bt, AnalysisSpec, Campaign, CellScheduler, MeasuredCost, Runner,
};
use kernel_couplings::npb::{Benchmark, Class};
use kernel_couplings::prophesy::CellStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// `CellExecuted` keys in emission order — the execution schedule when
/// the scheduler drains on one worker.
fn executed_keys(events: &[TelemetryEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::CellExecuted { key, .. } => Some(key.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn measured_cost_executes_longest_recorded_cells_first() {
    let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);

    // enumerate the spec's cells with a throwaway campaign, then give
    // each a crafted duration: ascending key order -> ascending cost,
    // so a longest-first schedule must be exact *reverse* key order —
    // the opposite of the deterministic tie-break a static model with
    // equal estimates would produce
    let probe = Campaign::builder(Runner::noise_free()).build();
    let mut cells = probe.cells(&spec).unwrap();
    cells.sort();
    cells.dedup();
    let model = MeasuredCost::from_durations(
        cells
            .iter()
            .enumerate()
            .map(|(i, k)| (k.to_string(), (i + 1) as f64)),
    );

    let sink = Arc::new(MemorySink::new());
    let campaign = Campaign::builder(Runner::noise_free())
        .cost_model(Arc::new(model))
        .sink(sink.clone())
        .jobs(1)
        .build();
    assert_eq!(campaign.cost_model_name(), "measured");
    assert_eq!(campaign.jobs(), 1);

    campaign.prefetch(std::slice::from_ref(&spec)).unwrap();

    let schedule = executed_keys(&sink.events());
    let expected: Vec<String> = cells.iter().rev().map(|k| k.to_string()).collect();
    assert_eq!(schedule.len(), cells.len(), "every cell executes once");
    assert_eq!(
        schedule, expected,
        "execution must follow recorded durations, longest first"
    );
}

/// Watches `CellStarted` / `CellFinished` spans and keeps the peak
/// number that were ever open at once.  During a cold `prefetch` the
/// only threads measuring are the scheduler's workers, so the peak is
/// the executor concurrency.
#[derive(Default)]
struct ConcurrencyProbe {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl TelemetrySink for ConcurrencyProbe {
    fn record(&self, event: TelemetryEvent) {
        match event {
            TelemetryEvent::CellStarted { .. } => {
                let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
                self.peak.fetch_max(now, Ordering::SeqCst);
            }
            TelemetryEvent::CellFinished { .. } => {
                self.active.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
    }
}

#[test]
fn jobs_bounds_the_number_of_concurrently_executing_cells() {
    let probe = Arc::new(ConcurrencyProbe::default());
    let campaign = Campaign::builder(Runner::noise_free())
        .sink(probe.clone())
        .jobs(3)
        .build();
    // plenty of cells across two experiments' worth of specs, all
    // cold, prefetched concurrently from two threads
    let (a, b) = (bt::table2_requests(), bt::table3_requests());
    std::thread::scope(|s| {
        let campaign = &campaign;
        let ha = s.spawn(move || campaign.prefetch(&a).unwrap());
        let hb = s.spawn(move || campaign.prefetch(&b).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let peak = probe.peak.load(Ordering::SeqCst);
    assert!(peak >= 1, "the probe saw the execute phase");
    assert!(
        peak <= 3,
        "at most jobs=3 cells may execute concurrently, saw {peak}"
    );
    assert!(
        campaign.cache_stats().executed > 3,
        "the bound was actually exercised by more cells than slots"
    );
}

/// Concurrent prefetches over one shared cache: every unique cell is
/// attributed to exactly one prefetch's disposition counters, so the
/// sums match the cache's own counters exactly — backend hits are
/// backend hits and nothing is double-reported as an execution.
#[test]
fn concurrent_prefetch_disposition_sums_match_cache_stats_exactly() {
    // warm a persistent store with the BT-S cells so the second
    // campaign sees real backend hits
    let store = Arc::new(CellStore::new());
    let warm = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
    Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build()
        .prefetch(std::slice::from_ref(&warm))
        .unwrap();

    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .jobs(4)
        .build();
    // overlapping cell sets: both prefetches want the warm BT-S cells,
    // one adds the cold chain-3 study on top
    let a = vec![
        warm.clone(),
        AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 3),
    ];
    let b = vec![warm];
    let (sa, sb) = std::thread::scope(|s| {
        let campaign = &campaign;
        let ha = s.spawn(move || campaign.prefetch(&a).unwrap());
        let hb = s.spawn(move || campaign.prefetch(&b).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let cache: CacheStats = campaign.cache_stats();

    assert_eq!(
        (sa.cells_executed + sb.cells_executed) as u64,
        cache.executed,
        "execution counts must sum to the cache's executed counter: {sa} / {sb}"
    );
    assert_eq!(
        (sa.backend_hits + sb.backend_hits) as u64,
        cache.backend_hits,
        "backend hits must be reported as backend hits: {sa} / {sb}"
    );
    assert!(cache.backend_hits > 0, "the warm store really served cells");
    assert!(cache.executed > 0, "the cold chain-3 cells really executed");
    for s in [&sa, &sb] {
        assert_eq!(
            s.cells_unique,
            s.cache_hits + s.backend_hits + s.cells_executed,
            "every unique cell lands in exactly one disposition: {s}"
        );
    }
}

#[test]
fn cost_model_permutes_the_schedule_but_not_the_tables() {
    // noise ON: the strongest form of the claim
    let static_campaign = Campaign::builder(Runner::default()).build();
    let static_table = Artifact::from_pair("t2", &bt::table2(&static_campaign).unwrap());
    assert_eq!(static_campaign.cost_model_name(), "static");

    // a thoroughly scrambled measured model: digest-derived durations
    // bear no relation to the static estimates, so the schedule is a
    // genuinely different permutation — and jobs=2 differs from the
    // default pool as well
    let mut model = MeasuredCost::new();
    for spec in bt::table2_requests() {
        for key in static_campaign.cells(&spec).unwrap() {
            model.record(&key, key.digest_u64() as f64);
        }
    }
    assert!(!model.is_empty());
    let measured_campaign = Campaign::builder(Runner::default())
        .cost_model(Arc::new(model))
        .jobs(2)
        .build();
    let measured_table = Artifact::from_pair("t2", &bt::table2(&measured_campaign).unwrap());

    assert_eq!(
        static_table.render_json(),
        measured_table.render_json(),
        "tables must be bit-identical under any cost model or pool size"
    );
}

/// A distinct, deterministic cell key per index.
fn cell_key(i: usize) -> MeasurementKey {
    CellContext {
        benchmark: "BT".into(),
        class: "S".into(),
        procs: 4,
        exec_digest: "w1t2".into(),
        machine_fingerprint: "fp".into(),
    }
    .key(CellKind::Chain(vec![KernelId(i as u32)]), 5)
}

/// A jobs=1 scheduler whose execute closure records pop order.
fn recording_scheduler(jobs: usize) -> (CellScheduler, Arc<Mutex<Vec<MeasurementKey>>>) {
    let order = Arc::new(Mutex::new(Vec::new()));
    let seen = order.clone();
    let scheduler = CellScheduler::new(
        jobs,
        Box::new(move |k| {
            seen.lock().unwrap().push(k.clone());
            Ok(Disposition::Executed)
        }),
    );
    (scheduler, order)
}

/// Any f64 a cost model (or a poisoned one) could produce.
fn any_cost() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e9f64..1e9,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(0.0),
    ]
}

/// Any deadline a serve batch (or a hostile client) could carry.
fn any_deadline() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        3 => Just(None),
        3 => (0.001f64..1e6).prop_map(Some),
        1 => Just(Some(f64::NAN)),
        1 => Just(Some(f64::INFINITY)),
        1 => Just(Some(50.0)), // a value groups can share: equal deadlines
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 5a: the deadline-then-cost-then-key ordering is total.
    /// Concurrent drains with arbitrary deadlines over overlapping,
    /// duplicated key sets — NaN costs, NaN deadlines, infinities —
    /// all settle: no panic, no deadlock, and every drain accounts
    /// for every cell it submitted (enqueued + shared, with each
    /// enqueued cell in exactly one disposition).
    #[test]
    fn arbitrary_deadline_mixes_never_panic_or_lose_cells(
        costs in prop::collection::vec(any_cost(), 1..10),
        deadlines in prop::collection::vec(any_deadline(), 1..4),
    ) {
        let (scheduler, order) = recording_scheduler(2);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = deadlines
                .iter()
                .map(|deadline| {
                    // overlapping keys across groups (i % 5) plus
                    // in-group duplicates exercise slot sharing
                    let cells: Vec<_> = costs
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| (cell_key(i % 5), c))
                        .collect();
                    let scheduler = &scheduler;
                    let deadline = *deadline;
                    s.spawn(move || scheduler.drain_with_deadline(cells, deadline))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for stats in results {
            let stats = stats.expect("a drain never fails on healthy cells");
            prop_assert_eq!(stats.enqueued + stats.shared, costs.len());
            prop_assert_eq!(
                stats.executed + stats.backend_hits + stats.hits,
                stats.enqueued
            );
        }
        let executed = order.lock().unwrap().len();
        let unique = costs.len().min(5);
        prop_assert!(
            executed >= unique,
            "every distinct key executes at least once ({executed} < {unique})"
        );
    }

    /// Property 5b: without a deadline the scheduler is bit-identical
    /// to its pre-deadline self.  For any cost vector, `drain`,
    /// `drain_with_deadline(None)` and a NaN deadline all pop in
    /// exactly the pure cost order (highest cost first under
    /// `total_cmp`, ties by canonical key order).
    #[test]
    fn deadline_free_drains_pop_in_the_original_pure_cost_order(
        costs in prop::collection::vec(any_cost(), 1..12),
    ) {
        let cells: Vec<(MeasurementKey, f64)> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| (cell_key(i), c))
            .collect();
        let mut expected = cells.clone();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let expected: Vec<MeasurementKey> =
            expected.into_iter().map(|(k, _)| k).collect();

        for variant in 0..3u8 {
            let (scheduler, order) = recording_scheduler(1);
            let stats = match variant {
                0 => scheduler.drain(cells.clone()),
                1 => scheduler.drain_with_deadline(cells.clone(), None),
                _ => scheduler.drain_with_deadline(cells.clone(), Some(f64::NAN)),
            }
            .expect("drain succeeds");
            prop_assert_eq!(stats.executed, cells.len());
            prop_assert_eq!(
                &*order.lock().unwrap(),
                &expected,
                "variant {} diverged from the pure cost order",
                variant
            );
        }
    }
}
