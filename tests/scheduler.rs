//! Integration: measured-cost campaign scheduling.
//!
//! Two properties of `kc_experiments::MeasuredCost`:
//!
//! 1. **Ordering** — `Campaign::prefetch` executes cells in the order
//!    the cost model dictates, longest recorded duration first (with
//!    one rayon thread the execute phase preserves schedule order, so
//!    the emitted `CellExecuted` sequence *is* the schedule).
//! 2. **Value identity** — the cost model only permutes the schedule.
//!    Cells run on independent per-cell clusters with per-cell noise
//!    seeds, so the assembled tables are bit-identical under any cost
//!    model, even with measurement noise enabled.
//!
//! The ordering test manipulates `RAYON_NUM_THREADS`, so this file is
//! its own integration binary (each test file is a separate process),
//! and the tests serialize on an env lock.

use kernel_couplings::coupling::{MemorySink, TelemetryEvent};
use kernel_couplings::experiments::render::Artifact;
use kernel_couplings::experiments::{bt, AnalysisSpec, Campaign, MeasuredCost, Runner};
use kernel_couplings::npb::{Benchmark, Class};
use std::sync::{Arc, Mutex};

/// The ordering test toggles the env var; serialize anything sharing
/// the process with it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// `CellExecuted` keys in emission order — the execution schedule when
/// the execute phase runs on one thread.
fn executed_keys(events: &[TelemetryEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::CellExecuted { key, .. } => Some(key.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn measured_cost_executes_longest_recorded_cells_first() {
    let _guard = ENV_LOCK.lock().unwrap();
    let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);

    // enumerate the spec's cells with a throwaway campaign, then give
    // each a crafted duration: ascending key order -> ascending cost,
    // so a longest-first schedule must be exact *reverse* key order —
    // the opposite of the deterministic tie-break a static model with
    // equal estimates would produce
    let probe = Campaign::builder(Runner::noise_free()).build();
    let mut cells = probe.cells(&spec).unwrap();
    cells.sort();
    cells.dedup();
    let model = MeasuredCost::from_durations(
        cells
            .iter()
            .enumerate()
            .map(|(i, k)| (k.to_string(), (i + 1) as f64)),
    );

    let sink = Arc::new(MemorySink::new());
    let campaign = Campaign::builder(Runner::noise_free())
        .cost_model(Arc::new(model))
        .sink(sink.clone())
        .build();
    assert_eq!(campaign.cost_model_name(), "measured");

    std::env::set_var("RAYON_NUM_THREADS", "1");
    campaign.prefetch(std::slice::from_ref(&spec)).unwrap();
    std::env::remove_var("RAYON_NUM_THREADS");

    let schedule = executed_keys(&sink.events());
    let expected: Vec<String> = cells.iter().rev().map(|k| k.to_string()).collect();
    assert_eq!(schedule.len(), cells.len(), "every cell executes once");
    assert_eq!(
        schedule, expected,
        "execution must follow recorded durations, longest first"
    );
}

#[test]
fn cost_model_permutes_the_schedule_but_not_the_tables() {
    let _guard = ENV_LOCK.lock().unwrap();

    // noise ON: the strongest form of the claim
    let static_campaign = Campaign::builder(Runner::default()).build();
    let static_table = Artifact::from_pair("t2", &bt::table2(&static_campaign).unwrap());
    assert_eq!(static_campaign.cost_model_name(), "static");

    // a thoroughly scrambled measured model: digest-derived durations
    // bear no relation to the static estimates, so the schedule is a
    // genuinely different permutation
    let mut model = MeasuredCost::new();
    for spec in bt::table2_requests() {
        for key in static_campaign.cells(&spec).unwrap() {
            model.record(&key, key.digest_u64() as f64);
        }
    }
    assert!(!model.is_empty());
    let measured_campaign = Campaign::builder(Runner::default())
        .cost_model(Arc::new(model))
        .build();
    let measured_table = Artifact::from_pair("t2", &bt::table2(&measured_campaign).unwrap());

    assert_eq!(
        static_table.render_json(),
        measured_table.render_json(),
        "tables must be bit-identical under any cost model"
    );
}
