//! Integration: the campaign-global bounded cell scheduler.
//!
//! Four properties:
//!
//! 1. **Ordering** — `Campaign::prefetch` executes cells in the order
//!    the cost model dictates, longest recorded duration first (with
//!    `jobs = 1` the single worker drains the priority queue in
//!    order, so the emitted `CellExecuted` sequence *is* the
//!    schedule).
//! 2. **Bounded concurrency** — under `jobs = N` at most N cells are
//!    ever in flight, no matter how many cells a prefetch submits.
//! 3. **Value identity** — the cost model and the `jobs` value only
//!    shape the schedule.  Cells run on independent per-cell clusters
//!    with per-cell noise seeds, so the assembled tables are
//!    bit-identical under any cost model or pool size, even with
//!    measurement noise enabled.
//! 4. **Exact accounting** — concurrent `prefetch` calls over one
//!    shared cache attribute every cell to exactly one disposition:
//!    their `cells_executed` / `backend_hits` sums equal the
//!    `CacheStats` counters exactly (the ISSUE 4 accounting fix).

use kernel_couplings::coupling::{CacheStats, MemorySink, TelemetryEvent, TelemetrySink};
use kernel_couplings::experiments::render::Artifact;
use kernel_couplings::experiments::{bt, AnalysisSpec, Campaign, MeasuredCost, Runner};
use kernel_couplings::npb::{Benchmark, Class};
use kernel_couplings::prophesy::CellStore;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// `CellExecuted` keys in emission order — the execution schedule when
/// the scheduler drains on one worker.
fn executed_keys(events: &[TelemetryEvent]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::CellExecuted { key, .. } => Some(key.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn measured_cost_executes_longest_recorded_cells_first() {
    let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);

    // enumerate the spec's cells with a throwaway campaign, then give
    // each a crafted duration: ascending key order -> ascending cost,
    // so a longest-first schedule must be exact *reverse* key order —
    // the opposite of the deterministic tie-break a static model with
    // equal estimates would produce
    let probe = Campaign::builder(Runner::noise_free()).build();
    let mut cells = probe.cells(&spec).unwrap();
    cells.sort();
    cells.dedup();
    let model = MeasuredCost::from_durations(
        cells
            .iter()
            .enumerate()
            .map(|(i, k)| (k.to_string(), (i + 1) as f64)),
    );

    let sink = Arc::new(MemorySink::new());
    let campaign = Campaign::builder(Runner::noise_free())
        .cost_model(Arc::new(model))
        .sink(sink.clone())
        .jobs(1)
        .build();
    assert_eq!(campaign.cost_model_name(), "measured");
    assert_eq!(campaign.jobs(), 1);

    campaign.prefetch(std::slice::from_ref(&spec)).unwrap();

    let schedule = executed_keys(&sink.events());
    let expected: Vec<String> = cells.iter().rev().map(|k| k.to_string()).collect();
    assert_eq!(schedule.len(), cells.len(), "every cell executes once");
    assert_eq!(
        schedule, expected,
        "execution must follow recorded durations, longest first"
    );
}

/// Watches `CellStarted` / `CellFinished` spans and keeps the peak
/// number that were ever open at once.  During a cold `prefetch` the
/// only threads measuring are the scheduler's workers, so the peak is
/// the executor concurrency.
#[derive(Default)]
struct ConcurrencyProbe {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl TelemetrySink for ConcurrencyProbe {
    fn record(&self, event: TelemetryEvent) {
        match event {
            TelemetryEvent::CellStarted { .. } => {
                let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
                self.peak.fetch_max(now, Ordering::SeqCst);
            }
            TelemetryEvent::CellFinished { .. } => {
                self.active.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
    }
}

#[test]
fn jobs_bounds_the_number_of_concurrently_executing_cells() {
    let probe = Arc::new(ConcurrencyProbe::default());
    let campaign = Campaign::builder(Runner::noise_free())
        .sink(probe.clone())
        .jobs(3)
        .build();
    // plenty of cells across two experiments' worth of specs, all
    // cold, prefetched concurrently from two threads
    let (a, b) = (bt::table2_requests(), bt::table3_requests());
    std::thread::scope(|s| {
        let campaign = &campaign;
        let ha = s.spawn(move || campaign.prefetch(&a).unwrap());
        let hb = s.spawn(move || campaign.prefetch(&b).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let peak = probe.peak.load(Ordering::SeqCst);
    assert!(peak >= 1, "the probe saw the execute phase");
    assert!(
        peak <= 3,
        "at most jobs=3 cells may execute concurrently, saw {peak}"
    );
    assert!(
        campaign.cache_stats().executed > 3,
        "the bound was actually exercised by more cells than slots"
    );
}

/// Concurrent prefetches over one shared cache: every unique cell is
/// attributed to exactly one prefetch's disposition counters, so the
/// sums match the cache's own counters exactly — backend hits are
/// backend hits and nothing is double-reported as an execution.
#[test]
fn concurrent_prefetch_disposition_sums_match_cache_stats_exactly() {
    // warm a persistent store with the BT-S cells so the second
    // campaign sees real backend hits
    let store = Arc::new(CellStore::new());
    let warm = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
    Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build()
        .prefetch(std::slice::from_ref(&warm))
        .unwrap();

    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .jobs(4)
        .build();
    // overlapping cell sets: both prefetches want the warm BT-S cells,
    // one adds the cold chain-3 study on top
    let a = vec![
        warm.clone(),
        AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 3),
    ];
    let b = vec![warm];
    let (sa, sb) = std::thread::scope(|s| {
        let campaign = &campaign;
        let ha = s.spawn(move || campaign.prefetch(&a).unwrap());
        let hb = s.spawn(move || campaign.prefetch(&b).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let cache: CacheStats = campaign.cache_stats();

    assert_eq!(
        (sa.cells_executed + sb.cells_executed) as u64,
        cache.executed,
        "execution counts must sum to the cache's executed counter: {sa} / {sb}"
    );
    assert_eq!(
        (sa.backend_hits + sb.backend_hits) as u64,
        cache.backend_hits,
        "backend hits must be reported as backend hits: {sa} / {sb}"
    );
    assert!(cache.backend_hits > 0, "the warm store really served cells");
    assert!(cache.executed > 0, "the cold chain-3 cells really executed");
    for s in [&sa, &sb] {
        assert_eq!(
            s.cells_unique,
            s.cache_hits + s.backend_hits + s.cells_executed,
            "every unique cell lands in exactly one disposition: {s}"
        );
    }
}

#[test]
fn cost_model_permutes_the_schedule_but_not_the_tables() {
    // noise ON: the strongest form of the claim
    let static_campaign = Campaign::builder(Runner::default()).build();
    let static_table = Artifact::from_pair("t2", &bt::table2(&static_campaign).unwrap());
    assert_eq!(static_campaign.cost_model_name(), "static");

    // a thoroughly scrambled measured model: digest-derived durations
    // bear no relation to the static estimates, so the schedule is a
    // genuinely different permutation — and jobs=2 differs from the
    // default pool as well
    let mut model = MeasuredCost::new();
    for spec in bt::table2_requests() {
        for key in static_campaign.cells(&spec).unwrap() {
            model.record(&key, key.digest_u64() as f64);
        }
    }
    assert!(!model.is_empty());
    let measured_campaign = Campaign::builder(Runner::default())
        .cost_model(Arc::new(model))
        .jobs(2)
        .build();
    let measured_table = Artifact::from_pair("t2", &bt::table2(&measured_campaign).unwrap());

    assert_eq!(
        static_table.render_json(),
        measured_table.render_json(),
        "tables must be bit-identical under any cost model or pool size"
    );
}
