//! Contracts of the cell-store backends: the JSON and sharded
//! formats hold bit-identical samples (property-tested over random
//! keys and awkward floats), concurrent readers and appenders over
//! one sharded store still execute each unique cell exactly once, a
//! torn segment tail recovers to its intact prefix, and the lossy hot
//! tier may evict whatever it wants without ever changing an answer.

use kernel_couplings::coupling::{CellKind, KernelId, MeasurementKey};
use kernel_couplings::experiments::{Campaign, CampaignEngine, Runner};
use kernel_couplings::prophesy::{open_store, CellBackend, CellStore, ShardedStore, StoreFormat};
use kernel_couplings::serve::{PredictRequest, Server, ServerConfig, Status};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Unique scratch directory per call (proptest reuses the process, so
/// a fixed name would bleed state between cases).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("kc_store_backend_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn build_key(
    benchmark: &str,
    class: &str,
    procs: usize,
    chain: &[usize],
    reps: u32,
) -> MeasurementKey {
    let cell = match chain.len() {
        0 => CellKind::Application,
        1 if chain[0] == 7 => CellKind::SerialOverhead,
        _ => CellKind::Chain(chain.iter().map(|&i| KernelId(i as u32)).collect()),
    };
    MeasurementKey {
        benchmark: benchmark.to_string(),
        class: class.to_string(),
        procs,
        cell,
        reps,
        exec_digest: "w1t2mpb1ci".to_string(),
        machine_fingerprint: "00ff00ff00ff00ff".to_string(),
    }
}

const BENCHMARKS: [&str; 4] = ["BT", "SP", "LU", "BT#fine"];
const CLASSES: [&str; 4] = ["S", "W", "A", "B"];

/// Sample values that stress float fidelity: subnormals, negative
/// zero, huge magnitudes, non-terminating decimals.
#[derive(Clone, Debug)]
struct AwkwardFloat;

impl Strategy for AwkwardFloat {
    type Value = f64;
    fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> f64 {
        const FIXED: [f64; 6] = [
            0.1,
            1.0 / 3.0,
            6.02e-23,
            f64::MIN_POSITIVE,
            -0.0,
            1.7976931348623157e308,
        ];
        match rng.below(FIXED.len() * 2) {
            i if i < FIXED.len() => FIXED[i],
            _ => -1.0e6 + rng.next_f64() * 2.0e6,
        }
    }
}

fn sample_strategy() -> impl Strategy<Value = f64> {
    AwkwardFloat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random cell populations land bit-identically in both formats:
    /// write through a JSON store and a sharded store, persist both,
    /// reload, and compare every sample's bits — plus a json→sharded
    /// convert-style copy through `entries()`.
    #[test]
    fn json_and_sharded_stores_roundtrip_identically(
        cells in prop::collection::vec(
            (
                (
                    0usize..4,  // benchmark
                    0usize..4,  // class
                    1usize..64, // procs
                    1u32..10,   // reps
                ),
                (
                    prop::collection::vec(0usize..8, 0..4), // chain
                    prop::collection::vec(sample_strategy(), 0..12),
                ),
            ),
            1..24,
        ),
    ) {
        let dir = scratch("prop");
        let json_path = dir.join("cells.json");
        let sharded_dir = dir.join("cells.kcs");
        let json = CellStore::open(&json_path).unwrap();
        let sharded = ShardedStore::create(&sharded_dir, 4).unwrap();

        for ((b, c, procs, reps), (chain, samples)) in &cells {
            let key = build_key(BENCHMARKS[*b], CLASSES[*c], *procs, chain, *reps);
            CellBackend::append(&json, &key, samples).unwrap();
            CellBackend::append(&sharded, &key, samples).unwrap();
        }
        CellBackend::flush(&json).unwrap();
        CellBackend::flush(&sharded).unwrap();

        // reload both from disk and compare entry-by-entry, bit-exact
        let json2 = CellStore::open(&json_path).unwrap();
        let sharded2 = ShardedStore::open(&sharded_dir).unwrap();
        let bits = |entries: Vec<(String, Vec<f64>)>| -> Vec<(String, Vec<u64>)> {
            entries
                .into_iter()
                .map(|(k, s)| (k, s.iter().map(|f| f.to_bits()).collect()))
                .collect()
        };
        let json_entries = bits(CellBackend::entries(&json2));
        let sharded_entries = bits(CellBackend::entries(&sharded2));
        prop_assert_eq!(&json_entries, &sharded_entries);

        // a convert-style copy (sharded → fresh json) reproduces the
        // original file byte for byte
        let copy_path = dir.join("copy.json");
        let copy = CellStore::open(&copy_path).unwrap();
        for (k, s) in CellBackend::entries(&sharded2) {
            copy.append_raw(&k, &s).unwrap();
        }
        CellBackend::flush(&copy).unwrap();
        prop_assert_eq!(
            std::fs::read(&json_path).unwrap(),
            std::fs::read(&copy_path).unwrap(),
            "sharded→json copy must reproduce the JSON file exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn quick_runner() -> Runner {
    let mut runner = Runner::noise_free();
    runner.reps = 2;
    runner
}

fn request(id: u64, benchmark: &str, procs: usize) -> PredictRequest {
    PredictRequest {
        id,
        benchmark: benchmark.to_string(),
        class: "S".to_string(),
        procs,
        chain_len: 2,
        fine: false,
        deadline_ms: None,
    }
}

/// The serve-concurrency warm-store contract, over the sharded
/// backend: a cold server fills the store through concurrent
/// requests, then a fresh server over the warm directory answers a
/// 100-request burst with zero executions — each unique cell executed
/// exactly once, ever.
#[test]
fn sharded_warm_store_answers_concurrent_requests_with_zero_executions() {
    let dir = scratch("serve");
    let store_dir = dir.join("cells.kcs");
    let store: Arc<dyn CellBackend> = open_store(&store_dir, Some(StoreFormat::Sharded)).unwrap();

    // phase 1: concurrent clients fill the store
    {
        let campaign = Arc::new(
            Campaign::builder(quick_runner())
                .backend(Box::new(Arc::clone(&store)))
                .jobs(4)
                .build(),
        );
        let engine = Arc::new(CampaignEngine::new(Arc::clone(&campaign)));
        let server = Server::new(engine, ServerConfig::default());
        std::thread::scope(|scope| {
            for client in 0..8u64 {
                let server = &server;
                scope.spawn(move || {
                    let (benchmark, procs) = if client % 2 == 0 {
                        ("bt", 4)
                    } else {
                        ("lu", 8)
                    };
                    let response = server.submit(request(client, benchmark, procs)).wait();
                    assert_eq!(response.status, Status::Ok, "{:?}", response.error);
                });
            }
        });
        server.shutdown();
        assert!(campaign.cache_stats().executed > 0);
        store.flush().unwrap();
    }
    assert!(!store.is_empty());

    // phase 2: a fresh process image (new store handle, cold hot
    // tier) over the same directory serves everything from disk
    let store2: Arc<dyn CellBackend> = open_store(&store_dir, None).unwrap();
    assert_eq!(store2.format(), StoreFormat::Sharded);
    let campaign = Arc::new(
        Campaign::builder(quick_runner())
            .backend(Box::new(Arc::clone(&store2)))
            .jobs(4)
            .build(),
    );
    let engine = Arc::new(CampaignEngine::new(Arc::clone(&campaign)));
    let server = Server::new(engine, ServerConfig::default());
    let tickets: Vec<_> = (0..100u64)
        .map(|i| {
            let (benchmark, procs) = if i % 2 == 0 { ("bt", 4) } else { ("lu", 8) };
            server.submit(request(i, benchmark, procs))
        })
        .collect();
    for ticket in tickets {
        let response = ticket.wait();
        assert_eq!(response.status, Status::Ok, "{:?}", response.error);
    }
    server.shutdown();

    let stats = campaign.cache_stats();
    assert_eq!(stats.executed, 0, "warm sharded store must execute nothing");
    assert!(stats.backend_hits > 0, "cells should come from the store");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Raw concurrent appenders and readers on one sharded store: every
/// appended cell is readable afterwards, and appends from different
/// threads never corrupt each other's frames (the per-shard lock
/// keeps frames atomic).
#[test]
fn concurrent_appenders_and_readers_lose_nothing() {
    let dir = scratch("raw");
    let store = Arc::new(ShardedStore::create(&dir.join("cells.kcs"), 4).unwrap());
    let writers = 8usize;
    let per_writer = 25usize;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..per_writer {
                    let key = format!("writer{w}|cell{i}");
                    store.append_raw(&key, &[w as f64, i as f64]).unwrap();
                    // read-your-writes while others are appending
                    assert_eq!(
                        store.get_raw(&key),
                        Some(vec![w as f64, i as f64]),
                        "{key} must be readable immediately"
                    );
                }
            });
        }
    });
    assert_eq!(CellBackend::len(&*store), writers * per_writer);
    // a fresh open (no hot tier, pure disk) sees every frame intact
    let reopened = ShardedStore::open(&dir.join("cells.kcs")).unwrap();
    assert_eq!(reopened.repaired_bytes(), 0, "no torn frames were written");
    for w in 0..writers {
        for i in 0..per_writer {
            assert_eq!(
                reopened.get_raw(&format!("writer{w}|cell{i}")),
                Some(vec![w as f64, i as f64])
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-write recovery end to end: truncate a segment mid-record and
/// assert the intact prefix survives, the torn cell is gone, and the
/// store accepts (and persists) appends after the repair.
#[test]
fn truncated_segment_recovers_the_intact_prefix() {
    let dir = scratch("torn");
    let store_dir = dir.join("cells.kcs");
    {
        let store = ShardedStore::create(&store_dir, 1).unwrap();
        for i in 0..10 {
            store.append_raw(&format!("cell{i}"), &[i as f64]).unwrap();
        }
        store.flush().unwrap();
    }
    let segment = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("one segment file");
    // cut into the middle of the last record
    let len = std::fs::metadata(&segment).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let store = ShardedStore::open(&store_dir).unwrap();
    assert!(store.repaired_bytes() > 0);
    for i in 0..9 {
        assert_eq!(
            store.get_raw(&format!("cell{i}")),
            Some(vec![i as f64]),
            "intact prefix cell{i} must survive"
        );
    }
    assert_eq!(store.get_raw("cell9"), None, "the torn record is dropped");
    store.append_raw("cell9", &[99.0]).unwrap();
    store.flush().unwrap();
    let reopened = ShardedStore::open(&store_dir).unwrap();
    assert_eq!(reopened.get_raw("cell9"), Some(vec![99.0]));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty sample set is a real cell, not a miss: it round-trips
/// through both formats, and both backends count loading it as a hit,
/// so the hit/miss accounting of the JSON and sharded stores stays in
/// lockstep over the same request sequence.
#[test]
fn empty_frames_roundtrip_and_count_as_hits_in_both_backends() {
    let dir = scratch("empty");
    let json = CellStore::open(&dir.join("cells.json")).unwrap();
    let sharded = ShardedStore::create(&dir.join("cells.kcs"), 2).unwrap();
    for store in [&json as &dyn CellBackend, &sharded as &dyn CellBackend] {
        store.append_raw("BT|empty", &[]).unwrap();
        store.append_raw("BT|full", &[1.5, 2.5]).unwrap();
        store.flush().unwrap();
    }

    // reload from disk: the empty frame survives as Some(vec![])
    let json = CellStore::open(&dir.join("cells.json")).unwrap();
    let sharded = ShardedStore::open(&dir.join("cells.kcs")).unwrap();
    for store in [&json as &dyn CellBackend, &sharded as &dyn CellBackend] {
        assert_eq!(store.get_raw("BT|empty"), Some(vec![]));
        assert_eq!(store.get_raw("BT|full"), Some(vec![1.5, 2.5]));
        assert_eq!(store.get_raw("BT|absent"), None);
        let stats = store.stats();
        assert_eq!(stats.loads, 3, "{}: three loads issued", store.format());
        assert_eq!(
            stats.load_hits,
            2,
            "{}: the empty cell is a hit, only the absent key misses",
            store.format()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stale index sidecar (the segment grew after the sidecar was
/// written) is rebuilt by scan at open — never trusted — and the
/// rebuilt index answers every key, including the post-flush appends
/// the sidecar has never seen.  The next flush refreshes the sidecar,
/// so the open after that loads it without a scan.
#[test]
fn stale_index_sidecar_is_rebuilt_not_believed() {
    let dir = scratch("stale_idx");
    let store_dir = dir.join("cells.kcs");
    {
        let store = ShardedStore::create(&store_dir, 1).unwrap();
        for i in 0..5 {
            store.append_raw(&format!("cell{i}"), &[i as f64]).unwrap();
        }
        store.flush().unwrap(); // writes a fresh shard-000.idx
        for i in 5..8 {
            // lands in the segment immediately; the sidecar on disk
            // now records a shorter segment than reality
            store.append_raw(&format!("cell{i}"), &[i as f64]).unwrap();
        }
        // dropped without flush: sidecar stays stale on disk
    }
    assert!(
        std::fs::read_dir(&store_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|x| x == "idx")),
        "the first flush must have left a sidecar behind"
    );

    let store = ShardedStore::open(&store_dir).unwrap();
    let reads = store.read_stats();
    assert_eq!(reads.sidecar_loads, 0, "a stale sidecar must not load");
    assert!(reads.index_rebuilds >= 1, "the index is rebuilt by scan");
    for i in 0..8 {
        assert_eq!(
            store.get_raw(&format!("cell{i}")),
            Some(vec![i as f64]),
            "cell{i} must be answered from the rebuilt index"
        );
    }
    store.flush().unwrap(); // rewrites the sidecar at the true length

    let store = ShardedStore::open(&store_dir).unwrap();
    let reads = store.read_stats();
    assert!(reads.sidecar_loads >= 1, "the refreshed sidecar loads");
    assert_eq!(reads.index_rebuilds, 0, "no scan once the sidecar is fresh");
    for i in 0..8 {
        assert_eq!(store.get_raw(&format!("cell{i}")), Some(vec![i as f64]));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Readers racing repeated compactions on one handle: compaction
/// rewrites segments and swaps indexes under the shard lock, so a
/// positioned read must never observe a half-rewritten segment.  The
/// compacting thread re-appends identical samples between rounds to
/// keep creating superseded frames without ever changing an answer.
#[test]
fn readers_racing_compaction_always_see_consistent_answers() {
    let dir = scratch("race");
    let store_dir = dir.join("cells.kcs");
    let keys = 60usize;
    {
        let store = ShardedStore::create(&store_dir, 4).unwrap();
        for i in 0..keys {
            store.append_raw(&format!("cell{i}"), &[0.0]).unwrap();
            store
                .append_raw(&format!("cell{i}"), &[i as f64, 0.5])
                .unwrap();
        }
        store.flush().unwrap();
    }
    // a one-slot hot tier pins nearly every read to the segment path
    let store = Arc::new(ShardedStore::open_with_hot_slots(&store_dir, 1).unwrap());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _round in 0..6 {
                    for i in 0..keys {
                        assert_eq!(
                            store.get_raw(&format!("cell{i}")),
                            Some(vec![i as f64, 0.5]),
                            "cell{i} must be stable across compactions"
                        );
                    }
                }
            });
        }
        let store = Arc::clone(&store);
        scope.spawn(move || {
            for round in 0..8 {
                // identical re-appends: superseded frames pile up,
                // answers stay fixed
                for i in (round % 4..keys).step_by(4) {
                    store
                        .append_raw(&format!("cell{i}"), &[i as f64, 0.5])
                        .unwrap();
                }
                let report = store.compact().unwrap();
                assert!(report.records_after <= report.records_before);
            }
        });
    });
    assert!(
        store.read_stats().positioned_reads > 0,
        "the racing reads must have exercised the positioned-read path"
    );
    let reopened = ShardedStore::open(&store_dir).unwrap();
    for i in 0..keys {
        assert_eq!(
            reopened.get_raw(&format!("cell{i}")),
            Some(vec![i as f64, 0.5])
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Absent keys are answered by the per-segment existence filter with
/// zero segment I/O: the filtered-absent counter moves, the
/// positioned-read and fallback-scan counters do not.
#[test]
fn absent_keys_answer_without_touching_segments() {
    let dir = scratch("absent");
    let store_dir = dir.join("cells.kcs");
    {
        let store = ShardedStore::create(&store_dir, 4).unwrap();
        for i in 0..20 {
            store.append_raw(&format!("cell{i}"), &[i as f64]).unwrap();
        }
        store.flush().unwrap();
    }
    let store = ShardedStore::open_with_hot_slots(&store_dir, 1).unwrap();
    // prime a baseline of real segment reads
    for i in 0..20 {
        assert!(store.get_raw(&format!("cell{i}")).is_some());
    }
    let before = store.read_stats();
    assert!(before.positioned_reads > 0);

    for i in 0..30 {
        assert_eq!(store.get_raw(&format!("nope{i}")), None);
    }
    let after = store.read_stats();
    assert!(
        after.filtered_absent >= before.filtered_absent + 30,
        "every absent key is filtered ({} -> {})",
        before.filtered_absent,
        after.filtered_absent
    );
    assert_eq!(
        after.positioned_reads, before.positioned_reads,
        "absent keys must not read segments"
    );
    assert_eq!(
        after.fallback_scans, before.fallback_scans,
        "absent keys must not trigger fallback scans"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lossy-tier correctness contract: with a single hot slot every
/// distinct key evicts the previous one, so almost every read is a
/// tier miss — and every answer must still be exactly right (served
/// from the shard files).
#[test]
fn single_slot_hot_tier_still_answers_every_key_correctly() {
    let dir = scratch("lossy");
    let store_dir = dir.join("cells.kcs");
    {
        let store = ShardedStore::create(&store_dir, 4).unwrap();
        for i in 0..50 {
            store
                .append_raw(&format!("cell{i}"), &[i as f64, 0.5])
                .unwrap();
        }
        store.flush().unwrap();
    }
    let store = ShardedStore::open_with_hot_slots(&store_dir, 1).unwrap();
    // interleaved repeats: every get collides with its predecessor
    for round in 0..3 {
        for i in 0..50 {
            assert_eq!(
                store.get_raw(&format!("cell{i}")),
                Some(vec![i as f64, 0.5]),
                "round {round}: eviction must never change an answer"
            );
        }
    }
    let hot = store.hot_stats();
    assert!(
        hot.evictions >= 100,
        "a single slot under 50 keys must evict constantly (saw {})",
        hot.evictions
    );
    assert!(hot.misses >= hot.hits, "most probes collide away");
    let _ = std::fs::remove_dir_all(&dir);
}
