//! Golden-table regression harness: every reproduced paper table,
//! compared value-by-value against committed snapshots.
//!
//! `artifacts/golden/` holds one JSON snapshot per table (the
//! noise-free IBM SP configuration) plus `cells.json`, a
//! `kc-prophesy` cell store with the raw samples of every measurement
//! cell the tables need.  The main test assembles all tables with the
//! committed store as backend and asserts `executed == 0` — so a
//! drift in the `MeasurementKey` schema (which would silently
//! re-simulate instead of reusing committed cells) fails loudly — and
//! every numeric value must match its snapshot within a relative
//! tolerance of 1e-6.  A second test re-simulates the two cheapest
//! tables from scratch, catching drift in the simulation itself.
//!
//! Regenerate the snapshots after an intentional model change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden_tables
//! ```

use kernel_couplings::experiments::render::Artifact;
use kernel_couplings::experiments::{
    ablations, analytic, bt, granularity, lu, machines, reuse, sp, transitions, Campaign,
    MeasuredCost, Runner,
};
use kernel_couplings::npb::{Benchmark, Class};
use kernel_couplings::prophesy::CellStore;
use serde_json::Value;
use std::path::PathBuf;
use std::sync::Arc;

/// Per-value relative tolerance for table comparisons.
const REL_TOL: f64 = 1e-6;

/// Transition-study shape (mirrors the `paper_tables` binary).
const TRANSITION_CLASSES: [Class; 3] = [Class::S, Class::W, Class::A];
const TRANSITION_PROCS: [usize; 4] = [4, 9, 16, 25];

/// Ablation/reuse/granularity shapes (also mirroring the binary).
const L2_CAPS: [usize; 5] = [1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20];
const CONTENTIONS: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.1];
const NOISE_MULTS: [f64; 4] = [0.0, 1.0, 4.0, 16.0];
const GRANULARITY_PROCS: [usize; 3] = [4, 9, 16];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts/golden")
}

fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Every golden table, assembled through one shared campaign.
fn all_artifacts(campaign: &Campaign) -> Vec<Artifact> {
    vec![
        Artifact::from_pair("table2_bt_s", &bt::table2(campaign).unwrap()),
        Artifact::from_pair("table3_bt_w", &bt::table3(campaign).unwrap()),
        Artifact::from_pair("table4_bt_a", &bt::table4(campaign).unwrap()),
        Artifact::from_pair("table6a_sp_w", &sp::table6(campaign, Class::W).unwrap()),
        Artifact::from_pair("table6b_sp_a", &sp::table6(campaign, Class::A).unwrap()),
        Artifact::from_pair("table6c_sp_b", &sp::table6(campaign, Class::B).unwrap()),
        Artifact::from_pair("table8a_lu_w", &lu::table8(campaign, Class::W).unwrap()),
        Artifact::from_pair("table8b_lu_a", &lu::table8(campaign, Class::A).unwrap()),
        Artifact::from_pair("table8c_lu_b", &lu::table8(campaign, Class::B).unwrap()),
        Artifact::from_couplings(
            "transitions",
            vec![
                transitions::transition_table(campaign, &TRANSITION_CLASSES, &TRANSITION_PROCS)
                    .unwrap(),
                transitions::regime_table(campaign, &TRANSITION_CLASSES, &TRANSITION_PROCS),
            ],
        ),
    ]
}

/// Walk two JSON values in lockstep, recording every mismatch.
/// Numbers compare with relative tolerance `tol` (absolute 1e-12 near
/// zero); everything else must match exactly.
fn diff_values(golden: &Value, fresh: &Value, path: &str, tol: f64, diffs: &mut Vec<String>) {
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    };
    match (num(golden), num(fresh)) {
        (Some(g), Some(f)) => {
            let scale = g.abs().max(f.abs());
            if (g - f).abs() > tol * scale + 1e-12 {
                diffs.push(format!("{path}: golden {g} vs fresh {f}"));
            }
            return;
        }
        (None, None) => {}
        _ => {
            diffs.push(format!("{path}: type mismatch ({golden:?} vs {fresh:?})"));
            return;
        }
    }
    match (golden, fresh) {
        (Value::Object(g), Value::Object(f)) => {
            if g.len() != f.len() {
                diffs.push(format!("{path}: {} fields vs {}", g.len(), f.len()));
                return;
            }
            for ((gk, gv), (fk, fv)) in g.iter().zip(f) {
                if gk != fk {
                    diffs.push(format!("{path}: field '{gk}' vs '{fk}'"));
                    return;
                }
                diff_values(gv, fv, &format!("{path}.{gk}"), tol, diffs);
            }
        }
        (Value::Array(g), Value::Array(f)) => {
            if g.len() != f.len() {
                diffs.push(format!("{path}: {} items vs {}", g.len(), f.len()));
                return;
            }
            for (i, (gv, fv)) in g.iter().zip(f).enumerate() {
                diff_values(gv, fv, &format!("{path}[{i}]"), tol, diffs);
            }
        }
        _ => {
            if golden != fresh {
                diffs.push(format!("{path}: golden {golden:?} vs fresh {fresh:?}"));
            }
        }
    }
}

/// Compare one artifact against its committed snapshot.
fn check_artifact(artifact: &Artifact, diffs: &mut Vec<String>) {
    let path = golden_dir().join(format!("{}.json", artifact.id));
    let golden: Value = serde_json::from_str(
        &std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display())),
    )
    .expect("golden snapshot parses");
    let fresh: Value =
        serde_json::from_str(&artifact.render_json()).expect("fresh artifact parses");
    diff_values(&golden, &fresh, &artifact.id, REL_TOL, diffs);
}

#[test]
fn golden_tables_match_store_backed_assembly() {
    let dir = golden_dir();
    let cells_path = dir.join("cells.json");

    if updating() {
        // regenerate: simulate everything from scratch, then commit
        // the snapshots and the raw cells they were built from
        let store = Arc::new(CellStore::new());
        let campaign = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        std::fs::create_dir_all(&dir).unwrap();
        for artifact in all_artifacts(&campaign) {
            let json = artifact.render_json();
            std::fs::write(dir.join(format!("{}.json", artifact.id)), json).unwrap();
        }
        store.save(&cells_path).unwrap();
        eprintln!(
            "regenerated {} golden cells into {}",
            store.len(),
            dir.display()
        );
        return;
    }

    let store = Arc::new(
        CellStore::load(&cells_path)
            .unwrap_or_else(|e| panic!("missing golden cell store {}: {e}", cells_path.display())),
    );
    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    let artifacts = all_artifacts(&campaign);

    // every cell must come from the committed store: an execution
    // here means the key schema (or enumeration) drifted and the
    // tables were silently re-simulated
    let cache = campaign.cache_stats();
    assert_eq!(
        cache.executed, 0,
        "cells missing from the golden store were re-simulated"
    );
    assert!(cache.backend_hits > 0);

    let mut diffs = Vec::new();
    for artifact in &artifacts {
        check_artifact(artifact, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "{} value(s) drifted from the golden tables:\n  {}",
        diffs.len(),
        diffs.join("\n  ")
    );

    // the same assembly under a measured cost model (scrambled,
    // digest-derived durations for every committed cell) must be
    // value-identical: scheduling order is not allowed to leak into
    // the tables
    let model = MeasuredCost::from_durations(
        store
            .keys()
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), (i * 7919 % 997) as f64)),
    );
    let measured = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .cost_model(std::sync::Arc::new(model))
        .build();
    let mut diffs = Vec::new();
    for artifact in &all_artifacts(&measured) {
        check_artifact(artifact, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "measured-cost scheduling changed golden values:\n  {}",
        diffs.join("\n  ")
    );
}

/// The extended studies (analytic composition per paper Eq. 3, and the
/// cross-machine comparison), mirroring the `paper_tables` shapes.
fn extended_artifacts(campaign: &Campaign) -> Vec<Artifact> {
    let mut analytic_art = Artifact::from_couplings("analytic", vec![]);
    analytic_art.predictions = vec![
        analytic::analytic_table(campaign, Benchmark::Bt, Class::W, &[4, 9, 16, 25], 3).unwrap(),
        analytic::analytic_table(campaign, Benchmark::Sp, Class::A, &[4, 9, 16, 25], 5).unwrap(),
        analytic::analytic_table(campaign, Benchmark::Lu, Class::A, &[4, 8, 16, 32], 3).unwrap(),
    ];
    let (t1, o1) = machines::machine_comparison(campaign, Benchmark::Bt, Class::W, 9, 3).unwrap();
    let (t2, o2) = machines::machine_comparison(campaign, Benchmark::Lu, Class::W, 8, 3).unwrap();
    // the headline claim the machines table encodes must keep holding
    for outcomes in [&o1, &o2] {
        let (pred_ratio, actual_ratio) = machines::relative_performance(outcomes);
        assert!(
            (pred_ratio - actual_ratio).abs() / actual_ratio < 0.10,
            "cross-machine ratio drifted: predicted {pred_ratio:.3}, actual {actual_ratio:.3}"
        );
    }
    vec![
        analytic_art,
        Artifact::from_couplings("machines", vec![t1, t2]),
    ]
}

/// Same harness as the main test, for the analytic-composition and
/// machine-comparison studies.  These need cells the paper tables
/// don't (machine-override fingerprints, SP 5-kernel windows), so they
/// carry their own committed store, `cells_extended.json`.
#[test]
fn extended_golden_tables_match_store_backed_assembly() {
    let dir = golden_dir();
    let cells_path = dir.join("cells_extended.json");

    if updating() {
        let store = Arc::new(CellStore::new());
        let campaign = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        std::fs::create_dir_all(&dir).unwrap();
        for artifact in extended_artifacts(&campaign) {
            let json = artifact.render_json();
            std::fs::write(dir.join(format!("{}.json", artifact.id)), json).unwrap();
        }
        store.save(&cells_path).unwrap();
        eprintln!(
            "regenerated {} extended golden cells into {}",
            store.len(),
            dir.display()
        );
        return;
    }

    let store = Arc::new(
        CellStore::load(&cells_path)
            .unwrap_or_else(|e| panic!("missing golden cell store {}: {e}", cells_path.display())),
    );
    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    let artifacts = extended_artifacts(&campaign);

    let cache = campaign.cache_stats();
    assert_eq!(
        cache.executed, 0,
        "cells missing from the extended golden store were re-simulated"
    );
    assert!(cache.backend_hits > 0);

    let mut diffs = Vec::new();
    for artifact in &artifacts {
        check_artifact(artifact, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "{} value(s) drifted from the extended golden tables:\n  {}",
        diffs.len(),
        diffs.join("\n  ")
    );
}

/// The remaining study tables — ablation sweeps, coefficient-reuse
/// transfers and the granularity comparison — with the same
/// `paper_tables` shapes.  Their cells (machine-variant fingerprints
/// for the sweeps, fine-grained kernels for granularity) overlap
/// neither committed store, so they carry `cells_studies.json`.
fn studies_artifacts(campaign: &Campaign) -> Vec<Artifact> {
    let ablations_art = Artifact::from_couplings(
        "ablations",
        vec![
            ablations::chain_length_sweep(campaign, Benchmark::Bt, Class::W, 9).unwrap(),
            ablations::cache_capacity_sweep(campaign, &L2_CAPS).unwrap(),
            ablations::contention_sweep(campaign, &CONTENTIONS).unwrap(),
            ablations::noise_sweep(campaign, &NOISE_MULTS).unwrap(),
        ],
    );
    let (t1, _) =
        reuse::proc_transfer_table(campaign, Benchmark::Bt, Class::W, &[4, 9, 16, 25], 3).unwrap();
    let (t2, _) = reuse::class_transfer_table(
        campaign,
        Benchmark::Bt,
        &[Class::S, Class::W, Class::A],
        16,
        3,
    )
    .unwrap();
    let (t3, _) =
        reuse::proc_transfer_table(campaign, Benchmark::Lu, Class::A, &[4, 8, 16, 32], 3).unwrap();
    let reuse_art = Artifact::from_couplings("reuse", vec![t1, t2, t3]);
    let (c, p) = granularity::granularity_tables(campaign, Class::W, &GRANULARITY_PROCS).unwrap();
    let mut granularity_art = Artifact::from_couplings("granularity", vec![c]);
    granularity_art.predictions = vec![p];
    vec![ablations_art, reuse_art, granularity_art]
}

/// Same harness again for the study tables: committed cells only
/// (`executed == 0`), every value within tolerance.  Together with
/// the main and extended tests this closes golden coverage over every
/// experiment id the `paper_tables` binary knows.
#[test]
fn studies_golden_tables_match_store_backed_assembly() {
    let dir = golden_dir();
    let cells_path = dir.join("cells_studies.json");

    if updating() {
        let store = Arc::new(CellStore::new());
        let campaign = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        std::fs::create_dir_all(&dir).unwrap();
        for artifact in studies_artifacts(&campaign) {
            let json = artifact.render_json();
            std::fs::write(dir.join(format!("{}.json", artifact.id)), json).unwrap();
        }
        store.save(&cells_path).unwrap();
        eprintln!(
            "regenerated {} studies golden cells into {}",
            store.len(),
            dir.display()
        );
        return;
    }

    let store = Arc::new(
        CellStore::load(&cells_path)
            .unwrap_or_else(|e| panic!("missing golden cell store {}: {e}", cells_path.display())),
    );
    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    let artifacts = studies_artifacts(&campaign);

    let cache = campaign.cache_stats();
    assert_eq!(
        cache.executed, 0,
        "cells missing from the studies golden store were re-simulated"
    );
    assert!(cache.backend_hits > 0);

    let mut diffs = Vec::new();
    for artifact in &artifacts {
        check_artifact(artifact, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "{} value(s) drifted from the studies golden tables:\n  {}",
        diffs.len(),
        diffs.join("\n  ")
    );
}

/// The simulation itself (not just the assembly arithmetic) still
/// reproduces the snapshots: re-measure the cheapest tables with no
/// backend at all.
#[test]
fn fresh_simulation_matches_golden_for_cheap_tables() {
    if updating() {
        return; // snapshots are being rewritten by the main test
    }
    let campaign = Campaign::builder(Runner::noise_free()).build();
    let fresh = vec![
        Artifact::from_pair("table2_bt_s", &bt::table2(&campaign).unwrap()),
        Artifact::from_pair("table8a_lu_w", &lu::table8(&campaign, Class::W).unwrap()),
    ];
    assert!(campaign.cache_stats().executed > 0, "nothing was simulated");
    let mut diffs = Vec::new();
    for artifact in &fresh {
        check_artifact(artifact, &mut diffs);
    }
    assert!(
        diffs.is_empty(),
        "fresh simulation drifted from the golden tables:\n  {}",
        diffs.join("\n  ")
    );
}

/// The comparator actually detects drift (guards against a vacuous
/// harness).
#[test]
fn comparator_flags_value_drift_beyond_tolerance() {
    let golden: Value =
        serde_json::from_str(r#"{"t":[{"v":[1.0,2.0]},{"v":[3.0]}],"s":"x"}"#).unwrap();

    // within tolerance: no diffs
    let close: Value =
        serde_json::from_str(r#"{"t":[{"v":[1.0000000001,2.0]},{"v":[3.0]}],"s":"x"}"#).unwrap();
    let mut diffs = Vec::new();
    diff_values(&golden, &close, "root", REL_TOL, &mut diffs);
    assert!(diffs.is_empty(), "spurious diffs: {diffs:?}");

    // a 1e-3 relative drift must be flagged, with its path
    let drifted: Value =
        serde_json::from_str(r#"{"t":[{"v":[1.0,2.002]},{"v":[3.0]}],"s":"x"}"#).unwrap();
    let mut diffs = Vec::new();
    diff_values(&golden, &drifted, "root", REL_TOL, &mut diffs);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].starts_with("root.t[0].v[1]:"), "{}", diffs[0]);

    // structural drift (missing value) is also flagged
    let truncated: Value =
        serde_json::from_str(r#"{"t":[{"v":[1.0]},{"v":[3.0]}],"s":"x"}"#).unwrap();
    let mut diffs = Vec::new();
    diff_values(&golden, &truncated, "root", REL_TOL, &mut diffs);
    assert!(!diffs.is_empty());

    // string drift is exact-match
    let renamed: Value =
        serde_json::from_str(r#"{"t":[{"v":[1.0,2.0]},{"v":[3.0]}],"s":"y"}"#).unwrap();
    let mut diffs = Vec::new();
    diff_values(&golden, &renamed, "root", REL_TOL, &mut diffs);
    assert_eq!(diffs.len(), 1);
}
