//! Integration: numeric correctness of the benchmarks when driven
//! through the public API on the realistic machine preset (the crate
//! tests use the tiny test machine; here we make sure nothing about
//! the calibrated preset breaks the arithmetic).

use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, Mode, NpbApp, NpbExecutor};

fn numeric_exec(b: Benchmark, class: Class, p: usize) -> NpbExecutor {
    let cfg = ExecConfig {
        mode: Mode::Numeric,
        ..ExecConfig::default()
    };
    NpbExecutor::new(
        NpbApp::new(b, class, p),
        MachineConfig::ibm_sp_p2sc().without_noise(),
        cfg,
    )
}

#[test]
fn all_benchmarks_preserve_the_steady_state() {
    for b in Benchmark::ALL {
        let exec = numeric_exec(b, Class::S, 4);
        let s = exec.run_numeric(3, 0.0);
        assert!(
            s.verify.resid_norm < 1e-20,
            "{b}: residual {}",
            s.verify.resid_norm
        );
        assert!(
            s.verify.dev_norm < 1e-20,
            "{b}: deviation {}",
            s.verify.dev_norm
        );
    }
}

#[test]
fn all_benchmarks_contract_perturbations() {
    for b in Benchmark::ALL {
        let exec = numeric_exec(b, Class::S, 4);
        let short = exec.run_numeric(2, 0.05);
        let long = exec.run_numeric(14, 0.05);
        assert!(
            long.verify.dev_norm < 0.5 * short.verify.dev_norm,
            "{b}: {} -> {}",
            short.verify.dev_norm,
            long.verify.dev_norm
        );
    }
}

#[test]
fn numeric_and_profile_measurements_agree_on_the_preset_machine() {
    for b in Benchmark::ALL {
        let app = NpbApp::new(b, Class::S, 4);
        let machine = MachineConfig::ibm_sp_p2sc().without_noise();
        let chain: Vec<_> = app.benchmark.spec().kernel_set().ids().collect();
        let t_profile =
            NpbExecutor::new(app, machine.clone(), ExecConfig::default()).run_chain_raw(&chain);
        let cfg = ExecConfig {
            mode: Mode::Numeric,
            ..ExecConfig::default()
        };
        let t_numeric = NpbExecutor::new(app, machine, cfg).run_chain_raw(&chain);
        assert!(
            (t_profile - t_numeric).abs() < 1e-9 * t_numeric.max(1.0),
            "{b}: profile {t_profile} vs numeric {t_numeric}"
        );
    }
}

#[test]
fn larger_processor_counts_run_faster() {
    for b in Benchmark::ALL {
        // 4 and 16 are admissible for both the square (BT/SP) and
        // power-of-two (LU) processor-count rules
        let procs: [usize; 2] = [4, 16];
        let t_small = numeric_exec(b, Class::W, procs[0]).run_application_raw();
        let t_big = numeric_exec(b, Class::W, procs[1]).run_application_raw();
        assert!(
            t_big < t_small,
            "{b}: {} procs took {t_small}, {} procs took {t_big}",
            procs[0],
            procs[1]
        );
        // but not super-linearly faster overall
        let speedup = t_small / t_big;
        assert!(speedup < 8.0, "{b}: implausible speedup {speedup}");
    }
}

#[test]
fn lu_rectangular_grids_work_through_the_public_api() {
    // p = 8 and 32 give non-square grids (4x2, 8x4)
    let exec = numeric_exec(Benchmark::Lu, Class::S, 8);
    let s = exec.run_numeric(2, 0.02);
    assert!(s.verify.dev_norm.is_finite());
    assert!(s.total_time > 0.0);
}
