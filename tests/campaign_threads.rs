//! Integration: parallel campaign execution is schedule-independent.
//! Each measurement cell runs on its own simulated cluster with a
//! seed derived from (machine seed, cell key), so the same campaign
//! produces bit-identical tables no matter how many scheduler workers
//! (`jobs`) execute it — even with measurement noise enabled.

use kernel_couplings::experiments::{bt, Campaign, Runner};

fn table2_numbers(campaign: &Campaign) -> (Vec<Vec<f64>>, String) {
    let pair = bt::table2(campaign).unwrap();
    let values = pair
        .couplings
        .iter()
        .flat_map(|t| t.rows.iter().map(|r| r.values.clone()))
        .collect();
    (values, pair.render_text())
}

#[test]
fn noisy_campaign_is_bit_identical_across_worker_counts() {
    // seeded noise ON: the strongest form of the claim — noise is
    // part of the cell, not of the worker schedule
    let serial = table2_numbers(&Campaign::builder(Runner::default()).jobs(1).build());
    let parallel = table2_numbers(&Campaign::builder(Runner::default()).jobs(8).build());
    assert_eq!(
        serial.0, parallel.0,
        "coupling values must not depend on the worker count"
    );
    assert_eq!(
        serial.1, parallel.1,
        "rendered tables must be bit-identical"
    );
}

#[test]
fn noise_free_campaign_is_bit_identical_across_worker_counts() {
    let serial = table2_numbers(&Campaign::builder(Runner::noise_free()).jobs(1).build());
    // default pool size: whatever the machine offers
    let parallel = table2_numbers(&Campaign::builder(Runner::noise_free()).build());
    assert_eq!(serial, parallel);
}
