//! Integration: parallel campaign execution is schedule-independent.
//! Each measurement cell runs on its own simulated cluster with a
//! seed derived from (machine seed, cell key), so the same campaign
//! produces bit-identical tables no matter how many worker threads
//! execute it — even with measurement noise enabled.
//!
//! This test manipulates `RAYON_NUM_THREADS`, so it lives in its own
//! integration binary: Rust runs each test file as a separate
//! process, keeping the env mutation away from every other test.

use kernel_couplings::experiments::{bt, Campaign, Runner};
use std::sync::Mutex;

/// Both tests toggle the env var; the harness runs them on separate
/// threads, so serialize them.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn table2_numbers(campaign: &Campaign) -> (Vec<Vec<f64>>, String) {
    let pair = bt::table2(campaign).unwrap();
    let values = pair
        .couplings
        .iter()
        .flat_map(|t| t.rows.iter().map(|r| r.values.clone()))
        .collect();
    (values, pair.render_text())
}

#[test]
fn noisy_campaign_is_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    // seeded noise ON: the strongest form of the claim — noise is
    // part of the cell, not of the thread schedule
    let serial = {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let campaign = Campaign::builder(Runner::default()).build();
        let out = table2_numbers(&campaign);
        std::env::remove_var("RAYON_NUM_THREADS");
        out
    };
    let parallel = {
        let campaign = Campaign::builder(Runner::default()).build();
        table2_numbers(&campaign)
    };
    assert_eq!(
        serial.0, parallel.0,
        "coupling values must not depend on the thread count"
    );
    assert_eq!(
        serial.1, parallel.1,
        "rendered tables must be bit-identical"
    );
}

#[test]
fn noise_free_campaign_is_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let serial = {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let out = table2_numbers(&Campaign::builder(Runner::noise_free()).build());
        std::env::remove_var("RAYON_NUM_THREADS");
        out
    };
    let parallel = table2_numbers(&Campaign::builder(Runner::noise_free()).build());
    assert_eq!(serial, parallel);
}
