//! Integration: the whole stack is deterministic — identical
//! campaigns produce bit-identical tables regardless of OS thread
//! scheduling, and the noise model replays per seed.

use kernel_couplings::coupling::{ChainExecutor, CouplingAnalysis};
use kernel_couplings::experiments::{bt, Campaign, Runner};
use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};

#[test]
fn repeated_table_builds_are_bit_identical() {
    // two independent campaigns (separate caches) must agree exactly
    let a = bt::table2(&Campaign::builder(Runner::noise_free()).build()).unwrap();
    let b = bt::table2(&Campaign::builder(Runner::noise_free()).build()).unwrap();
    assert_eq!(a.couplings[0], b.couplings[0]);
    assert_eq!(a.predictions, b.predictions);
}

#[test]
fn pooled_and_spawned_executors_build_bit_identical_tables() {
    // the persistent rank pool is a pure transport optimisation: the
    // same golden table must come out byte for byte whether ranks run
    // on parked pool workers or freshly spawned threads
    use kernel_couplings::experiments::render::Artifact;
    use kernel_couplings::machine::set_rank_pooling;

    let build = || {
        let pair = bt::table2(&Campaign::builder(Runner::noise_free()).build()).unwrap();
        let artifact = Artifact::from_pair("table2_bt_s", &pair);
        (artifact.render_text(), artifact.render_json())
    };
    set_rank_pooling(false);
    let spawned = build();
    set_rank_pooling(true);
    let pooled = build();
    assert_eq!(
        spawned.0, pooled.0,
        "text tables must not depend on the rank transport"
    );
    assert_eq!(
        spawned.1, pooled.1,
        "json tables must not depend on the rank transport"
    );
}

#[test]
fn noisy_campaigns_replay_for_a_fixed_seed() {
    let run = |seed: u64| {
        let machine = MachineConfig::ibm_sp_p2sc().with_seed(seed);
        let mut exec = NpbExecutor::new(
            NpbApp::new(Benchmark::Bt, Class::S, 4),
            machine,
            ExecConfig::default(),
        );
        let analysis = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        (analysis.couplings().unwrap(), analysis.actual().mean())
    };
    assert_eq!(run(7), run(7), "same seed must replay exactly");
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn chain_order_of_measurement_does_not_change_raw_times() {
    let exec = NpbExecutor::new(
        NpbApp::new(Benchmark::Sp, Class::S, 4),
        MachineConfig::ibm_sp_p2sc().without_noise(),
        ExecConfig::default(),
    );
    let ids: Vec<_> = exec.kernel_set().ids().collect();
    let t_before = exec.run_chain_raw(&ids[..3]);
    // run something else in between
    let _ = exec.run_chain_raw(&ids[2..5]);
    let t_after = exec.run_chain_raw(&ids[..3]);
    assert_eq!(
        t_before, t_after,
        "raw chain times must not depend on history"
    );
}

#[test]
fn timer_noise_averages_toward_truth_with_repetitions() {
    let machine = MachineConfig::ibm_sp_p2sc();
    let mut noisy = NpbExecutor::new(
        NpbApp::new(Benchmark::Bt, Class::W, 4),
        machine.clone(),
        ExecConfig::default(),
    );
    let mut clean = NpbExecutor::new(
        NpbApp::new(Benchmark::Bt, Class::W, 4),
        machine.without_noise(),
        ExecConfig::default(),
    );
    let ids: Vec<_> = noisy.kernel_set().ids().collect();
    let m_noisy = noisy.measure_chain(&ids, 40);
    let m_clean = clean.measure_chain(&ids, 1);
    let rel = (m_noisy.mean() - m_clean.mean()).abs() / m_clean.mean();
    assert!(
        rel < 0.05,
        "40-rep average should be within 5% of truth, got {rel:.4}"
    );
    assert!(m_noisy.std_dev() > 0.0);
}
