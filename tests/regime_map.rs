//! Golden regime-map regression harness.
//!
//! `artifacts/golden/regime_map.json` pins the full regime map of the
//! committed small sweep (`scripts/regime_small.json`) —
//! boundaries, segment means, regime labels and cache levels — and
//! `cells_regime.json` holds the raw cells the sweep measures.  The
//! test re-assembles the map from the committed cells (asserting
//! nothing re-simulates) and compares the canonical JSON
//! byte-for-byte: detection is deterministic, so even the float
//! formatting must reproduce exactly.
//!
//! Regenerate after an intentional model change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test regime_map
//! ```

use kernel_couplings::experiments::{Campaign, Runner};
use kernel_couplings::prophesy::CellStore;
use kernel_couplings::regime::{build_map, run_sweep, sweep_requests, DetectParams, SweepSpec};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts/golden")
}

fn spec_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scripts/regime_small.json")
}

fn updating() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

fn sweep_map(campaign: &Campaign, spec: &SweepSpec) -> String {
    let requests = sweep_requests(spec).unwrap();
    campaign.prefetch(&requests).unwrap();
    let curves = run_sweep(campaign, spec).unwrap();
    build_map(
        &spec.name,
        &spec.benchmark,
        spec.chain_len,
        &curves,
        &DetectParams::default(),
    )
    .to_json_pretty()
}

#[test]
fn golden_regime_map_matches_store_backed_sweep() {
    let dir = golden_dir();
    let cells_path = dir.join("cells_regime.json");
    let map_path = dir.join("regime_map.json");
    let spec = SweepSpec::load(&spec_path()).unwrap();
    assert!(spec.noise_free, "the committed sweep must be noise-free");

    if updating() {
        let store = Arc::new(CellStore::new());
        let campaign = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        std::fs::create_dir_all(&dir).unwrap();
        let json = sweep_map(&campaign, &spec);
        std::fs::write(&map_path, json).unwrap();
        store.save(&cells_path).unwrap();
        eprintln!(
            "regenerated regime map + {} cells into {}",
            store.len(),
            dir.display()
        );
        return;
    }

    let store = Arc::new(
        CellStore::load(&cells_path)
            .unwrap_or_else(|e| panic!("missing golden cell store {}: {e}", cells_path.display())),
    );
    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    let fresh = sweep_map(&campaign, &spec);

    // every swept cell must come from the committed store: an
    // execution means the key schema or sweep enumeration drifted
    let cache = campaign.cache_stats();
    assert_eq!(
        cache.executed, 0,
        "cells missing from the golden regime store were re-simulated"
    );
    assert!(cache.backend_hits > 0);

    let golden = std::fs::read_to_string(&map_path)
        .unwrap_or_else(|e| panic!("missing golden regime map {}: {e}", map_path.display()));
    assert!(
        golden == fresh,
        "regime map drifted from {} — run with UPDATE_GOLDEN=1 if intentional",
        map_path.display()
    );
}

/// The map's headline claim: the shared-LLC multicore machine shows
/// the regime structure the paper argues for — at least one chain with
/// two or more detected boundaries — and its crossings differ from the
/// uniprocessor SP's.
#[test]
fn golden_regime_map_shows_multicore_regime_shifts() {
    if updating() {
        return; // being rewritten by the main test
    }
    let map_path = golden_dir().join("regime_map.json");
    let golden = std::fs::read_to_string(&map_path)
        .unwrap_or_else(|e| panic!("missing golden regime map {}: {e}", map_path.display()));
    let map: kernel_couplings::regime::RegimeMap = serde_json::from_str(&golden).unwrap();

    let busiest = map
        .busiest_chain("multicore-smp")
        .expect("the committed sweep covers multicore-smp");
    assert!(
        busiest.boundaries.len() >= 2,
        "expected >=2 regime boundaries on a multicore-smp chain, got {}",
        busiest.boundaries.len()
    );
    // the derated LLC must actually move at least one chain's
    // boundary set relative to the uniprocessor machine
    let moved = map
        .chains
        .iter()
        .filter(|c| c.machine == "multicore-smp")
        .any(|smp| {
            map.chains
                .iter()
                .find(|c| c.machine == "ibm-sp-p2sc" && c.chain == smp.chain)
                .is_some_and(|sp| sp.boundary_ws != smp.boundary_ws)
        });
    assert!(moved, "shared-LLC contention moved no regime boundary");
}
