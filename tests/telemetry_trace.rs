//! Integration: the campaign telemetry stream is deterministic in
//! content across scheduler worker counts (`jobs`), its aggregates
//! agree with `CacheStats` exactly, and the JSON-lines trace
//! round-trips.

use kernel_couplings::coupling::{
    read_jsonl, summarize, Disposition, JsonLinesSink, TelemetryEvent,
};
use kernel_couplings::experiments::{AnalysisSpec, Campaign, Runner, SummaryOpts};
use kernel_couplings::npb::{Benchmark, Class};
use std::sync::Arc;

fn specs() -> Vec<AnalysisSpec> {
    vec![
        AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2),
        AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 3),
        AnalysisSpec::new(Benchmark::Bt, Class::S, 9, 2),
    ]
}

/// Run the campaign under a `jobs`-sized worker pool and return its
/// canonical event stream plus the cache counters.
fn run_with_jobs(jobs: usize) -> (Vec<TelemetryEvent>, kernel_couplings::coupling::CacheStats) {
    let campaign = Campaign::builder(Runner::default()).jobs(jobs).build();
    for spec in specs() {
        campaign.analysis(&spec).unwrap();
    }
    campaign.summary(SummaryOpts::top(5).recorded());
    (campaign.telemetry_events(), campaign.cache_stats())
}

#[test]
fn traces_are_content_identical_across_worker_counts() {
    let (serial, serial_cache) = run_with_jobs(1);
    let (parallel, parallel_cache) = run_with_jobs(8);

    let redact = |events: &[TelemetryEvent]| -> Vec<TelemetryEvent> {
        events.iter().map(TelemetryEvent::redacted).collect()
    };
    assert_eq!(
        redact(&serial),
        redact(&parallel),
        "canonical event streams must match modulo durations/workers/queue depths"
    );
    assert_eq!(serial_cache, parallel_cache);

    // the scheduler leaves its mark: one drain event per prefetch,
    // and the summary reports the pool size it ran under
    let drains = |events: &[TelemetryEvent]| {
        events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::SchedulerDrain { .. }))
            .count()
    };
    assert_eq!(drains(&serial), specs().len(), "one drain per prefetch");
    assert_eq!(drains(&serial), drains(&parallel));
    let jobs_of = |events: &[TelemetryEvent]| {
        events.iter().rev().find_map(|e| match e {
            TelemetryEvent::RunSummary(s) => Some(s.scheduler_jobs),
            _ => None,
        })
    };
    assert_eq!(jobs_of(&serial), Some(1));
    assert_eq!(jobs_of(&parallel), Some(8));
}

#[test]
fn aggregates_match_cache_stats_exactly() {
    let campaign = Campaign::builder(Runner::noise_free()).jobs(4).build();
    for spec in specs() {
        campaign.analysis(&spec).unwrap();
    }

    let summary = campaign.summary(SummaryOpts::top(3));
    let cache = campaign.cache_stats();
    assert_eq!(summary.requests, cache.requests);
    assert_eq!(summary.hits, cache.hits);
    assert_eq!(summary.backend_hits, cache.backend_hits);
    assert_eq!(summary.executed, cache.executed);
    assert_eq!(
        summary.requests,
        summary.hits + summary.backend_hits + summary.executed
    );
    assert!(summary.unique_cells > 0);
    assert_eq!(summary.per_benchmark.get("BT"), Some(&summary.unique_cells));
    assert_eq!(
        summary.scheduler_jobs, 4,
        "the pool size lands in the summary"
    );

    // every CellStarted has a matching CellFinished, and every
    // Executed disposition has exactly one raw CellExecuted span
    let events = campaign.telemetry_events();
    let count = |f: &dyn Fn(&TelemetryEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(
        count(&|e| matches!(e, TelemetryEvent::CellStarted { .. })),
        cache.requests
    );
    assert_eq!(
        count(&|e| matches!(e, TelemetryEvent::CellFinished { .. })),
        cache.requests
    );
    assert_eq!(
        count(&|e| matches!(e, TelemetryEvent::CellExecuted { .. })),
        cache.executed
    );
    assert_eq!(
        count(&|e| matches!(
            e,
            TelemetryEvent::CellFinished {
                disposition: Disposition::Executed,
                ..
            }
        )),
        cache.executed
    );
    // the scheduler enqueued every executed cell exactly once across
    // the run's drains
    let enqueued: u64 = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::SchedulerDrain { enqueued, .. } => Some(*enqueued),
            _ => None,
        })
        .sum();
    assert_eq!(enqueued, cache.executed, "serial prefetches share nothing");
}

#[test]
fn jsonl_trace_roundtrips_through_an_attached_sink() {
    let path = std::env::temp_dir().join("kc_telemetry_trace_test/trace.jsonl");
    let _ = std::fs::remove_file(&path);

    let campaign = Campaign::builder(Runner::noise_free()).build();
    let sink = Arc::new(JsonLinesSink::new(path.clone()));
    campaign.attach_sink(sink.clone());
    campaign
        .analysis(&AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2))
        .unwrap();
    let recorded = campaign.summary(SummaryOpts::top(5).recorded());
    sink.flush().unwrap();

    let replayed = read_jsonl(&path).unwrap();
    assert_eq!(replayed.len(), campaign.telemetry_events().len());
    // the trace ends with the recorded summary, and summarizing the
    // replayed stream reproduces the aggregate counts
    let Some(TelemetryEvent::RunSummary(last)) = replayed.last() else {
        panic!("trace must end with a RunSummary line");
    };
    assert_eq!(last, &recorded);
    let recomputed = summarize(&replayed, 5);
    assert_eq!(recomputed.requests, recorded.requests);
    assert_eq!(recomputed.executed, recorded.executed);
    assert_eq!(recomputed.scheduler_jobs, recorded.scheduler_jobs);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
