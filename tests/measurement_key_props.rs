//! Property tests of `MeasurementKey` canonicalization: the cache's
//! identity contract.  Keys must survive a serde round-trip
//! unchanged, digests must agree exactly with key equality, and the
//! chain-length-free cells (isolated kernels, serial overhead,
//! application ground truth) must hash identically no matter which
//! chain-length study requested them — that equality is what makes
//! the campaign's cross-table sharing sound.

use kernel_couplings::coupling::{
    analysis_cells, CellContext, CellKind, KernelId, KernelSet, MeasurementKey,
};
use proptest::prelude::*;

fn build_key(
    benchmark: &str,
    class: &str,
    procs: usize,
    chain: &[usize],
    reps: u32,
    exec: &str,
    machine: &str,
) -> MeasurementKey {
    // use the chain as the variant selector too, so all three cell
    // kinds appear in the generated population
    let cell = match chain.len() {
        0 => CellKind::Application,
        1 if chain[0] == 7 => CellKind::SerialOverhead,
        _ => CellKind::Chain(chain.iter().map(|&i| KernelId(i as u32)).collect()),
    };
    MeasurementKey {
        benchmark: benchmark.to_string(),
        class: class.to_string(),
        procs,
        cell,
        reps,
        exec_digest: exec.to_string(),
        machine_fingerprint: machine.to_string(),
    }
}

const BENCHMARKS: [&str; 4] = ["BT", "SP", "LU", "BT#fine"];
const CLASSES: [&str; 4] = ["S", "W", "A", "B"];
const DIGESTS: [&str; 3] = ["w1t2mpb1ci", "w2t4mpb1ci", "w1t2"];
const MACHINES: [&str; 3] = ["00ff00ff00ff00ff", "ecdc94b6f33d49ef", "fp0"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serde round-trip stability: a key survives JSON and comes back
    /// equal, with the same canonical text and digest.
    #[test]
    fn serde_roundtrip_is_identity(
        b in 0usize..4,
        c in 0usize..4,
        procs in 1usize..64,
        chain in prop::collection::vec(0usize..8, 0..5),
        reps in 1u32..20,
        e in 0usize..3,
        m in 0usize..3,
    ) {
        let key = build_key(
            BENCHMARKS[b], CLASSES[c], procs, &chain, reps, DIGESTS[e], MACHINES[m],
        );
        let json = serde_json::to_string(&key).unwrap();
        let back: MeasurementKey = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &key);
        prop_assert_eq!(back.to_string(), key.to_string());
        prop_assert_eq!(back.digest(), key.digest());
    }

    /// Digest equality ⇔ key equality over generated key pairs: equal
    /// keys digest equally, and distinct keys keep distinct digests
    /// (FNV-1a over the canonical text; a collision here would also
    /// collide the per-cell noise seeds).
    #[test]
    fn digest_agrees_with_key_equality(
        b1 in 0usize..4, b2 in 0usize..4,
        c1 in 0usize..4, c2 in 0usize..4,
        p1 in 1usize..32, p2 in 1usize..32,
        chain1 in prop::collection::vec(0usize..8, 0..4),
        chain2 in prop::collection::vec(0usize..8, 0..4),
        reps in 1u32..10,
    ) {
        let k1 = build_key(
            BENCHMARKS[b1], CLASSES[c1], p1, &chain1, reps, DIGESTS[0], MACHINES[0],
        );
        let k2 = build_key(
            BENCHMARKS[b2], CLASSES[c2], p2, &chain2, reps, DIGESTS[0], MACHINES[0],
        );
        prop_assert_eq!(
            k1 == k2,
            k1.digest_u64() == k2.digest_u64(),
            "keys {} / {} disagree with their digests", k1, k2
        );
        // the hex form is the u64, zero-padded
        prop_assert_eq!(k1.digest(), format!("{:016x}", k1.digest_u64()));
    }

    /// Chain-length-free cells (isolated kernels, overhead,
    /// application) enumerate to the SAME keys — same canonical text,
    /// same digest — whatever chain length the requesting table used.
    #[test]
    fn shared_cells_hash_identically_across_chain_lengths(
        kernels in 2usize..8,
        len_a in 1usize..8,
        len_b in 1usize..8,
        procs in 1usize..32,
        reps in 1u32..10,
    ) {
        let len_a = len_a.min(kernels);
        let len_b = len_b.min(kernels);
        let set = KernelSet::new((0..kernels).map(|i| format!("k{i}")).collect());
        let ctx = CellContext {
            benchmark: "BT".to_string(),
            class: "W".to_string(),
            procs,
            exec_digest: DIGESTS[0].to_string(),
            machine_fingerprint: MACHINES[1].to_string(),
        };
        let cells_a = analysis_cells(&ctx, &set, len_a, reps).unwrap();
        let cells_b = analysis_cells(&ctx, &set, len_b, reps).unwrap();
        // dedupe by key text: at chain length 1 the windows collapse
        // onto the isolated cells by key equality, which is the point
        let shared = |cells: &[MeasurementKey]| -> std::collections::BTreeSet<(String, u64)> {
            cells
                .iter()
                .filter(|k| match &k.cell {
                    CellKind::Chain(c) => c.len() == 1,
                    CellKind::SerialOverhead | CellKind::Application => true,
                })
                .map(|k| (k.to_string(), k.digest_u64()))
                .collect()
        };
        // n isolated kernels + overhead + application, bit-identical
        let (a, b) = (shared(&cells_a), shared(&cells_b));
        prop_assert_eq!(a.len(), kernels + 2);
        prop_assert_eq!(a, b, "chain length leaked into shared cell identity");
    }
}
