//! Integration: the paper's headline result holds end-to-end for all
//! three benchmarks on the simulated IBM SP — the coupling predictor
//! produces (much) smaller relative errors than the summation
//! methodology.

use kernel_couplings::coupling::{CouplingAnalysis, Predictor};
use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};

fn executor(b: Benchmark, class: Class, p: usize) -> NpbExecutor {
    NpbExecutor::new(
        NpbApp::new(b, class, p),
        MachineConfig::ibm_sp_p2sc().without_noise(),
        ExecConfig::default(),
    )
}

fn errors(b: Benchmark, class: Class, p: usize, chain_len: usize) -> (f64, f64) {
    let mut exec = executor(b, class, p);
    let analysis = CouplingAnalysis::collect(&mut exec, chain_len, 3).unwrap();
    let actual = analysis.actual().mean();
    let err = |pred: f64| (pred - actual).abs() / actual;
    (
        err(analysis.predict(Predictor::Summation).unwrap()),
        err(analysis.predict(Predictor::coupling(chain_len)).unwrap()),
    )
}

#[test]
fn bt_coupling_beats_summation_at_every_proc_count() {
    for p in [4, 9, 16] {
        let (sum, cpl) = errors(Benchmark::Bt, Class::S, p, 2);
        assert!(
            cpl < sum,
            "BT S p={p}: coupling {cpl:.4} vs summation {sum:.4}"
        );
    }
}

#[test]
fn bt_class_w_matches_paper_error_bands() {
    // paper Table 3b: summation 18.10–24.44%, coupling 1.15–3.00%
    let (sum, cpl) = errors(Benchmark::Bt, Class::W, 9, 3);
    assert!(
        sum > 0.10 && sum < 0.30,
        "summation error {sum:.4} outside the paper band"
    );
    assert!(
        cpl < 0.05,
        "coupling error {cpl:.4} should be a few percent at most"
    );
    assert!(
        sum / cpl > 5.0,
        "improvement factor {:.1} too small",
        sum / cpl
    );
}

#[test]
fn sp_five_kernel_chains_beat_four_kernel_chains_at_class_w() {
    // paper §4.2: for SP class W the 5-kernel predictor (0.70% avg)
    // beats the 4-kernel predictor (1.63% avg)
    let mut exec = executor(Benchmark::Sp, Class::W, 9);
    let a4 = CouplingAnalysis::collect(&mut exec, 4, 3).unwrap();
    let a5 = CouplingAnalysis::collect(&mut exec, 5, 3).unwrap();
    let actual = a4.actual().mean();
    let e4 = (a4.predict(Predictor::coupling(4)).unwrap() - actual).abs() / actual;
    let e5 = (a5.predict(Predictor::coupling(5)).unwrap() - actual).abs() / actual;
    assert!(e5 < e4, "5-kernel ({e5:.4}) should beat 4-kernel ({e4:.4})");
}

#[test]
fn lu_three_kernel_chains_give_small_errors() {
    for p in [4, 8] {
        let (sum, cpl) = errors(Benchmark::Lu, Class::W, p, 3);
        assert!(cpl < 0.05, "LU W p={p}: coupling error {cpl:.4}");
        assert!(cpl < sum / 3.0, "LU W p={p}: {cpl:.4} vs {sum:.4}");
    }
}

#[test]
fn couplings_are_constructive_where_the_paper_says() {
    // class W working sets fit L2: every 3-kernel coupling is < 1
    let mut exec = executor(Benchmark::Bt, Class::W, 4);
    let analysis = CouplingAnalysis::collect(&mut exec, 3, 3).unwrap();
    for (w, c) in analysis.couplings().unwrap().into_iter().enumerate() {
        assert!(
            c < 1.0,
            "window {} has coupling {c:.4} >= 1",
            analysis.windows()[w].label(analysis.kernel_set())
        );
        assert!(c > 0.5, "coupling {c:.4} implausibly small");
    }
}

#[test]
fn class_a_couplings_weaken_at_low_processor_counts() {
    // paper §4.1.3: at 4 processors class A exceeds the caches and the
    // coupling is close to 1; at 25 it is clearly constructive
    let c4 = {
        let mut exec = executor(Benchmark::Bt, Class::A, 4);
        let a = CouplingAnalysis::collect(&mut exec, 4, 2).unwrap();
        a.couplings().unwrap().iter().sum::<f64>() / 5.0
    };
    let c25 = {
        let mut exec = executor(Benchmark::Bt, Class::A, 25);
        let a = CouplingAnalysis::collect(&mut exec, 4, 2).unwrap();
        a.couplings().unwrap().iter().sum::<f64>() / 5.0
    };
    assert!(
        c4 > 0.97,
        "class A at 4 procs should couple weakly, got {c4:.4}"
    );
    assert!(
        c25 < 0.90,
        "class A at 25 procs should couple strongly, got {c25:.4}"
    );
}
