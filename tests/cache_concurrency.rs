//! Integration: `CacheStats` bookkeeping survives concurrent
//! hammering.  Every request increments exactly one disposition
//! counter, so `requests == hits + backend_hits + executed` must hold
//! no matter how threads interleave — and the telemetry stream must
//! tell the same story event for event.

use kernel_couplings::coupling::{
    summarize, CachedProvider, CellKind, KcResult, Measurement, MeasurementKey,
    MeasurementProvider, MemorySink, TelemetryEvent,
};
use kernel_couplings::prophesy::CellStore;
use std::sync::Arc;

/// A provider slow enough to widen race windows: first-touch requests
/// overlap across threads, so the cache's in-flight deduplication
/// (one leader executes, followers wait) actually gets exercised.
struct SlowProvider;

impl MeasurementProvider for SlowProvider {
    fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
        std::thread::sleep(std::time::Duration::from_micros(200));
        Ok(Measurement::from_samples(vec![key.procs as f64]))
    }
}

fn key(i: usize) -> MeasurementKey {
    MeasurementKey {
        benchmark: "BT".to_string(),
        class: "S".to_string(),
        procs: i + 1, // distinct keys, deterministic payloads
        cell: CellKind::SerialOverhead,
        reps: 1,
        exec_digest: "w1t2mpb1ci".to_string(),
        machine_fingerprint: "00ff00ff00ff00ff".to_string(),
    }
}

#[test]
fn stats_invariant_holds_under_concurrent_hammering() {
    const THREADS: usize = 8;
    const KEYS: usize = 24;
    const PRELOADED: usize = 8;

    let sink = Arc::new(MemorySink::new());
    let store = CellStore::new();
    for i in 0..PRELOADED {
        store.insert(&key(i), vec![(i + 1) as f64]);
    }
    let provider = Arc::new(
        CachedProvider::with_backend(SlowProvider, Box::new(store)).with_telemetry(sink.clone()),
    );

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let provider = Arc::clone(&provider);
            scope.spawn(move || {
                for i in 0..KEYS {
                    // each thread walks the keys at a different phase
                    // so first touches collide across threads
                    let k = key((i + t * 3) % KEYS);
                    let m = provider.measure(&k).unwrap();
                    assert_eq!(m.samples(), &[(k.procs) as f64]);
                }
            });
        }
    });

    let stats = provider.stats();
    assert_eq!(stats.requests, (THREADS * KEYS) as u64);
    assert_eq!(
        stats.requests,
        stats.hits + stats.backend_hits + stats.executed,
        "every request must land in exactly one disposition"
    );
    // in-flight dedup: concurrent first-touch misses elect one leader
    // per key, so each key costs exactly one execution (or one backend
    // load); racing followers are served the leader's result as hits
    assert_eq!(stats.executed, (KEYS - PRELOADED) as u64);
    assert_eq!(stats.backend_hits, PRELOADED as u64);

    // the telemetry stream agrees with the counters exactly
    let events = sink.events();
    let summary = summarize(&events, 5);
    assert_eq!(summary.requests, stats.requests);
    assert_eq!(summary.hits, stats.hits);
    assert_eq!(summary.backend_hits, stats.backend_hits);
    assert_eq!(summary.executed, stats.executed);
    assert_eq!(summary.unique_cells, KEYS as u64);
    let started = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::CellStarted { .. }))
        .count() as u64;
    assert_eq!(started, stats.requests, "every request opens a span");
}
