//! Integration: the `kc-loadgen` harness against the real
//! campaign-backed serving stack.
//!
//! Three properties:
//!
//! 1. **Warm serving is contract-clean** — a load run against a
//!    warmed campaign answers every well-formed request `ok` with
//!    **zero** cell executions and **zero** exactly-once violations,
//!    and a generous SLO spec passes while a tightened one
//!    (`p99_ms` below anything physically measurable) is detected
//!    and reported.
//! 2. **Saturation is bounded, not fatal** — driving an engine that
//!    is slower than the arrival rate into a small `max_inflight`
//!    admission window sheds load as `overloaded` responses: the
//!    overload rate lands strictly inside (0, 1) and every frame is
//!    accounted for in exactly one status bucket.
//! 3. **Deadlines shed under pressure** — the same saturated stack
//!    with tight per-request deadlines answers part of the stream
//!    with `deadline` sheds instead of burning engine calls on
//!    requests whose clients have already given up.

use kernel_couplings::experiments::{Campaign, CampaignEngine, Runner};
use kernel_couplings::loadgen::{
    drive_server, exactly_once_violations, schedule, unique_requests, LoadReport, SloSpec,
    WorkloadConfig,
};
use kernel_couplings::serve::{
    PredictRequest, PredictionEngine, PredictionReport, Server, ServerConfig, Status,
};
use std::sync::Arc;
use std::time::Duration;

/// Build the real serving stack and warm it over `cfg`'s distinct
/// specs, so the timed run measures pure cache-hit serving.
fn warm_stack(cfg: &WorkloadConfig) -> (Arc<Campaign>, Server) {
    let campaign = Arc::new(Campaign::builder(Runner::noise_free()).build());
    let server = Server::new(
        Arc::new(CampaignEngine::new(campaign.clone())),
        ServerConfig::default(),
    );
    let tickets: Vec<_> = unique_requests(&schedule(cfg))
        .into_iter()
        .map(|r| server.submit(r))
        .collect();
    for t in &tickets {
        assert_eq!(t.wait().status, Status::Ok, "warmup must resolve cleanly");
    }
    (campaign, server)
}

#[test]
fn warm_load_run_has_zero_executions_and_passes_its_slo() {
    let cfg = WorkloadConfig {
        rps: 400.0,
        duration: Duration::from_millis(500),
        hot_fraction: 0.8,
        deadline_ms: Some(5_000.0),
        malformed_every: 25,
        seed: 11,
        ..WorkloadConfig::default()
    };
    let (campaign, server) = warm_stack(&cfg);

    let executed_before = campaign.cache_stats().executed;
    let result = drive_server(&server, &schedule(&cfg));
    server.shutdown();

    let executions = campaign.cache_stats().executed - executed_before;
    let violations = exactly_once_violations(&campaign.telemetry_events());
    let report = LoadReport::from_outcomes(
        &result.outcomes,
        result.elapsed_secs,
        executions,
        violations,
    );

    assert_eq!(report.requests, 200, "400 rps over 500 ms, all answered");
    assert_eq!(report.executions, 0, "a warm store never executes");
    assert_eq!(report.exactly_once_violations, 0);
    assert_eq!(report.overloaded, 0, "warm serving never saturates");
    assert_eq!(report.deadline_expired, 0, "5s budgets never expire warm");
    assert_eq!(report.errors, 8, "exactly the malformed frames (200/25)");
    assert_eq!(report.ok + report.errors, report.requests);

    let generous: SloSpec =
        "executions<=0,exactly_once_violations<=0,overload_rate<=0,error_rate<=0.05,p99_ms<=5000"
            .parse()
            .unwrap();
    assert!(
        generous.check(&report).is_empty(),
        "the generous SLO must pass: {:?}",
        generous.check(&report)
    );

    // the gate actually gates: a bound tighter than anything
    // physically measurable must be detected and named
    let tightened: SloSpec = "p99_ms<=0.00001".parse().unwrap();
    let failures = tightened.check(&report);
    assert_eq!(failures.len(), 1);
    assert!(
        failures[0].contains("p99_ms<=0.00001") && failures[0].contains("measured"),
        "violation names the bound and the measurement: {}",
        failures[0]
    );
}

/// An engine slower than the arrival rate: each batch holds its
/// requests for a fixed wall-clock beat, so a small admission window
/// must shed.
struct SlowEngine(Duration);

impl PredictionEngine for SlowEngine {
    fn predict_batch(&self, batch: &[PredictRequest]) -> Vec<Result<PredictionReport, String>> {
        std::thread::sleep(self.0);
        batch
            .iter()
            .map(|r| {
                Ok(PredictionReport {
                    benchmark: r.benchmark.clone(),
                    class: r.class.clone(),
                    procs: r.procs,
                    chain_len: r.chain_len,
                    loop_iterations: 1,
                    overhead_secs: 0.0,
                    actual_secs: 1.0,
                    coupled_secs: 1.0,
                    summation_secs: 1.0,
                    coupled_rel_err_pct: 0.0,
                    summation_rel_err_pct: 0.0,
                    kernels: Vec::new(),
                })
            })
            .collect()
    }
}

#[test]
fn saturating_max_inflight_bounds_the_overload_rate() {
    let server = Server::new(
        Arc::new(SlowEngine(Duration::from_millis(25))),
        ServerConfig {
            max_inflight: 4,
            max_batch: 2,
            ..ServerConfig::default()
        },
    );
    let cfg = WorkloadConfig {
        rps: 400.0,
        duration: Duration::from_millis(400),
        seed: 3,
        ..WorkloadConfig::default()
    };
    let result = drive_server(&server, &schedule(&cfg));
    server.shutdown();
    let report = LoadReport::from_outcomes(&result.outcomes, result.elapsed_secs, 0, 0);

    assert_eq!(report.requests, 160);
    assert!(
        report.overloaded > 0,
        "a 25 ms/batch engine under 400 rps with max_inflight=4 must shed"
    );
    assert!(report.ok > 0, "the admission window still serves what fits");
    assert!(
        report.overload_rate > 0.0 && report.overload_rate < 1.0,
        "overload rate strictly inside (0, 1), got {}",
        report.overload_rate
    );
    assert_eq!(
        report.ok + report.errors + report.overloaded + report.deadline_expired,
        report.requests,
        "every frame lands in exactly one status bucket"
    );
    let slo: SloSpec = "overload_rate<=1".parse().unwrap();
    assert!(slo.check(&report).is_empty());
}

#[test]
fn tight_deadlines_shed_instead_of_queueing_under_pressure() {
    let server = Server::new(
        Arc::new(SlowEngine(Duration::from_millis(30))),
        ServerConfig {
            max_inflight: 64,
            max_batch: 1,
            ..ServerConfig::default()
        },
    );
    // 15 ms budgets against a 30 ms/request engine: everything that
    // queues behind the first request is expired by its turn
    let cfg = WorkloadConfig {
        rps: 200.0,
        duration: Duration::from_millis(300),
        deadline_ms: Some(15.0),
        seed: 5,
        ..WorkloadConfig::default()
    };
    let result = drive_server(&server, &schedule(&cfg));
    server.shutdown();
    let report = LoadReport::from_outcomes(&result.outcomes, result.elapsed_secs, 0, 0);

    assert!(
        report.deadline_expired > 0,
        "expired requests must be shed with 'deadline', not served late"
    );
    assert!(report.ok > 0, "the head of each queue still makes it");
    assert!(
        report.deadline_miss_rate > 0.0 && report.deadline_miss_rate < 1.0,
        "got miss rate {}",
        report.deadline_miss_rate
    );
    assert_eq!(
        report.ok + report.errors + report.overloaded + report.deadline_expired,
        report.requests
    );
}
