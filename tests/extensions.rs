//! Integration tests for the extensions beyond the paper's tables:
//! analytic-model composition (Eq. 3 proper), coupling reuse (§6
//! future work) and cross-machine relative-performance prediction
//! (§1 motivation), all through the facade crate.

use kernel_couplings::coupling::{CouplingAnalysis, Predictor, ReuseStudy};
use kernel_couplings::experiments::machines;
use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::models::{analytic_isolated_totals, analytic_loop_models};
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};

fn analysis(b: Benchmark, class: Class, p: usize, len: usize) -> CouplingAnalysis {
    let mut exec = NpbExecutor::new(
        NpbApp::new(b, class, p),
        MachineConfig::ibm_sp_p2sc().without_noise(),
        ExecConfig::default(),
    );
    CouplingAnalysis::collect(&mut exec, len, 2).unwrap()
}

#[test]
fn analytic_models_compose_like_eq3() {
    let machine = MachineConfig::ibm_sp_p2sc().without_noise();
    let app = NpbApp::new(Benchmark::Bt, Class::W, 9);
    let a = analysis(Benchmark::Bt, Class::W, 9, 3);
    let models = analytic_isolated_totals(&app, &machine);
    let actual = a.actual().mean();
    let summed = a
        .predict_with_models(Predictor::Summation, &models)
        .unwrap();
    let coupled = a
        .predict_with_models(Predictor::coupling(3), &models)
        .unwrap();
    let err = |t: f64| (t - actual).abs() / actual;
    assert!(
        err(coupled) < err(summed),
        "composition must improve the hand models"
    );
    assert!(
        err(coupled) < 0.15,
        "composed hand models should be within 15%: {}",
        err(coupled)
    );
}

#[test]
fn analytic_model_terms_are_positive_and_ordered() {
    let machine = MachineConfig::ibm_sp_p2sc();
    let app = NpbApp::new(Benchmark::Sp, Class::A, 9);
    for m in analytic_loop_models(&app, &machine) {
        assert!(
            m.compute >= 0.0 && m.memory >= 0.0 && m.comm >= 0.0,
            "{m:?}"
        );
        assert!(m.isolated_total() >= m.total(), "{m:?}");
    }
}

#[test]
fn coefficients_transfer_within_a_regime_on_npb() {
    // BT class W stays in the L2 regime for 4..=16 procs
    let a4 = analysis(Benchmark::Bt, Class::W, 4, 3);
    let a16 = analysis(Benchmark::Bt, Class::W, 16, 3);
    let mut study = ReuseStudy::new();
    study.record(&a4, "p4", &a16, "p16").unwrap();
    study.record(&a16, "p16", &a4, "p4").unwrap();
    assert_eq!(study.transfer_win_rate(), 1.0);
    assert!(
        study.mean_transfer_err() < 0.05,
        "err {}",
        study.mean_transfer_err()
    );
}

#[test]
fn cross_machine_ratio_is_predicted() {
    use kernel_couplings::experiments::{Campaign, Runner};
    let mut runner = Runner::noise_free();
    runner.reps = 2;
    let campaign = Campaign::builder(runner).build();
    let (_, outcomes) =
        machines::machine_comparison(&campaign, Benchmark::Bt, Class::W, 9, 3).unwrap();
    let (pred, actual) = machines::relative_performance(&outcomes);
    assert!(
        (pred - actual).abs() / actual < 0.10,
        "pred {pred:.3} vs actual {actual:.3}"
    );
}

#[test]
fn single_rank_degenerate_configuration_works_end_to_end() {
    // p = 1: no communication at all, still a valid coupling campaign
    let a = analysis(Benchmark::Bt, Class::S, 1, 2);
    let actual = a.actual().mean();
    let coupled = a.predict(Predictor::coupling(2)).unwrap();
    let summed = a.predict(Predictor::Summation).unwrap();
    assert!(actual > 0.0);
    assert!((coupled - actual).abs() <= (summed - actual).abs() + 1e-12);
}

#[test]
fn comm_tracing_composes_with_the_benchmarks() {
    use kernel_couplings::machine::Cluster;
    use kernel_couplings::npb::{Mode, RankState};
    let app = NpbApp::new(Benchmark::Lu, Class::S, 4);
    let machine = MachineConfig::ibm_sp_p2sc()
        .without_noise()
        .with_comm_trace();
    let spec = app.benchmark.spec();
    let out = Cluster::new(machine).run(app.procs, |ctx| {
        let mut st = RankState::new(
            app.benchmark,
            app.physics(),
            app.problem().dims(),
            app.grid(),
            ctx,
            false,
        );
        for k in &spec.loop_kernels {
            (k.run)(&mut st, ctx, Mode::Profile);
        }
    });
    // the wavefront sweeps generate per-plane traffic on every rank
    let total_events: usize = out.reports.iter().map(|r| r.comm_trace.len()).sum();
    assert!(
        total_events > 4 * 12,
        "expected per-plane events, got {total_events}"
    );
}

#[test]
fn prophesy_store_roundtrips_npb_campaigns() {
    use kernel_couplings::prophesy::{CampaignKey, CampaignRecord, CampaignStore};
    let a = analysis(Benchmark::Lu, Class::S, 4, 3);
    let key = CampaignKey::new("ibm-sp-p2sc", "lu", "S", 4, 3);
    let mut store = CampaignStore::new();
    store.insert(CampaignRecord::from_analysis(key.clone(), &a));
    let path = std::env::temp_dir().join("kc_ext_store.json");
    store.save(&path).unwrap();
    let loaded = CampaignStore::load(&path).unwrap();
    let restored = loaded.get(&key).unwrap().to_analysis().unwrap();
    assert_eq!(restored.couplings().unwrap(), a.couplings().unwrap());
    assert_eq!(
        restored.predict(Predictor::coupling(3)).unwrap(),
        a.predict(Predictor::coupling(3)).unwrap()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn prophesy_advisor_transfers_within_npb_regimes() {
    use kernel_couplings::experiments::transitions::{cache_regime, working_set_bytes};
    use kernel_couplings::prophesy::{
        advise, transfer_predict, Advice, CampaignKey, CampaignRecord, CampaignStore,
    };
    let regime = |k: &CampaignKey| {
        let machine = MachineConfig::ibm_sp_p2sc();
        cache_regime(
            &machine,
            working_set_bytes(Benchmark::Bt, Class::W, k.procs),
        )
    };
    let mut store = CampaignStore::new();
    let a9 = analysis(Benchmark::Bt, Class::W, 9, 3);
    store.insert(CampaignRecord::from_analysis(
        CampaignKey::new("ibm-sp-p2sc", "bt", "W", 9, 3),
        &a9,
    ));
    let target_key = CampaignKey::new("ibm-sp-p2sc", "bt", "W", 16, 3);
    match advise(&store, &target_key, 5, regime) {
        Advice::Transfer { source, .. } => {
            let t = analysis(Benchmark::Bt, Class::W, 16, 3);
            let isolated: Vec<f64> = t.kernel_set().ids().map(|k| t.isolated(k).mean()).collect();
            let pred = transfer_predict(
                &store,
                &source,
                &isolated,
                t.loop_iterations(),
                t.overhead().mean(),
            )
            .unwrap();
            let actual = t.actual().mean();
            let err = (pred - actual).abs() / actual;
            assert!(err < 0.05, "transfer error {err:.4}");
        }
        other => panic!("expected a transfer, got {other:?}"),
    }
}
