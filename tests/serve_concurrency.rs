//! Concurrency contract of the `kc-serve` subsystem: overlapping
//! requests from many clients share one measurement plan (duplicate
//! cells execute exactly once), responses are byte-identical across
//! `--jobs` settings, and a warm cell store answers whole batches
//! without a single execution.

use kernel_couplings::experiments::{AnalysisSpec, Campaign, CampaignEngine, Runner};
use kernel_couplings::npb::{Benchmark, Class};
use kernel_couplings::prophesy::CellStore;
use kernel_couplings::serve::{PredictRequest, Server, ServerConfig, Status};
use std::sync::Arc;
use std::thread;

fn quick_runner() -> Runner {
    let mut runner = Runner::noise_free();
    runner.reps = 2;
    runner
}

fn request(
    id: u64,
    benchmark: &str,
    class: &str,
    procs: usize,
    chain_len: usize,
) -> PredictRequest {
    PredictRequest {
        id,
        benchmark: benchmark.to_string(),
        class: class.to_string(),
        procs,
        chain_len,
        fine: false,
        deadline_ms: None,
    }
}

/// Eight clients hammer the server with overlapping chains of the
/// same workload; the campaign must execute each unique cell exactly
/// once — the same set a direct prefetch of the unique specs needs.
#[test]
fn concurrent_overlapping_clients_execute_cells_exactly_once() {
    // baseline: how many cells do the unique specs actually need?
    let baseline = Campaign::builder(quick_runner()).jobs(2).build();
    baseline
        .prefetch(&[
            AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2),
            AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 3),
        ])
        .unwrap();
    let unique_cells = baseline.cache_stats().executed;
    assert!(unique_cells > 0);

    let campaign = Arc::new(Campaign::builder(quick_runner()).jobs(4).build());
    let engine = Arc::new(CampaignEngine::new(Arc::clone(&campaign)));
    let server = Server::new(engine, ServerConfig::default());

    thread::scope(|scope| {
        for client in 0..8u64 {
            let server = &server;
            scope.spawn(move || {
                for round in 0..3u64 {
                    let chain_len = 2 + (client % 2) as usize; // overlap: len 2 and len 3
                    let ticket =
                        server.submit(request(client * 10 + round, "bt", "S", 4, chain_len));
                    let response = ticket.wait();
                    assert_eq!(response.status, Status::Ok, "{:?}", response.error);
                    assert!(response.result.is_some());
                }
            });
        }
    });
    server.shutdown();

    let stats = campaign.cache_stats();
    assert_eq!(
        stats.executed, unique_cells,
        "24 overlapping requests must execute the {unique_cells} unique cells exactly once"
    );
    assert!(
        stats.hits > 0,
        "duplicate requests should be served from the in-memory cache"
    );
}

fn run_pipe(jobs: usize, input: &str) -> Vec<u8> {
    let campaign = Arc::new(Campaign::builder(quick_runner()).jobs(jobs).build());
    let engine = Arc::new(CampaignEngine::new(campaign));
    let server = Server::new(engine, ServerConfig::default());
    let mut out = Vec::new();
    server.serve_pipe(input.as_bytes(), &mut out).unwrap();
    server.shutdown();
    out
}

/// The determinism contract: the response stream carries no timing or
/// scheduling state, so a `--jobs 1` server and a `--jobs 8` server
/// must produce byte-identical output for the same input — errors,
/// duplicates and malformed lines included.
#[test]
fn responses_are_byte_identical_across_jobs_settings() {
    let input = concat!(
        r#"{"id":1,"benchmark":"bt","class":"S","procs":4,"chain_len":2}"#,
        "\n",
        r#"{"id":2,"benchmark":"bt","class":"S","procs":4,"chain_len":2}"#,
        "\n",
        r#"{"id":3,"benchmark":"lu","class":"S","procs":8,"chain_len":2}"#,
        "\n",
        r#"{"id":4,"benchmark":"ft","class":"S","procs":4,"chain_len":2}"#,
        "\n",
        "not json at all\n",
        "\n",
        r#"{"id":5,"benchmark":"bt","class":"S","procs":7,"chain_len":2}"#,
        "\n",
    );
    let serial = run_pipe(1, input);
    let parallel = run_pipe(8, input);
    assert!(!serial.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel),
        "jobs=1 and jobs=8 responses must be byte-identical"
    );
    // sanity on content: 6 response lines (blank input line is skipped)
    let text = String::from_utf8(serial).unwrap();
    assert_eq!(text.lines().count(), 6);
    assert_eq!(text.matches(r#""status":"ok""#).count(), 3);
    assert_eq!(text.matches(r#""status":"error""#).count(), 3);
}

/// The acceptance bar from the issue: against a warm store, a
/// 100-request batch is answered entirely from committed cells — the
/// campaign reports zero executions.
#[test]
fn warm_store_answers_hundred_requests_with_zero_executions() {
    let store = Arc::new(CellStore::new());

    // phase 1: a cold server fills the store through its backend
    {
        let campaign = Arc::new(
            Campaign::builder(quick_runner())
                .backend(Box::new(Arc::clone(&store)))
                .jobs(2)
                .build(),
        );
        let engine = Arc::new(CampaignEngine::new(Arc::clone(&campaign)));
        let server = Server::new(engine, ServerConfig::default());
        for (id, (benchmark, procs)) in [("bt", 4), ("lu", 8)].iter().enumerate() {
            let response = server
                .submit(request(id as u64, benchmark, "S", *procs, 2))
                .wait();
            assert_eq!(response.status, Status::Ok, "{:?}", response.error);
        }
        server.shutdown();
        assert!(campaign.cache_stats().executed > 0);
    }
    assert!(!store.is_empty());

    // phase 2: a fresh server over the warm store answers 100
    // requests without executing anything
    let campaign = Arc::new(
        Campaign::builder(quick_runner())
            .backend(Box::new(Arc::clone(&store)))
            .jobs(4)
            .build(),
    );
    let engine = Arc::new(CampaignEngine::new(Arc::clone(&campaign)));
    let server = Server::new(engine, ServerConfig::default());
    let tickets: Vec<_> = (0..100u64)
        .map(|i| {
            let (benchmark, procs) = if i % 2 == 0 { ("bt", 4) } else { ("lu", 8) };
            server.submit(request(i, benchmark, "S", procs, 2))
        })
        .collect();
    for ticket in tickets {
        let response = ticket.wait();
        assert_eq!(response.status, Status::Ok, "{:?}", response.error);
    }
    server.shutdown();

    let stats = campaign.cache_stats();
    assert_eq!(
        stats.executed, 0,
        "warm-store batch must not execute any cell"
    );
    assert!(stats.backend_hits > 0, "cells should come from the store");
    assert!(server.metrics().report().ok >= 100);
}
