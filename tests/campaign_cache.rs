//! Integration: the cached measurement campaign is invisible in the
//! numbers.  Tables assembled through the shared cell cache must be
//! identical to the legacy serial path, every unique cell must be
//! measured exactly once across a multi-table campaign, and cells
//! measured under one machine or protocol must never be served to
//! another.

use kernel_couplings::coupling::{CouplingAnalysis, Predictor};
use kernel_couplings::experiments::{bt, sp, AnalysisSpec, Campaign, Runner};
use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};

/// Noise-free, the memoized campaign and the legacy direct path
/// (one executor, sequential measurement) agree bit-for-bit.
#[test]
fn campaign_matches_direct_measurement_noise_free() {
    let campaign = Campaign::builder(Runner::noise_free()).build();
    for procs in [4, 9] {
        let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, procs, 2);
        let cached = campaign.analysis(&spec).unwrap();

        let mut exec = NpbExecutor::new(
            NpbApp::new(Benchmark::Bt, Class::S, procs),
            campaign.runner().machine.clone(),
            ExecConfig::default(),
        );
        let direct = CouplingAnalysis::collect(&mut exec, 2, campaign.reps()).unwrap();

        assert_eq!(
            cached.couplings().unwrap(),
            direct.couplings().unwrap(),
            "couplings must be bit-identical at p={procs}"
        );
        assert_eq!(cached.actual().mean(), direct.actual().mean());
        for pred in [Predictor::Summation, Predictor::coupling(2)] {
            assert_eq!(
                cached.predict(pred).unwrap(),
                direct.predict(pred).unwrap(),
                "{pred:?} must be bit-identical at p={procs}"
            );
        }
    }
}

/// A multi-table campaign executes each unique cell exactly once:
/// cells shared between tables (isolated runs, overhead, ground
/// truth — and whole analyses requested twice) come from the cache.
#[test]
fn multi_table_campaign_measures_each_unique_cell_exactly_once() {
    let campaign = Campaign::builder(Runner::noise_free()).build();

    // two tables over the same benchmark/class share isolated +
    // overhead + application cells; requesting table2's specs twice
    // shares everything
    let mut requests = bt::table2_requests();
    requests.extend(bt::table2_requests());
    requests.extend(sp::table6_requests(Class::W));
    let stats = campaign.prefetch(&requests).unwrap();

    assert!(stats.cells_requested > stats.cells_unique, "{stats}");
    assert_eq!(
        stats.cells_executed, stats.cells_unique,
        "first campaign must execute every unique cell exactly once: {stats}"
    );
    assert_eq!(stats.cache_hits, 0, "{stats}");

    // assembling the tables afterwards must not execute anything new
    let executed_before = campaign.cache_stats().executed;
    bt::table2(&campaign).unwrap();
    sp::table6(&campaign, Class::W).unwrap();
    assert_eq!(
        campaign.cache_stats().executed,
        executed_before,
        "table assembly after prefetch must be measurement-free"
    );

    // and a repeat prefetch is all hits
    let again = campaign.prefetch(&requests).unwrap();
    assert_eq!(again.cells_executed, 0, "{again}");
    assert_eq!(again.cache_hits, again.cells_unique, "{again}");
}

/// Cells measured under one machine (or protocol) are never served
/// to a campaign over a different one: the key fingerprints differ,
/// so the same workload re-measures and yields different numbers.
#[test]
fn cache_never_serves_cells_across_machine_fingerprints() {
    let campaign = Campaign::builder(Runner::noise_free()).build();
    let base = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
    let other_machine = MachineConfig::ethernet_cluster().without_noise();
    let on_other = base.clone().on(other_machine);

    let a = campaign.analysis(&base).unwrap();
    let executed_after_first = campaign.cache_stats().executed;
    let b = campaign.analysis(&on_other).unwrap();

    assert!(
        campaign.cache_stats().executed > executed_after_first,
        "a different machine must not hit the first machine's cells"
    );
    assert_ne!(
        a.actual().mean(),
        b.actual().mean(),
        "different machines must produce different measurements"
    );
}

/// Same machine but a different measurement protocol is also a
/// different cell — even through a shared persistent backend.
#[test]
fn cache_never_serves_cells_across_protocol_digests() {
    use kernel_couplings::prophesy::CellStore;
    use std::sync::Arc;

    let base = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
    let store = Arc::new(CellStore::new());

    let first = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    first.analysis(&base).unwrap();
    let cells_after_first = store.len();
    assert!(cells_after_first > 0);

    // extra warm-up iteration: same machine and workload, but a
    // different protocol digest in every key
    let mut runner = Runner::noise_free();
    runner.exec.warmup_iters += 1;
    let second = Campaign::builder(runner)
        .backend(Box::new(Arc::clone(&store)))
        .build();
    second.analysis(&base).unwrap();

    let stats = second.cache_stats();
    assert_eq!(
        stats.backend_hits, 0,
        "a protocol change must never be served another protocol's cells"
    );
    assert!(
        store.len() > cells_after_first,
        "the second protocol's cells must be stored separately"
    );

    // sharing the backend with an IDENTICAL protocol, by contrast,
    // is measurement-free
    let third = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(&store)))
        .build();
    third.analysis(&base).unwrap();
    assert_eq!(third.cache_stats().executed, 0);
}
