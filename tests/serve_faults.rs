//! Integration: transport faults against the TCP serving path.
//!
//! Three fault families, each with the same two-part claim — the
//! fault is *contained* (a follow-up client gets clean answers) and
//! the cell store underneath is *uncorrupted* (a fresh stack over the
//! same store serves the same specs with zero executions):
//!
//! 1. **Mid-request disconnects** — clients that send one full
//!    request plus half of a second one and vanish without reading.
//! 2. **Malformed frames** — a broken JSON line on a live connection
//!    draws an `error` response and the *same* connection keeps
//!    serving.
//! 3. **Shutdown mid-stream** — `Server::request_shutdown` (exactly
//!    what the `kc_served` SIGTERM handler calls) drains every
//!    admitted request before the accept loop exits.

use kernel_couplings::experiments::{Campaign, CampaignEngine, Runner};
use kernel_couplings::loadgen::{drive_tcp, spawn_faults, FaultConfig, Frame, Slot};
use kernel_couplings::prophesy::{open_store, StoreFormat};
use kernel_couplings::serve::{
    status, PredictRequest, PredictResponse, Server, ServerConfig, Status,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Unique not-yet-existing store path per call (`open_store` treats a
/// fresh path as a new store and an existing one as a store to load).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("kc_serve_faults_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p.join("cells")
}

fn request(id: u64, procs: usize, chain_len: usize) -> PredictRequest {
    PredictRequest {
        id,
        benchmark: "bt".to_string(),
        class: "S".to_string(),
        procs,
        chain_len,
        fine: false,
        deadline_ms: None,
    }
}

/// The campaign-backed server over a sharded store in `dir`, listening
/// on an ephemeral local port.  Returns the stack plus the acceptor
/// thread to join after `request_shutdown`.
fn tcp_stack(
    dir: &std::path::Path,
) -> (
    Arc<Campaign>,
    Arc<Server>,
    String,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = open_store(dir, Some(StoreFormat::Sharded)).unwrap();
    let campaign = Arc::new(
        Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build(),
    );
    let server = Arc::new(Server::new(
        Arc::new(CampaignEngine::new(campaign.clone())),
        ServerConfig::default(),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || server.serve_tcp(listener))
    };
    (campaign, server, addr, acceptor)
}

/// A fresh stack over `dir` must serve `specs` entirely from the
/// persistent store: zero executions proves the fault never corrupted
/// or dropped a committed cell.
fn assert_store_serves_warm(dir: &std::path::Path, specs: &[(usize, usize)]) {
    let store = open_store(dir, None).unwrap();
    assert!(store.len() > 0, "the store kept its cells");
    let campaign = Arc::new(
        Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build(),
    );
    let server = Server::new(
        Arc::new(CampaignEngine::new(campaign.clone())),
        ServerConfig::default(),
    );
    for (i, &(procs, chain_len)) in specs.iter().enumerate() {
        let response = server.submit(request(i as u64, procs, chain_len)).wait();
        assert_eq!(response.status, Status::Ok, "{:?}", response.error);
    }
    server.shutdown();
    assert_eq!(
        campaign.cache_stats().executed,
        0,
        "a clean store serves every spec without re-executing"
    );
}

fn valid_slots(specs: &[(usize, usize)]) -> Vec<Slot> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(procs, chain_len))| Slot {
            offset: Duration::ZERO,
            frame: Frame::Request(request(i as u64 + 1, procs, chain_len)),
        })
        .collect()
}

const SPECS: [(usize, usize); 2] = [(4, 2), (9, 2)];

#[test]
fn mid_request_disconnects_leave_the_server_responsive_and_the_store_clean() {
    let dir = scratch("disconnect");
    let (campaign, server, addr, acceptor) = tcp_stack(&dir);

    let handles = spawn_faults(
        &addr,
        &FaultConfig {
            disconnects: 4,
            stalls: 2,
            stall: Duration::from_millis(50),
        },
    );
    // a well-behaved client runs concurrently with the vandals
    let result = drive_tcp(&addr, &valid_slots(&SPECS)).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(result.outcomes.len(), SPECS.len());
    assert!(
        result.outcomes.iter().all(|o| o.status == status::OK),
        "concurrent fault clients must not touch the measured stream: {:?}",
        result.outcomes
    );

    // ...and a follow-up client after the carnage still gets answers
    let follow_up = drive_tcp(&addr, &valid_slots(&SPECS)).unwrap();
    assert!(follow_up.outcomes.iter().all(|o| o.status == status::OK));

    server.request_shutdown();
    acceptor.join().unwrap().unwrap();
    server.shutdown();
    assert!(campaign.cache_stats().executed > 0, "the run was cold");
    assert_store_serves_warm(&dir, &SPECS);
}

#[test]
fn malformed_frame_draws_an_error_and_the_same_connection_keeps_serving() {
    let dir = scratch("malformed");
    let (_campaign, server, addr, acceptor) = tcp_stack(&dir);

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut read_response = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str::<PredictResponse>(&line).unwrap()
    };

    writeln!(stream, "{{\"benchmark\":\"bt\",\"class\":\"S\",\"pro").unwrap();
    let broken = read_response();
    assert_eq!(
        broken.status,
        Status::Error,
        "truncated JSON draws an error"
    );

    writeln!(
        stream,
        "{}",
        serde_json::to_string(&request(7, 4, 2)).unwrap()
    )
    .unwrap();
    let healthy = read_response();
    assert_eq!(
        healthy.status,
        Status::Ok,
        "the connection survives its own bad frame: {:?}",
        healthy.error
    );
    assert_eq!(healthy.id, 7, "responses stay correlated after the fault");
    stream.shutdown(Shutdown::Both).unwrap();

    server.request_shutdown();
    acceptor.join().unwrap().unwrap();
    server.shutdown();
    assert_store_serves_warm(&dir, &[(4, 2)]);
}

#[test]
fn shutdown_mid_stream_drains_every_admitted_request() {
    let dir = scratch("drain");
    let (_campaign, server, addr, acceptor) = tcp_stack(&dir);

    let mut stream = TcpStream::connect(&addr).unwrap();
    for (i, &(procs, chain_len)) in SPECS.iter().enumerate() {
        writeln!(
            stream,
            "{}",
            serde_json::to_string(&request(i as u64 + 1, procs, chain_len)).unwrap()
        )
        .unwrap();
    }
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // wait for the first response — proof the connection is accepted
    // and the stream admitted — THEN pull the plug the way the
    // kc_served SIGTERM handler does: stop accepting, drain the rest
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let first: PredictResponse = serde_json::from_str(&first).unwrap();
    assert_eq!(first.status, Status::Ok, "{:?}", first.error);
    server.request_shutdown();

    stream.shutdown(Shutdown::Write).unwrap();
    let rest: Vec<PredictResponse> = reader
        .lines()
        .map(|l| serde_json::from_str(&l.unwrap()).unwrap())
        .collect();
    assert_eq!(
        rest.len(),
        SPECS.len() - 1,
        "every admitted request is answered before exit"
    );
    for r in &rest {
        assert_eq!(r.status, Status::Ok, "{:?}", r.error);
    }

    acceptor.join().unwrap().unwrap();
    server.shutdown();
    assert_store_serves_warm(&dir, &SPECS);
}
