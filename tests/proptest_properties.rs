//! Property-based tests of the core invariants, spanning the coupling
//! algebra, the cache simulator and the grid decompositions.

use kernel_couplings::cachesim::SetAssocCache;
use kernel_couplings::coupling::{ChainExecutor, CouplingAnalysis, Predictor, SyntheticExecutor};
use kernel_couplings::grid::{Decomp1d, ProcGrid};
use proptest::prelude::*;

/// Build a synthetic app from generated base times and interactions.
fn synthetic(bases: &[f64], deltas: &[(usize, usize, f64)], iters: u32) -> SyntheticExecutor {
    let names: Vec<String> = (0..bases.len()).map(|i| format!("k{i}")).collect();
    let mut b = SyntheticExecutor::builder();
    for (n, &t) in names.iter().zip(bases) {
        b = b.kernel(n, t);
    }
    for &(i, j, d) in deltas {
        b = b.interaction(&names[i % bases.len()], &names[j % bases.len()], d);
    }
    b.loop_iterations(iters).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no interactions every coupling value is exactly 1 and the
    /// coupling predictor equals summation (and both are exact).
    #[test]
    fn unit_coupling_without_interactions(
        bases in prop::collection::vec(0.1f64..10.0, 2..6),
        chain_len in 1usize..6,
        iters in 1u32..500,
    ) {
        let chain_len = chain_len.min(bases.len());
        let mut app = synthetic(&bases, &[], iters);
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 3).unwrap();
        for c in analysis.couplings().unwrap() {
            prop_assert!((c - 1.0).abs() < 1e-12);
        }
        let actual = app.measure_application().mean();
        let coupled = analysis.predict(Predictor::coupling(chain_len)).unwrap();
        let summed = analysis.predict(Predictor::Summation).unwrap();
        prop_assert!((coupled - summed).abs() <= 1e-9 * summed.abs());
        prop_assert!((coupled - actual).abs() <= 1e-9 * actual.abs());
    }

    /// The full-length-chain coupling predictor is exact for ANY
    /// interaction structure (the composition-algebra fixed point).
    #[test]
    fn full_chain_predictor_is_exact(
        bases in prop::collection::vec(0.1f64..10.0, 2..6),
        deltas in prop::collection::vec(
            (0usize..6, 0usize..6, -0.04f64..0.2), 0..8),
        iters in 1u32..300,
    ) {
        let n = bases.len();
        let mut app = synthetic(&bases, &deltas, iters);
        let analysis = CouplingAnalysis::collect(&mut app, n, 3).unwrap();
        let actual = app.measure_application().mean();
        let coupled = analysis.predict(Predictor::coupling(n)).unwrap();
        prop_assert!(
            (coupled - actual).abs() <= 1e-9 * actual.abs(),
            "predicted {coupled}, actual {actual}"
        );
    }

    /// Composition coefficients are convex combinations of the window
    /// coupling values: min C_W <= alpha_k <= max C_W.
    #[test]
    fn coefficients_bounded_by_couplings(
        bases in prop::collection::vec(0.5f64..5.0, 3..6),
        deltas in prop::collection::vec(
            (0usize..6, 0usize..6, -0.05f64..0.3), 1..8),
        chain_len in 2usize..5,
    ) {
        let chain_len = chain_len.min(bases.len());
        let mut app = synthetic(&bases, &deltas, 10);
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 3).unwrap();
        let cs = analysis.couplings().unwrap();
        let lo = cs.iter().copied().fold(f64::INFINITY, f64::min) - 1e-12;
        let hi = cs.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1e-12;
        let coeff = analysis.coefficients().unwrap();
        for &a in coeff.as_slice() {
            prop_assert!(a >= lo && a <= hi, "alpha {a} outside [{lo}, {hi}]");
        }
    }

    /// Purely constructive interaction structures give predictors that
    /// never overshoot summation.
    #[test]
    fn constructive_interactions_lower_the_prediction(
        bases in prop::collection::vec(1.0f64..5.0, 2..5),
        chain_len in 2usize..5,
    ) {
        let n = bases.len();
        let chain_len = chain_len.min(n);
        let deltas: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, (i + 1) % n, -0.1)).collect();
        let mut app = synthetic(&bases, &deltas, 10);
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 3).unwrap();
        let coupled = analysis.predict(Predictor::coupling(chain_len)).unwrap();
        let summed = analysis.predict(Predictor::Summation).unwrap();
        prop_assert!(coupled <= summed + 1e-12);
    }

    /// LRU inclusion: at fixed set count, doubling associativity (and
    /// therefore capacity) never increases the miss count on any
    /// access trace.
    #[test]
    fn lru_inclusion_property(
        addrs in prop::collection::vec(0u64..4096, 1..300),
    ) {
        let line = 64;
        let sets = 8;
        let mut misses = Vec::new();
        for ways in [1usize, 2, 4, 8] {
            let mut c = SetAssocCache::new(sets * ways * line, line, ways);
            let mut m = 0u64;
            for &a in &addrs {
                if !c.access(a * 8) {
                    m += 1;
                }
            }
            misses.push(m);
        }
        for w in misses.windows(2) {
            prop_assert!(w[1] <= w[0], "misses increased with capacity: {misses:?}");
        }
    }

    /// A cache large enough for the whole trace only takes cold
    /// misses: one per distinct line.
    #[test]
    fn big_cache_only_cold_misses(
        addrs in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let line = 64u64;
        let mut c = SetAssocCache::fully_associative(1 << 20, line as usize);
        let mut distinct = std::collections::HashSet::new();
        for &a in &addrs {
            c.access(a * 8);
            distinct.insert((a * 8) / line);
        }
        prop_assert_eq!(c.misses(), distinct.len() as u64);
    }

    /// 1-D decompositions cover the index space exactly, in order,
    /// with part sizes differing by at most one.
    #[test]
    fn decomp_coverage_and_balance(n in 1usize..500, parts in 1usize..64) {
        prop_assume!(parts <= n);
        let d = Decomp1d::new(n, parts);
        let mut next = 0;
        for r in d.ranges() {
            prop_assert_eq!(r.lo, next);
            next = r.hi;
            prop_assert!(r.len() == d.min_part() || r.len() == d.max_part());
        }
        prop_assert_eq!(next, n);
        prop_assert!(d.max_part() - d.min_part() <= 1);
    }

    /// Process-grid coordinates round-trip and neighbour relations are
    /// symmetric for arbitrary grid shapes.
    #[test]
    fn proc_grid_roundtrip(cols in 1usize..9, rows in 1usize..9) {
        let g = ProcGrid::new(cols, rows);
        for r in 0..g.size() {
            prop_assert_eq!(g.rank(g.coords(r)), r);
            if let Some(e) = g.east(r) {
                prop_assert_eq!(g.west(e), Some(r));
            }
            if let Some(n) = g.north(r) {
                prop_assert_eq!(g.south(n), Some(r));
            }
            prop_assert!(g.neighbors(r).len() <= 4);
        }
    }
}
