//! Integration: the run-history sidecar end to end.
//!
//! The `paper_tables` loop this mirrors: each campaign run over a
//! persistent cell store appends one `HistoryRecord` (summary +
//! backend counters + measured cell durations) to the store's
//! `.history.jsonl` sidecar.  Across repeated runs the store warms up,
//! so the recorded hit rates must trend upward; the recorded durations
//! must round-trip into a `MeasuredCost` scheduling model; and a
//! truncated trailing line (a run that died mid-append) must cost one
//! record, not the file.

use kernel_couplings::coupling::{HistoryRecord, RunHistory};
use kernel_couplings::experiments::{AnalysisSpec, Campaign, MeasuredCost, Runner, SummaryOpts};
use kernel_couplings::npb::{Benchmark, Class};
use kernel_couplings::prophesy::{history_sidecar, CellStore};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kc_history_sidecar_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One store-backed campaign run, exactly as the binary does it:
/// prefetch + assemble, summarize, append the record to the sidecar.
fn run_once(store: &Arc<CellStore>, sidecar: &Path) -> HistoryRecord {
    let campaign = Campaign::builder(Runner::noise_free())
        .backend(Box::new(Arc::clone(store)))
        .build();
    let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
    campaign.analysis(&spec).unwrap();
    let summary = campaign.summary(SummaryOpts::top(3));
    let record = HistoryRecord::from_events(summary, &campaign.telemetry_events())
        .with_backend(store.stats().into());
    RunHistory::append(sidecar, &record).unwrap();
    record
}

#[test]
fn repeated_runs_accumulate_records_and_hit_rates_trend_upward() {
    let dir = temp_dir("trend");
    let store_path = dir.join("cells.json");
    let sidecar = history_sidecar(&store_path);
    let store = Arc::new(CellStore::new());

    let first = run_once(&store, &sidecar);
    let second = run_once(&store, &sidecar);
    let third = run_once(&store, &sidecar);

    // the cold run executed its cells and recorded their durations;
    // the warm runs were served by the store and executed nothing
    assert!(!first.cell_durations.is_empty());
    assert!(second.cell_durations.is_empty());
    assert_eq!(second.summary.executed, 0);
    assert!(third.cell_durations.is_empty());
    assert!(first.backend.unwrap().stores > 0);

    let h = RunHistory::load(&sidecar).unwrap();
    assert_eq!(h.len(), 3, "one record per run");
    assert_eq!(h.skipped_lines(), 0);
    let rates = h.hit_rates();
    assert!(
        rates.windows(2).all(|w| w[1] >= w[0]),
        "hit rate must not regress as the store warms: {rates:?}"
    );
    assert!(
        rates[1] > rates[0],
        "the first warm run must beat the cold run: {rates:?}"
    );

    // the cold run's durations survive the merge and seed a measured
    // cost model covering every recorded cell
    let model = MeasuredCost::from_history(&sidecar).unwrap();
    assert_eq!(model.len(), first.cell_durations.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_trailing_line_costs_one_record_not_the_file() {
    let dir = temp_dir("truncated");
    let store_path = dir.join("cells.json");
    let sidecar = history_sidecar(&store_path);
    let store = Arc::new(CellStore::new());

    run_once(&store, &sidecar);
    run_once(&store, &sidecar);
    // a third run dies mid-append
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&sidecar)
            .unwrap();
        write!(f, "{{\"summary\":{{\"requests\":12,").unwrap();
    }

    let h = RunHistory::load(&sidecar).unwrap();
    assert_eq!(h.len(), 2, "intact records survive the torn append");
    assert_eq!(h.skipped_lines(), 1);

    // recovery: the next run appends on a fresh line
    run_once(&store, &sidecar);
    let h = RunHistory::load(&sidecar).unwrap();
    assert_eq!(h.len(), 3);
    assert_eq!(h.skipped_lines(), 1);

    // and the sidecar still seeds the scheduler
    assert!(!MeasuredCost::from_history(&sidecar).unwrap().is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
