//! Workspace-local, offline stand-in for `proptest`.
//!
//! Provides the `proptest! { fn name(x in strategy, ...) { ... } }`
//! DSL, range/tuple/`prop::collection::vec` strategies, and the
//! `prop_assert*`/`prop_assume!` macros.  Inputs are drawn from a
//! deterministic per-test generator (seeded from the test name), so
//! runs are reproducible; there is no shrinking — a failing case
//! reports its inputs instead.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic splitmix64 input generator, seeded per test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and
            // platforms, unlike `DefaultHasher`.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, bound)` (`bound` must be > 0).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating test inputs.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`
        /// (upstream's `Strategy::prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A weighted choice among boxed strategies of one value type —
    /// what the [`prop_oneof!`](crate::prop_oneof) macro builds.
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// A union over `(weight, strategy)` options; at least one
        /// option with a non-zero total weight is required.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs a non-zero total weight");
            Self { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as usize) as u32;
            for (weight, strategy) in &self.options {
                if pick < *weight {
                    return strategy.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total")
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start).max(1) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64 - self.start as i64).max(1) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    /// Always produce the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

/// Strategy combinators under their upstream paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Inclusive-exclusive bounds on a generated collection's size.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.end > r.start, "empty proptest size range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// Strategy for a `Vec` of values from `elem`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(elem, size)`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.min + rng.below(self.size.max - self.size.min);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// The names application tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", __l, __r),
            ));
        }
    }};
}

/// A weighted (or unweighted) choice among strategies producing one
/// value type: `prop_oneof![3 => a, 1 => b]` draws from `a` three
/// times as often as from `b`; without weights every option is
/// equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = ::std::vec::Vec::new();
        $(__options.push(($weight as u32, ::std::boxed::Box::new($strategy)));)+
        $crate::strategy::Union::new(__options)
    }};
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Skip the current case unless `cond` holds (this simplified runner
/// counts skipped cases as passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test DSL.  Each function runs `config.cases` times
/// with freshly generated inputs; a `prop_assert*` failure panics with
/// the case number and the generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}, ",)+),
                        $(&$arg,)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            ::std::stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 0.5f64..2.5,
            n in 3usize..10,
            v in prop::collection::vec(0u64..100, 2..5),
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..10).contains(&n), "n = {n}");
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for &e in &v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn tuples_and_assume(
            pair in (0usize..6, -0.5f64..0.5),
            k in 1u32..100,
        ) {
            prop_assume!(k > 1);
            prop_assert_eq!(pair.0, pair.0);
            prop_assert!(pair.1 >= -0.5 && pair.1 < 0.5);
            prop_assert_ne!(k, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_draws_every_option_and_maps(
            v in prop::collection::vec(
                prop_oneof![
                    3 => (0.0f64..1.0).prop_map(Some),
                    1 => Just(None),
                ],
                8..16,
            ),
        ) {
            for x in &v {
                if let Some(x) = x {
                    prop_assert!((0.0..1.0).contains(x));
                }
            }
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("oneof_weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(
            (800..=1000).contains(&hits),
            "~90% of draws should take the weight-9 arm, got {hits}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("some_test");
        let mut b = crate::test_runner::TestRng::deterministic("some_test");
        let s = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
