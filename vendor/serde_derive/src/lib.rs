//! Derive macros for the workspace-local `serde` stand-in.
//!
//! The build environment has no crates.io access, so `syn`/`quote`
//! are unavailable; the input item is parsed directly from the
//! `proc_macro` token stream and the generated impls are emitted as
//! source strings.  Supported shapes are exactly what the workspace
//! uses: structs with named fields (including `#[serde(default)]`),
//! tuple structs, and enums with unit / tuple / struct variants.
//! Generic types are intentionally rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed item shape.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip a run of `#[...]` attributes; report whether any of them
    /// was `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        if attr_is_serde_default(&g.stream()) {
                            has_default = true;
                        }
                    }
                }
                _ => return has_default,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(super)` etc.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }
}

fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Parse the fields of a `{ ... }` group: `attrs vis name : Type ,`*
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let default = cur.skip_attrs();
        cur.skip_vis();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field '{name}', got {other:?}"),
        }
        // consume the type: everything until a top-level comma.
        // Angle brackets do not nest in groups, so track their depth.
        let mut angle = 0i32;
        while let Some(t) = cur.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    cur.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle += 1;
                    cur.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle -= 1;
                    cur.next();
                }
                _ => {
                    cur.next();
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple `( ... )` group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut any = false;
    for t in group {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => any = true,
        }
    }
    if any {
        arity + 1
    } else {
        0
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attrs();
        let name = cur.expect_ident("variant name");
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // skip an optional discriminant `= expr` and the trailing comma
        while let Some(t) = cur.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    cur.next();
                    break;
                }
                _ => {
                    cur.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();
    let kw = cur.expect_ident("'struct' or 'enum'");
    let name = cur.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic type '{name}' is not supported by the offline serde stand-in");
        }
    }
    match kw.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::NamedStruct {
                name,
                fields: Vec::new(),
            },
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind '{other}'"),
    }
}

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name
                    ),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), {payload})]),",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let getter = if f.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    format!(
                        "{n}: ::serde::__private::{getter}(__obj, \"{n}\")?,",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join(" ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => \
                             ::std::result::Result::Ok({name}({items})),\n\
                         _ => ::std::result::Result::Err(::serde::DeError::new(\"expected {arity}-element array for {name}\")),\n\
                     }}",
                    items = items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?))",
                                v = v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match __payload {{\n\
                                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                                         ::std::result::Result::Ok({name}::{v}({items})),\n\
                                     _ => ::std::result::Result::Err(::serde::DeError::new(\"bad payload for {name}::{v}\")),\n\
                                 }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        Some(format!("\"{v}\" => {{ {body} }}", v = v.name))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let getter =
                                    if f.default { "field_or_default" } else { "field" };
                                format!(
                                    "{n}: ::serde::__private::{getter}(__p, \"{n}\")?,",
                                    n = f.name
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __p = ::serde::__private::expect_object(__payload, \"{name}::{v}\")?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                             }}",
                            v = v.name,
                            inits = inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(__s) = __v {{\n\
                             return match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant '{{__other}}'\"))),\n\
                             }};\n\
                         }}\n\
                         if let ::serde::Value::Object(__fields) = __v {{\n\
                             if __fields.len() == 1 {{\n\
                                 let (__k, __payload) = &__fields[0];\n\
                                 return match __k.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown {name} variant '{{__other}}'\"))),\n\
                                 }};\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::DeError::new(\"bad encoding for enum {name}\"))\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
