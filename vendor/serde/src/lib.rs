//! Workspace-local, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crates.io
//! mirror, so the workspace vendors the minimal serialization surface
//! it actually uses.  Unlike real serde's visitor-based architecture,
//! this stand-in routes everything through one self-describing
//! [`Value`] tree — dramatically simpler, byte-stable, and entirely
//! sufficient for the JSON artifacts and measurement stores this
//! workspace produces.  The public names (`Serialize`, `Deserialize`,
//! `#[derive(Serialize, Deserialize)]`, `#[serde(default)]`) match
//! real serde so application code is source-compatible.

// Vendored stand-in: keep its shape close to the real crate's rather
// than chasing lints.
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of serialized data (the JSON data model,
/// with integers kept exact).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer (preferred for non-negative values).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.at(idx).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// This value as a serialization tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a serialization tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------- primitive impls ----------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| DeError::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(DeError::new("expected fixed-size array")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::new("expected 2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(DeError::new("expected 3-tuple")),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|(k, v)| (k, v).to_value()).collect())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| <(K, V)>::from_value(item))
                .collect(),
            _ => Err(DeError::new("expected map entry array")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|(k, v)| (k, v).to_value()).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------- derive-support helpers ----------

/// Helpers the `#[derive(Serialize, Deserialize)]` expansion calls.
/// Not part of the public API contract.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Fetch and deserialize a required struct field.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(f) => T::from_value(f).map_err(|e| DeError::new(format!("field '{name}': {e}"))),
            None => Err(DeError::new(format!("missing field '{name}'"))),
        }
    }

    /// Fetch an optional (`#[serde(default)]`) struct field.
    pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(Value::Null) | None => Ok(T::default()),
            Some(f) => T::from_value(f).map_err(|e| DeError::new(format!("field '{name}': {e}"))),
        }
    }

    /// Expect an object (struct payload).
    pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Value, DeError> {
        match v {
            Value::Object(_) => Ok(v),
            _ => Err(DeError::new(format!("expected object for {ty}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        let a: [u64; 3] = Deserialize::from_value(&[1u64, 2, 3].to_value()).unwrap();
        assert_eq!(a, [1, 2, 3]);
        let o: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Float(0.5)]),
        )]);
        assert_eq!(v["xs"][0], 0.5);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn ints_deserialize_as_floats() {
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert_eq!(f64::from_value(&Value::Int(-7)).unwrap(), -7.0);
    }
}
