//! Workspace-local, offline stand-in for `rand`.
//!
//! The workspace's production code is fully deterministic (seeded
//! virtual-time noise lives in `kc-machine`), so only a tiny seedable
//! generator is provided for tests and tools that want ad-hoc
//! pseudo-randomness.

/// A small, fast, seedable generator (splitmix64).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// A generator seeded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        range.start + self.next_u64() % span.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
