//! Workspace-local, offline stand-in for `rayon`.
//!
//! Implements the small data-parallel surface this workspace uses —
//! `par_iter()`/`into_par_iter()` followed by `map`/`for_each`/
//! `collect` — over `std::thread::scope`.  Items are split into
//! contiguous chunks, one per worker, and results are stitched back in
//! input order, so `collect()` is order-identical to the sequential
//! iterator.  `RAYON_NUM_THREADS` is honoured like the real crate.

// Vendored stand-in: keep its shape close to the real crate's rather
// than chasing lints.
#![allow(clippy::all)]

/// Everything application code imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParMap, ParSource};
}

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Order-preserving parallel map: contiguous chunks, one scoped thread
/// per worker, results concatenated in input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A not-yet-mapped parallel source (the result of `par_iter()` /
/// `into_par_iter()`).
pub struct ParSource<T> {
    items: Vec<T>,
}

/// A parallel source with a pending map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParSource<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, |t| f(t));
    }

    /// Collect the items (identity stage) preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Run the map stage and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }

    /// Run the map stage, discarding results.
    pub fn for_each_noop(self) {
        par_map_vec(self.items, self.f);
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParSource<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParSource<&'a T> {
        ParSource {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParSource<&'a T> {
        ParSource {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// A parallel iterator over owned items.
    fn into_par_iter(self) -> ParSource<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParSource<T> {
        ParSource { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParSource<usize> {
        ParSource {
            items: self.collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..103).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let squares: Vec<u64> = (0usize..17)
            .into_par_iter()
            .map(|x| (x * x) as u64)
            .collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 17);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
