//! Workspace-local, offline stand-in for `serde_json`.
//!
//! Serializes the [`serde::Value`] data model to JSON text and parses
//! JSON text back.  Floats are printed with Rust's shortest-roundtrip
//! `Display`, so `f64` values survive a write/read cycle exactly
//! (the behaviour the real crate's `float_roundtrip` feature buys).

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (2-space indent, like the real crate).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------- writer ----------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // JSON has no distinct integer type, but keep a trailing ".0"
        // so a float stays a float through a roundtrip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // real serde_json also refuses non-finite floats; null is the
        // conventional JSON stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------- parser ----------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 code point
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("bt".to_string())),
            (
                "samples".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Float(0.1)]),
            ),
            ("procs".to_string(), Value::UInt(9)),
            ("neg".to_string(), Value::Int(-4)),
            ("flag".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 12345.6789, -0.0625] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn integral_float_stays_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\te".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
