//! Workspace-local, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a lock held by a panicked
//! thread is simply re-acquirable (parking_lot semantics) rather than
//! poisoned.

use std::fmt;
use std::sync::TryLockError;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
