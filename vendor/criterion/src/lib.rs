//! Workspace-local, offline stand-in for `criterion`.
//!
//! Keeps the bench files compiling and runnable without the real
//! statistical harness: each `bench_function` executes its routine a
//! handful of times and prints the best observed wall-clock time.
//! Good enough for smoke-testing the bench targets and for eyeballing
//! gross regressions; not a statistics engine.

// Vendored stand-in: keep its shape close to the real crate's rather
// than chasing lints.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many times the stand-in executes each routine (first run is
/// warm-up, the rest are timed).
const RUNS: u32 = 3;

/// Top-level harness handle.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Run a free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, f);
        self
    }
}

/// A named group of benchmarks; configuration setters are accepted and
/// ignored (the stand-in always does `RUNS` passes).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Time one routine.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &name.to_string(), f);
        self
    }

    /// Time one routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, mut f: F) {
    let mut best: Option<Duration> = None;
    for run in 0..RUNS {
        let mut b = Bencher { elapsed: None };
        f(&mut b);
        let elapsed = b.elapsed.unwrap_or(Duration::ZERO);
        if run > 0 {
            best = Some(best.map_or(elapsed, |p| p.min(elapsed)));
        }
    }
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label}: {:?} (best of {} timed runs)",
        best.unwrap_or(Duration::ZERO),
        RUNS - 1
    );
}

/// Passed to each benchmark routine.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Execute `routine` once and record its wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Identifies one parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/<function>/<parameter>` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Declared throughput of a routine; accepted and ignored.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10).warm_up_time(Duration::from_millis(1));
        let mut count = 0u32;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(count, RUNS, "routine runs once per pass");
    }
}
