//! Workspace-local, offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided — an unbounded channel with
//! cloneable `Sender`/`Receiver` halves where the `Receiver` supports
//! `recv`, `try_recv` and `is_empty`, which is the surface the
//! simulated cluster and its persistent rank pools use.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when the receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned when all senders are gone and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// A new unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // last sender: wake a blocked receiver so it can observe
                // the disconnect
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking until one arrives or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeue the next value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (s, r) = unbounded();
            s.send(1).unwrap();
            s.send(2).unwrap();
            assert_eq!(r.recv().unwrap(), 1);
            assert_eq!(r.recv().unwrap(), 2);
            assert!(r.is_empty());
        }

        #[test]
        fn disconnect_on_last_sender_drop() {
            let (s, r) = unbounded::<u8>();
            let s2 = s.clone();
            drop(s);
            s2.send(7).unwrap();
            drop(s2);
            assert_eq!(r.recv().unwrap(), 7);
            assert_eq!(r.recv(), Err(RecvError));
        }

        #[test]
        fn blocking_recv_across_threads() {
            let (s, r) = unbounded();
            let t = std::thread::spawn(move || r.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            s.send(42u64).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn cloned_receivers_share_the_queue_and_keep_the_channel_alive() {
            let (s, r) = unbounded::<u8>();
            let r2 = r.clone();
            s.send(1).unwrap();
            assert_eq!(r2.recv().unwrap(), 1);
            // dropping one receiver clone must not disconnect senders
            drop(r2);
            s.send(2).unwrap();
            assert_eq!(r.recv().unwrap(), 2);
            drop(r);
            assert_eq!(s.send(3), Err(SendError(3)));
        }

        #[test]
        fn try_recv_states() {
            let (s, r) = unbounded::<u8>();
            assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
            s.send(1).unwrap();
            assert_eq!(r.try_recv(), Ok(1));
            drop(s);
            assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
