//! Paper Eq. 3 in action: compose hand-derived analytical kernel
//! models with measured coupling coefficients.
//!
//! ```text
//! cargo run --release --example analytic_composition
//! ```

use kernel_couplings::experiments::{analytic, Campaign, Runner};
use kernel_couplings::npb::models::analytic_loop_models;
use kernel_couplings::npb::{Benchmark, Class, NpbApp};

fn main() {
    let campaign = Campaign::builder(Runner::noise_free()).build();
    let app = NpbApp::new(Benchmark::Bt, Class::W, 9);

    println!("hand-derived kernel models for {} —", app.label());
    println!(
        "{:>12} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "kernel", "compute", "memory", "comm", "warm E_k", "isolated E_k"
    );
    for m in analytic_loop_models(&app, &campaign.runner().machine) {
        println!(
            "{:>12} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>11.2}ms",
            m.name,
            1e3 * m.compute,
            1e3 * m.memory,
            1e3 * m.comm,
            1e3 * m.total(),
            1e3 * m.isolated_total(),
        );
    }

    println!();
    let table =
        analytic::analytic_table(&campaign, Benchmark::Bt, Class::W, &[4, 9, 16, 25], 3).unwrap();
    println!("{table}");
    println!(
        "The coupling coefficients correct the isolated-measurement bias of the\n\
         hand models without any simulation — Eq. 3's composition algebra."
    );
}
