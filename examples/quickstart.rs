//! Quickstart: the coupling methodology end to end on a synthetic
//! application — no benchmarks, no simulator, just the algebra.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kernel_couplings::coupling::{ChainExecutor, CouplingAnalysis, Predictor, SyntheticExecutor};

fn main() {
    // A made-up pipeline of four kernels.  "decode" leaves its output
    // hot in cache for "transform" (constructive coupling); "reduce"
    // and "emit" fight over the same cache sets (destructive).
    let mut app = SyntheticExecutor::builder()
        .kernel("decode", 0.80)
        .kernel("transform", 1.40)
        .kernel("reduce", 0.60)
        .kernel("emit", 0.30)
        .interaction("decode", "transform", -0.25)
        .interaction("transform", "reduce", -0.05)
        .interaction("reduce", "emit", 0.12)
        .interaction("emit", "decode", 0.02)
        .overheads(2.0, 0.5)
        .loop_iterations(1000)
        .build();

    let actual = app.measure_application().mean();
    println!("actual application time: {actual:.2} s\n");

    for chain_len in 1..=4 {
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 5)
            .expect("chain length fits the kernel set");

        println!("chain length {chain_len}:");
        for (w, window) in analysis.windows().iter().enumerate() {
            let c = analysis.coupling(w).unwrap();
            let kind = if c < 0.995 {
                "constructive"
            } else if c > 1.005 {
                "destructive"
            } else {
                "neutral"
            };
            println!(
                "  C{} = {c:.4}  ({kind})",
                window.label(analysis.kernel_set())
            );
        }
        let coeff = analysis.coefficients().unwrap();
        print!("{coeff}");

        let summed = analysis.predict(Predictor::Summation).unwrap();
        let coupled = analysis.predict(Predictor::coupling(chain_len)).unwrap();
        println!(
            "  summation: {summed:8.2} s  ({:+5.2}%)",
            100.0 * (summed - actual) / actual
        );
        println!(
            "  coupling : {coupled:8.2} s  ({:+5.2}%)\n",
            100.0 * (coupled - actual) / actual
        );
    }

    println!(
        "Longer chains see more of the interaction structure; with the\n\
         full loop as one chain the prediction is exact — that is the\n\
         paper's composition algebra at work."
    );
}
