//! Watch the pipelined solver communication with the machine's
//! event-trace facility: one BT x_solve on a 3×3 process grid, every
//! send/receive with its wait time.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use kernel_couplings::machine::{Cluster, CommEvent, MachineConfig};
use kernel_couplings::npb::{Benchmark, Class, Mode, NpbApp, RankState};

fn main() {
    let app = NpbApp::new(Benchmark::Bt, Class::S, 9);
    let machine = MachineConfig::ibm_sp_p2sc()
        .without_noise()
        .with_comm_trace();
    let spec = app.benchmark.spec();

    let out = Cluster::new(machine).run(app.procs, |ctx| {
        let mut st = RankState::new(
            app.benchmark,
            app.physics(),
            app.problem().dims(),
            app.grid(),
            ctx,
            false,
        );
        // one x_solve, profile mode (the trace is about the schedule)
        (spec.loop_kernel("x_solve").unwrap().run)(&mut st, ctx, Mode::Profile);
        ctx.now()
    });

    println!(
        "x_solve on {} — per-rank communication timelines\n",
        app.label()
    );
    for (rank, report) in out.reports.iter().enumerate() {
        let col = rank % 3;
        println!(
            "rank {rank} (grid column {col}): {} events, finished at {:.3} ms",
            report.comm_trace.len(),
            1e3 * report.time
        );
        for e in report.comm_trace.iter().take(4) {
            match e {
                CommEvent::Send {
                    time, dest, bytes, ..
                } => {
                    println!(
                        "    {:>8.3} ms  send -> rank {dest}  ({bytes} B)",
                        1e3 * time
                    )
                }
                CommEvent::Recv {
                    time, src, waited, ..
                } => println!(
                    "    {:>8.3} ms  recv <- rank {src}  (waited {:.3} ms)",
                    1e3 * time,
                    1e3 * waited
                ),
            }
        }
        if report.comm_trace.len() > 4 {
            println!("    ... {} more", report.comm_trace.len() - 4);
        }
    }

    // quantify the pipeline: how much of each column's time is waiting
    println!("\nper-column total receive wait (pipeline fill shows up in column 1, 2):");
    for col in 0..3 {
        let wait: f64 = out
            .reports
            .iter()
            .enumerate()
            .filter(|(r, _)| r % 3 == col)
            .flat_map(|(_, rep)| &rep.comm_trace)
            .map(|e| match e {
                CommEvent::Recv { waited, .. } => *waited,
                _ => 0.0,
            })
            .sum();
        println!("    column {col}: {:.3} ms", 1e3 * wait);
    }
}
