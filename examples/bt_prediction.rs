//! Reproduce the paper's BT class-W study (Tables 3a/3b) in one go:
//! measure 3-kernel-chain couplings on the simulated IBM SP and
//! compare the coupling predictor against summation.
//!
//! ```text
//! cargo run --release --example bt_prediction
//! ```

use kernel_couplings::experiments::{bt, Campaign};

fn main() {
    println!("BT class W on the simulated IBM SP (120 MHz P2SC nodes)\n");

    let campaign = Campaign::default(); // noisy timers, like real measurements
    let pair = bt::table3(&campaign).unwrap();

    println!("{}", pair.render_text());

    let sum = pair
        .predictions
        .row("Summation")
        .unwrap()
        .avg_rel_err_pct()
        .unwrap();
    let cpl = pair
        .predictions
        .row("Coupling: 3 kernels")
        .unwrap()
        .avg_rel_err_pct()
        .unwrap();
    println!("average relative error:  summation {sum:.2}%   coupling {cpl:.2}%");
    println!("(the paper reports 22.42% and 1.42% for the same experiment on the real machine)");
}
