//! Tour of the campaign telemetry layer: run a small coupling
//! campaign, watch the structured spans it emits, print the
//! end-of-run aggregates, and write (then read back) a JSON-lines
//! trace.
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```

use kernel_couplings::coupling::{read_jsonl, Disposition, JsonLinesSink, TelemetryEvent};
use kernel_couplings::experiments::{AnalysisSpec, Campaign, Runner, SummaryOpts};
use kernel_couplings::npb::{Benchmark, Class};
use std::sync::Arc;

fn main() {
    let campaign = Campaign::builder(Runner::noise_free()).build();

    // external sinks attach at any time; this one buffers everything
    // and writes a canonical JSON-lines trace on flush
    let trace_path = std::env::temp_dir().join("kc_telemetry_tour.jsonl");
    let trace = Arc::new(JsonLinesSink::new(trace_path.clone()));
    campaign.attach_sink(trace.clone());

    // two chain lengths of the same study share their isolated
    // kernels, overhead and ground truth — watch the dispositions
    for len in [2, 3] {
        let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, len);
        campaign.analysis(&spec).unwrap();
    }

    // the campaign's always-on collector, in canonical order
    let events = campaign.telemetry_events();
    println!("campaign emitted {} events; the first few:", events.len());
    for e in events.iter().take(6) {
        println!("  {e:?}");
    }

    let executed = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TelemetryEvent::CellFinished {
                    disposition: Disposition::Executed,
                    ..
                }
            )
        })
        .count();
    println!("\n{executed} cells were actually simulated; the rest were cache hits.");

    // end-of-run aggregates, appended to the stream so the trace ends
    // with a RunSummary line
    let summary = campaign.summary(SummaryOpts::top(5).recorded());
    println!("\n{summary}");

    trace.flush().unwrap();
    let replayed = read_jsonl(&trace_path).unwrap();
    println!(
        "trace: {} events written to {} and parsed back",
        replayed.len(),
        trace_path.display()
    );
    let _ = std::fs::remove_file(&trace_path);
}
