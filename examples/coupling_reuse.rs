//! The paper's future work, answered: which coupling values can be
//! reused across configurations?
//!
//! ```text
//! cargo run --release --example coupling_reuse
//! ```

use kernel_couplings::experiments::{reuse, Campaign, Runner};
use kernel_couplings::npb::{Benchmark, Class};

fn main() {
    let campaign = Campaign::builder(Runner::noise_free()).build();

    println!("Within one cache regime, coefficients transfer almost freely:\n");
    let (table, study) =
        reuse::proc_transfer_table(&campaign, Benchmark::Bt, Class::W, &[4, 9, 16, 25], 3).unwrap();
    println!("{table}");
    println!(
        "mean transfer error {:.2}%, beats summation in {:.0}% of transfers\n",
        100.0 * study.mean_transfer_err(),
        100.0 * study.transfer_win_rate()
    );

    println!("Across cache regimes, reuse breaks down — measure anew:\n");
    let (table, study) = reuse::class_transfer_table(
        &campaign,
        Benchmark::Bt,
        &[Class::S, Class::W, Class::A],
        16,
        3,
    )
    .unwrap();
    println!("{table}");
    println!(
        "mean transfer error {:.2}%, beats summation in {:.0}% of transfers",
        100.0 * study.mean_transfer_err(),
        100.0 * study.transfer_win_rate()
    );
    println!(
        "\nRule of thumb this study supports: reuse coupling values while the\n\
         per-processor working set stays at the same cache level (the paper's\n\
         'finite number of major value changes'); re-measure when it crosses one."
    );
}
