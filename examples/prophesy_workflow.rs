//! The Prophesy-style workflow: measure once, store, plan, reuse.
//!
//! The paper grew out of the authors' Prophesy measurement database;
//! this example shows the full loop on the simulated SP: run coupling
//! campaigns for BT class W at a few processor counts, persist them,
//! then ask the advisor how to predict configurations that were never
//! fully measured.
//!
//! ```text
//! cargo run --release --example prophesy_workflow
//! ```

use kernel_couplings::coupling::{ChainExecutor, CouplingAnalysis};
use kernel_couplings::experiments::transitions::{cache_regime, working_set_bytes};
use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};
use kernel_couplings::prophesy::{
    advise, transfer_predict, Advice, CampaignKey, CampaignRecord, CampaignStore,
};

fn key(class: Class, procs: usize) -> CampaignKey {
    CampaignKey::new("ibm-sp-p2sc", "bt", &class.to_string(), procs, 3)
}

fn campaign(class: Class, procs: usize) -> (CampaignRecord, CouplingAnalysis) {
    let mut exec = NpbExecutor::new(
        NpbApp::new(Benchmark::Bt, class, procs),
        MachineConfig::ibm_sp_p2sc().without_noise(),
        ExecConfig::default(),
    );
    let analysis = CouplingAnalysis::collect(&mut exec, 3, 3).unwrap();
    (
        CampaignRecord::from_analysis(key(class, procs), &analysis),
        analysis,
    )
}

/// Regime = cache level holding the per-processor working set.
fn regime(k: &CampaignKey) -> usize {
    let class = match k.class.as_str() {
        "S" => Class::S,
        "W" => Class::W,
        "A" => Class::A,
        _ => Class::B,
    };
    let machine = MachineConfig::ibm_sp_p2sc();
    cache_regime(&machine, working_set_bytes(Benchmark::Bt, class, k.procs))
}

fn main() {
    let store_path = std::env::temp_dir().join("kc_prophesy_demo.json");
    let mut store = CampaignStore::new();

    println!("measuring and storing BT class W campaigns at p = 4 and 9 ...");
    for p in [4, 9] {
        let (rec, _) = campaign(Class::W, p);
        store.insert(rec);
    }
    store.save(&store_path).unwrap();
    println!(
        "store: {} campaigns -> {}\n",
        store.len(),
        store_path.display()
    );

    // a fresh process would now load the store:
    let store = CampaignStore::load(&store_path).unwrap();

    for (class, procs) in [(Class::W, 4), (Class::W, 25), (Class::A, 4)] {
        let target = key(class, procs);
        match advise(&store, &target, 5, regime) {
            Advice::Native { key } => println!("{target}: native campaign stored ({key})"),
            Advice::Transfer { source, regime } => {
                // the target only needs its isolated kernel times
                let mut exec = NpbExecutor::new(
                    NpbApp::new(Benchmark::Bt, class, procs),
                    MachineConfig::ibm_sp_p2sc().without_noise(),
                    ExecConfig::default(),
                );
                let ids: Vec<_> = exec.kernel_set().ids().collect();
                let isolated: Vec<f64> = ids
                    .iter()
                    .map(|&k| exec.measure_chain(&[k], 3).mean())
                    .collect();
                let overhead = exec.measure_serial_overhead().mean();
                let iters = exec.loop_iterations();
                let pred = transfer_predict(&store, &source, &isolated, iters, overhead).unwrap();
                let actual = exec.measure_application().mean();
                println!(
                    "{target}: TRANSFER from {source} (regime {regime}) -> \
                     predicted {pred:.2} s, actual {actual:.2} s ({:.2}% off, \
                     5 cluster runs instead of 12)",
                    100.0 * (pred - actual).abs() / actual
                );
            }
            Advice::MeasureFresh { plan } => println!(
                "{target}: different regime — measure fresh ({} cluster runs)",
                plan.runs()
            ),
        }
    }
    let _ = std::fs::remove_file(&store_path);
}
