//! Run the LU benchmark numerically (real SSOR sweeps with diagonal
//! wavefront pipelining across the simulated ranks) and watch it
//! converge back to the manufactured steady state after a
//! perturbation.
//!
//! ```text
//! cargo run --release --example lu_wavefront
//! ```

use kernel_couplings::machine::MachineConfig;
use kernel_couplings::npb::{Benchmark, Class, ExecConfig, Mode, NpbApp, NpbExecutor};

fn main() {
    let app = NpbApp::new(Benchmark::Lu, Class::S, 4);
    println!("{} — numeric SSOR run, perturbed start\n", app.label());

    let cfg = ExecConfig {
        mode: Mode::Numeric,
        ..ExecConfig::default()
    };
    let exec = NpbExecutor::new(app, MachineConfig::ibm_sp_p2sc().without_noise(), cfg);

    println!(
        "{:>6}  {:>14}  {:>14}",
        "iters", "residual^2", "deviation^2"
    );
    let mut prev_dev = f64::INFINITY;
    for iters in [1, 2, 4, 8, 16, 32] {
        let s = exec.run_numeric(iters, 0.05);
        println!(
            "{iters:>6}  {:>14.3e}  {:>14.3e}",
            s.verify.resid_norm, s.verify.dev_norm
        );
        assert!(
            s.verify.dev_norm < prev_dev,
            "SSOR must contract the perturbation monotonically here"
        );
        prev_dev = s.verify.dev_norm;
    }

    let fixed = exec.run_numeric(8, 0.0);
    println!(
        "\nunperturbed run stays on the steady state to machine precision:\n\
         residual^2 = {:.3e}, deviation^2 = {:.3e}",
        fixed.verify.resid_norm, fixed.verify.dev_norm
    );
    println!("virtual time for 8 iterations: {:.3} s", fixed.total_time);
}
