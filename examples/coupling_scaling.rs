//! The paper's scaling finding: coupling values move through a finite
//! number of regimes as problem size and processor count scale, keyed
//! to which cache level holds the per-processor working set.
//!
//! ```text
//! cargo run --release --example coupling_scaling
//! ```

use kernel_couplings::experiments::{transitions, Campaign, Runner};
use kernel_couplings::npb::{Benchmark, Class};

fn main() {
    let campaign = Campaign::builder(Runner::noise_free()).build();
    let classes = [Class::S, Class::W, Class::A];
    let procs = [4, 9, 16, 25];

    println!(
        "{}",
        transitions::transition_table(&campaign, &classes, &procs).unwrap()
    );
    println!("{}", transitions::regime_table(&campaign, &classes, &procs));

    println!("per-processor working sets (BT):");
    for class in classes {
        print!("  class {class}:");
        for p in procs {
            let ws = transitions::working_set_bytes(Benchmark::Bt, class, p);
            print!("  {:>8.1} KiB", ws as f64 / 1024.0);
        }
        println!();
    }
    println!(
        "\nWhere the working set crosses a cache capacity (128 KiB L1, 4 MiB L2),\n\
         the mean coupling value shifts regime — class A starts memory-bound at\n\
         4 processors (coupling ~1) and becomes cache-resident and strongly\n\
         constructive by 25."
    );
}
