//! Drive the simulated cluster directly: a ring pipeline with
//! compute, cache traffic and messages, showing how virtual time
//! composes — the substrate everything else is built on.
//!
//! ```text
//! cargo run --release --example machine_playground
//! ```

use kernel_couplings::machine::{Cluster, MachineConfig};

fn main() {
    let machine = MachineConfig::ibm_sp_p2sc();
    println!("machine: {}\n", machine.name);

    for p in [2, 4, 8, 16] {
        let out = Cluster::new(machine.clone()).run(p, |ctx| {
            // each rank owns a 1 MiB buffer and streams it, then the
            // ranks pass a token around the ring twice
            let buf = ctx.register_region("buf", 1 << 20);
            for _ in 0..2 {
                ctx.touch(buf, 0, 1 << 20);
                ctx.flops(2_000_000);
            }
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            for round in 0..2u32 {
                ctx.send(right, round, vec![ctx.rank() as f64]);
                let _ = ctx.recv(left, round);
            }
            ctx.barrier();
            ctx.now()
        });
        let report = &out.reports[0];
        println!(
            "p = {p:>2}: elapsed {:>9.4} s | msgs {:>3} | bytes {:>5} | \
             rank0 L1 hits {:>6}, L2 hits {:>4}, mem {:>5}, flops {}",
            out.elapsed(),
            out.total_messages(),
            out.total_bytes(),
            report.cache.hits_at(0),
            report.cache.hits_at(1),
            report.cache.misses_to_memory(),
            report.flops,
        );
    }

    println!(
        "\nElapsed time grows with the ring size only through latency and\n\
         switch contention — compute and cache traffic are per-rank.\n\
         The second streaming pass hits in L2 (1 MiB < 4 MiB), which you\n\
         can read off the per-level counters."
    );
}
