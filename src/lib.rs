//! # kernel-couplings
//!
//! A full reproduction of *"Using Kernel Couplings to Predict Parallel
//! Application Performance"* (Taylor, Wu, Geisler, Stevens — HPDC
//! 2002) as a Rust workspace, from the coupling algebra down to the
//! NAS Parallel Benchmarks it was evaluated on and the (simulated)
//! IBM SP they ran on.
//!
//! This crate is the facade: it re-exports the workspace's public
//! surface so downstream users can depend on one crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`coupling`] | `kc-core` | coupling values, composition coefficients, predictors |
//! | [`npb`] | `kc-npb` | BT / SP / LU benchmarks, kernel-decomposed |
//! | [`machine`] | `kc-machine` | the deterministic simulated cluster |
//! | [`cachesim`] | `kc-cachesim` | multi-level set-associative cache simulator |
//! | [`grid`] | `kc-grid` | arrays, decompositions, process topologies |
//! | [`experiments`] | `kc-experiments` | regenerators for every paper table |
//! | [`prophesy`] | `kc-prophesy` | measurement database, planner, reuse advisor |
//! | [`regime`] | `kc-regime` | sweep campaigns, change-point detection, regime maps |
//! | [`serve`] | `kc-serve` | online batched prediction service (wire protocol, server, metrics) |
//! | [`loadgen`] | `kc-loadgen` | open-loop load generator and fault-injecting SLO harness |
//!
//! ## Quickstart
//!
//! Measure couplings of a benchmark on the simulated SP and predict
//! its execution time two ways:
//!
//! ```
//! use kernel_couplings::coupling::{ChainExecutor, CouplingAnalysis, Predictor};
//! use kernel_couplings::machine::MachineConfig;
//! use kernel_couplings::npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};
//!
//! let app = NpbApp::new(Benchmark::Bt, Class::S, 4);
//! let machine = MachineConfig::ibm_sp_p2sc().without_noise();
//! let mut exec = NpbExecutor::new(app, machine, ExecConfig::default());
//!
//! let analysis = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
//! let actual = analysis.actual().mean();
//! let coupled = analysis.predict(Predictor::coupling(2)).unwrap();
//! let summed = analysis.predict(Predictor::Summation).unwrap();
//!
//! // the paper's headline: coupling-aware composition beats naive summation
//! assert!((coupled - actual).abs() < (summed - actual).abs());
//! ```

/// The coupling model (re-export of `kc-core`).
pub mod coupling {
    pub use kc_core::*;
}

/// The NAS Parallel Benchmarks BT/SP/LU (re-export of `kc-npb`).
pub mod npb {
    pub use kc_npb::*;
}

/// The simulated cluster (re-export of `kc-machine`).
pub mod machine {
    pub use kc_machine::*;
}

/// The cache simulator (re-export of `kc-cachesim`).
pub mod cachesim {
    pub use kc_cachesim::*;
}

/// Structured-grid substrate (re-export of `kc-grid`).
pub mod grid {
    pub use kc_grid::*;
}

/// Paper-table regenerators (re-export of `kc-experiments`).
pub mod experiments {
    pub use kc_experiments::*;
}

/// Prophesy-style measurement database (re-export of `kc-prophesy`).
pub mod prophesy {
    pub use kc_prophesy::*;
}

/// The coupling-regime explorer (re-export of `kc-regime`).
pub mod regime {
    pub use kc_regime::*;
}

/// The online prediction service (re-export of `kc-serve`).
pub mod serve {
    pub use kc_serve::*;
}

/// Load generation and SLO checking (re-export of `kc-loadgen`).
pub mod loadgen {
    pub use kc_loadgen::*;
}
