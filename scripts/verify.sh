#!/usr/bin/env bash
# The repo's verification gate: tier-1 build + tests, then a smoke run
# of the paper-table campaign.  Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== format =="
cargo fmt --check

echo "== lints (clippy, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== tests (scheduler + history sidecar, release) =="
cargo test -q --release --test scheduler --test history_sidecar

echo "== docs (no rustdoc warnings) =="
doc_log=$(cargo doc --no-deps --workspace 2>&1) || { echo "$doc_log"; exit 1; }
if echo "$doc_log" | grep -q "^warning"; then
    echo "$doc_log" | grep -A4 "^warning"
    echo "verify: rustdoc warnings"
    exit 1
fi

echo "== smoke: BT class-S table via the campaign engine =="
cargo run --release -p kc-experiments --bin paper_tables -- bt-s --noise-free --metrics

echo "verify: OK"
