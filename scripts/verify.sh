#!/usr/bin/env bash
# The repo's verification gate: tier-1 build + tests, then a smoke run
# of the paper-table campaign.  Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== format =="
cargo fmt --check

echo "== lints (clippy, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== tests (scheduler + concurrency + history sidecar, release) =="
cargo test -q --release --test scheduler --test cache_concurrency --test history_sidecar

echo "== byte-identity: full tables under --jobs 1 vs --jobs 8 =="
j1=$(mktemp) && j8=$(mktemp)
trap 'rm -f "$j1" "$j8"' EXIT
./target/release/paper_tables all --noise-free --jobs 1 > "$j1" 2>/dev/null
./target/release/paper_tables all --noise-free --jobs 8 > "$j8" 2>/dev/null
if ! cmp -s "$j1" "$j8"; then
    echo "verify: tables differ between --jobs 1 and --jobs 8"
    diff "$j1" "$j8" | head -20
    exit 1
fi
echo "tables byte-identical across scheduler pool sizes"

echo "== docs (no rustdoc warnings) =="
doc_log=$(cargo doc --no-deps --workspace 2>&1) || { echo "$doc_log"; exit 1; }
if echo "$doc_log" | grep -q "^warning"; then
    echo "$doc_log" | grep -A4 "^warning"
    echo "verify: rustdoc warnings"
    exit 1
fi

echo "== smoke: BT class-S table via the campaign engine =="
cargo run --release -p kc-experiments --bin paper_tables -- bt-s --noise-free --metrics

echo "verify: OK"
