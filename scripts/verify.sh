#!/usr/bin/env bash
# The repo's verification gate: tier-1 build + tests, then a smoke run
# of the paper-table campaign.  Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== format =="
cargo fmt --check

echo "== lints (clippy, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== build (release, all workspace binaries) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== tests (scheduler + concurrency + history sidecar + serve + stores + load/faults, release) =="
cargo test -q --release --test scheduler --test cache_concurrency \
    --test history_sidecar --test serve_concurrency --test golden_tables \
    --test store_backend --test loadgen_slo --test serve_faults \
    --test regime_map

echo "== byte-identity: full tables under --jobs 1 vs --jobs 8 =="
j1=$(mktemp) && j8=$(mktemp) && smoke=$(mktemp -d)
trap 'rm -f "$j1" "$j8"; rm -rf "$smoke"' EXIT
./target/release/paper_tables all --noise-free --jobs 1 > "$j1" 2>/dev/null
./target/release/paper_tables all --noise-free --jobs 8 > "$j8" 2>/dev/null
if ! cmp -s "$j1" "$j8"; then
    echo "verify: tables differ between --jobs 1 and --jobs 8"
    diff "$j1" "$j8" | head -20
    exit 1
fi
echo "tables byte-identical across scheduler pool sizes"

echo "== byte-identity: full tables with the rank pool on vs off =="
pc=$(mktemp)
trap 'rm -f "$j1" "$j8" "$pc"; rm -rf "$smoke"' EXIT
KC_RANK_POOL=0 ./target/release/paper_tables all --noise-free --jobs 8 > "$pc" 2>/dev/null
if ! cmp -s "$j8" "$pc"; then
    echo "verify: tables differ between pooled and spawned rank execution"
    diff "$j8" "$pc" | head -20
    exit 1
fi
echo "tables byte-identical with rank pooling disabled (KC_RANK_POOL=0)"

echo "== byte-identity: tables under the json vs sharded store backend =="
bj=$(mktemp) && bs=$(mktemp)
trap 'rm -f "$j1" "$j8" "$pc" "$bj" "$bs"; rm -rf "$smoke"' EXIT
./target/release/paper_tables bt-s transitions --noise-free \
    --store "json:$smoke/cells.json" > "$bj" 2>/dev/null
./target/release/paper_tables bt-s transitions --noise-free \
    --store "sharded:$smoke/cells.kcs" > "$bs" 2>/dev/null
if ! cmp -s "$bj" "$bs"; then
    echo "verify: tables differ between json and sharded store backends"
    diff "$bj" "$bs" | head -20
    exit 1
fi
[ -f "$smoke/cells.json" ] || { echo "verify: json store not written"; exit 1; }
[ -f "$smoke/cells.kcs/kcstore.json" ] || { echo "verify: sharded store not written"; exit 1; }
ls "$smoke"/cells.kcs/shard-*.idx > /dev/null 2>&1 || {
    echo "verify: sharded flush left no index sidecars"; exit 1; }
echo "tables byte-identical across store backends"

echo "== byte-identity: warm sharded re-runs with sidecars present, then deleted =="
bw=$(mktemp) && bn=$(mktemp)
trap 'rm -f "$j1" "$j8" "$pc" "$bj" "$bs" "$bw" "$bn"; rm -rf "$smoke"' EXIT
# warm re-run: indexes come from the sidecars written by the first run
./target/release/paper_tables bt-s transitions --noise-free \
    --store "sharded:$smoke/cells.kcs" > "$bw" 2>/dev/null
if ! cmp -s "$bj" "$bw"; then
    echo "verify: warm sharded run (sidecar-loaded indexes) drifted"
    diff "$bj" "$bw" | head -20
    exit 1
fi
# delete every sidecar: indexes must rebuild by scan, answers identical
rm -f "$smoke"/cells.kcs/shard-*.idx
./target/release/paper_tables bt-s transitions --noise-free \
    --store "sharded:$smoke/cells.kcs" > "$bn" 2>/dev/null
if ! cmp -s "$bj" "$bn"; then
    echo "verify: sharded run with deleted sidecars drifted"
    diff "$bj" "$bn" | head -20
    exit 1
fi
# ratio-triggered auto-compaction enabled: still byte-identical
./target/release/paper_tables bt-s transitions --noise-free --compact-ratio 0.5 \
    --store "sharded:$smoke/cells_ratio.kcs" > "$bn" 2>/dev/null
if ! cmp -s "$bj" "$bn"; then
    echo "verify: tables drifted with --compact-ratio 0.5"
    diff "$bj" "$bn" | head -20
    exit 1
fi
echo "tables byte-identical with sidecars loaded, deleted, and auto-compaction on"

echo "== kc_regime: sweep determinism across --jobs + golden regime map =="
./target/release/kc_regime sweep --spec scripts/regime_small.json \
    --store "sharded:$smoke/regime.kcs" --jobs 1 \
    --json "$smoke/regime_j1.json" > "$smoke/regime_j1.txt" 2>/dev/null
./target/release/kc_regime sweep --spec scripts/regime_small.json \
    --store "sharded:$smoke/regime.kcs" --jobs 8 \
    --json "$smoke/regime_j8.json" > "$smoke/regime_j8.txt" 2> "$smoke/regime_warm.log"
if ! cmp -s "$smoke/regime_j1.txt" "$smoke/regime_j8.txt"; then
    echo "verify: regime maps differ between --jobs 1 and --jobs 8"
    diff "$smoke/regime_j1.txt" "$smoke/regime_j8.txt" | head -20
    exit 1
fi
cmp -s "$smoke/regime_j1.json" "$smoke/regime_j8.json" || {
    echo "verify: regime map JSON differs between --jobs 1 and --jobs 8"; exit 1; }
# the second run reads the first run's cells from the sharded store
grep -q " 0 cells executed" "$smoke/regime_warm.log" || {
    echo "verify: warm regime sweep re-executed cells"
    cat "$smoke/regime_warm.log"; exit 1; }
if ! cmp -s "$smoke/regime_j8.json" artifacts/golden/regime_map.json; then
    echo "verify: regime map drifted from artifacts/golden/regime_map.json"
    echo "        (UPDATE_GOLDEN=1 cargo test --release --test regime_map if intentional)"
    diff "$smoke/regime_j8.json" artifacts/golden/regime_map.json | head -20
    exit 1
fi
jq -e '[.chains[] | select(.machine=="multicore-smp") | .boundaries | length] | max >= 2' \
    "$smoke/regime_j8.json" > /dev/null || {
    echo "verify: no multicore-smp chain detected >=2 regime boundaries"; exit 1; }
echo "regime maps byte-identical across --jobs, match golden, shared-LLC regimes detected"

echo "== deprecated --store-format alias still works and warns =="
alias_log=$(mktemp)
trap 'rm -f "$j1" "$j8" "$pc" "$bj" "$bs" "$alias_log"; rm -rf "$smoke"' EXIT
./target/release/paper_tables bt-s --noise-free \
    --store "$smoke/alias.json" --store-format json > /dev/null 2> "$alias_log"
grep -q "store-format is deprecated" "$alias_log" || {
    echo "verify: deprecated --store-format did not warn"; cat "$alias_log"; exit 1; }
[ -f "$smoke/alias.json" ] || { echo "verify: alias store not written"; exit 1; }
echo "--store-format alias accepted with a deprecation warning"

echo "== kc_store: json -> sharded -> json round-trips the golden store =="
./target/release/kc_store convert artifacts/golden/cells_extended.json \
    "sharded:$smoke/golden.kcs" > /dev/null
./target/release/kc_store convert "$smoke/golden.kcs" \
    "$smoke/golden_roundtrip.json" > /dev/null
if ! cmp -s artifacts/golden/cells_extended.json "$smoke/golden_roundtrip.json"; then
    echo "verify: kc_store convert round-trip is lossy"
    exit 1
fi
./target/release/kc_store stat "$smoke/golden.kcs" | grep -q "superseded ratio" || {
    echo "verify: kc_store stat did not report the superseded ratio"; exit 1; }
./target/release/kc_store compact "$smoke/golden.kcs" > /dev/null
./target/release/kc_store inspect "$smoke/golden.kcs" > /dev/null
echo "golden store round-trips losslessly through the sharded format"

echo "== kc-bench: store-read trajectory diffs cleanly against itself =="
KC_BENCH_TRAJECTORY="$smoke/traj" cargo bench -q -p kc-bench \
    --bench store_read > /dev/null 2>&1
[ -f "$smoke/traj/BENCH_store_read.json" ] || {
    echo "verify: store_read bench left no trajectory"; exit 1; }
./target/release/kc-bench diff "$smoke/traj" "$smoke/traj"
indexed=$(jq -r '.cells[] | select(.key=="miss|indexed|sweep") | .duration_secs' \
    "$smoke/traj/BENCH_store_read.json")
fullscan=$(jq -r '.cells[] | select(.key=="miss|fullscan|sweep") | .duration_secs' \
    "$smoke/traj/BENCH_store_read.json")
absent=$(jq -r '.cells[] | select(.key=="absent|indexed|sweep") | .duration_secs' \
    "$smoke/traj/BENCH_store_read.json")
[ -n "$indexed" ] && [ -n "$fullscan" ] && [ -n "$absent" ] || {
    echo "verify: store_read trajectory is missing a miss-path cell"; exit 1; }
awk -v i="$indexed" -v f="$fullscan" 'BEGIN { exit !(i > 0 && i < f) }' || {
    echo "verify: indexed miss (${indexed}s) not faster than full scan (${fullscan}s)"
    exit 1
}
echo "store-read trajectory recorded; indexed miss ${indexed}s < full scan ${fullscan}s"

echo "== kc-bench: cell_exec trajectory — pooled dispatch beats thread spawn =="
KC_BENCH_TRAJECTORY="$smoke/traj" cargo bench -q -p kc-bench \
    --bench cell_exec -- --test > /dev/null 2>&1
[ -f "$smoke/traj/BENCH_cell_exec.json" ] || {
    echo "verify: cell_exec bench left no trajectory"; exit 1; }
./target/release/kc-bench diff "$smoke/traj" "$smoke/traj" > /dev/null
cold=$(jq -r '.cells[] | select(.key=="dispatch|p8|cold") | .duration_secs' \
    "$smoke/traj/BENCH_cell_exec.json")
pooled=$(jq -r '.cells[] | select(.key=="dispatch|p8|pooled") | .duration_secs' \
    "$smoke/traj/BENCH_cell_exec.json")
awk -v c="$cold" -v p="$pooled" 'BEGIN { exit !(p > 0 && p < c) }' || {
    echo "verify: pooled dispatch (${pooled}s) not faster than cold spawn (${cold}s)"
    exit 1
}
echo "cell_exec trajectory recorded; pooled dispatch ${pooled}s < cold ${cold}s"

echo "== serve: scripted batch vs golden transcript (pipe mode) =="
./target/release/kc_served --noise-free --store "$smoke/cells.json" \
    --trace "$smoke/serve_trace.jsonl" \
    < scripts/serve_smoke_requests.jsonl \
    > "$smoke/responses.jsonl" 2> "$smoke/cold.log"
if ! cmp -s artifacts/golden/serve_smoke.jsonl "$smoke/responses.jsonl"; then
    echo "verify: serve responses drifted from the golden transcript"
    diff artifacts/golden/serve_smoke.jsonl "$smoke/responses.jsonl" | head -20
    exit 1
fi
grep -q "exiting 0" "$smoke/cold.log" || {
    echo "verify: serve did not report a graceful shutdown"; cat "$smoke/cold.log"; exit 1; }
echo "serve responses match the golden transcript; graceful EOF shutdown"

echo "== serve: warm store answers the same batch with zero executions =="
./target/release/kc_served --noise-free --store "$smoke/cells.json" \
    < scripts/serve_smoke_requests.jsonl \
    > "$smoke/warm.jsonl" 2> "$smoke/warm.log"
grep -q ", 0 executed" "$smoke/warm.log" || {
    echo "verify: warm serve run re-executed cells"; cat "$smoke/warm.log"; exit 1; }
cmp -s artifacts/golden/serve_smoke.jsonl "$smoke/warm.jsonl" || {
    echo "verify: warm serve responses differ from the cold run"; exit 1; }
echo "warm store: 0 executions, byte-identical responses"

echo "== kc_trace: serve-smoke trace renders to a self-contained SVG =="
./target/release/kc_trace render "$smoke/serve_trace.jsonl" \
    -o "$smoke/serve_trace.svg" 2> /dev/null
grep -q "<svg" "$smoke/serve_trace.svg" && grep -q "</svg>" "$smoke/serve_trace.svg" || {
    echo "verify: kc_trace did not produce an SVG"; exit 1; }
grep -q "<rect" "$smoke/serve_trace.svg" || {
    echo "verify: kc_trace SVG has no spans"; exit 1; }
grep -q ">serve<" "$smoke/serve_trace.svg" || {
    echo "verify: kc_trace SVG has no serve lane"; exit 1; }
echo "kc_trace rendered the serve trace as an SVG timeline"

echo "== loadgen: warm SLO gate, impossible-bound detection, load trajectory =="
# Deadline-free byte-identity is covered above: the jobs-1-vs-8 and
# golden-transcript gates push deadline-free streams through the
# deadline-aware scheduler and batcher and demand identical bytes.
KC_BENCH_TRAJECTORY="$smoke/loadtraj" ./target/release/kc-loadgen \
    --noise-free --store "$smoke/cells.json" --warm \
    --rps 400 --duration-ms 1500 --seed 7 --deadline-ms 5000 \
    --malformed-every 50 \
    --slo "p99_ms<=2000,overload_rate<=0.01,error_rate<=0.05,executions<=0,exactly_once_violations<=0" \
    --trajectory load_smoke > "$smoke/load_report.json" 2> "$smoke/load.log" || {
    echo "verify: loadgen SLO gate failed"; cat "$smoke/load.log"; exit 1; }
[ -f "$smoke/loadtraj/BENCH_load_smoke.json" ] || {
    echo "verify: loadgen left no trajectory entry"; exit 1; }
./target/release/kc-bench diff "$smoke/loadtraj" "$smoke/loadtraj" > /dev/null
if ./target/release/kc-loadgen --noise-free --store "$smoke/cells.json" --warm \
    --rps 200 --duration-ms 500 --seed 7 --slo "p99_ms<=0.00001" \
    > /dev/null 2> /dev/null; then
    echo "verify: an impossible SLO bound was not detected"; exit 1
fi
echo "loadgen: SLO pass on warm serving, impossible bound exits 1, trajectory diffable"

echo "== docs (no rustdoc warnings) =="
doc_log=$(cargo doc --no-deps --workspace 2>&1) || { echo "$doc_log"; exit 1; }
if echo "$doc_log" | grep -q "^warning"; then
    echo "$doc_log" | grep -A4 "^warning"
    echo "verify: rustdoc warnings"
    exit 1
fi

echo "== smoke: BT class-S table via the campaign engine =="
cargo run --release -p kc-experiments --bin paper_tables -- bt-s --noise-free --metrics

echo "verify: OK"
