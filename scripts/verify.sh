#!/usr/bin/env bash
# The repo's verification gate: tier-1 build + tests, then a smoke run
# of the paper-table campaign.  Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== format =="
cargo fmt --check

echo "== lints (clippy, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== smoke: BT class-S table via the campaign engine =="
cargo run --release -p kc-experiments --bin paper_tables -- bt-s --noise-free --metrics

echo "verify: OK"
