//! Incremental measurement planning.
//!
//! A full campaign at chain length `L` over an `N`-kernel loop costs
//! `N` isolated runs + `N` window runs + the overhead run + the
//! ground-truth run.  But the isolated, overhead and ground-truth
//! measurements do not depend on `L` — extending an existing campaign
//! to another chain length only needs the `N` new windows.  The
//! planner makes that arithmetic explicit so a tool (or a person with
//! limited machine-room hours, as in 2002) can see what a study will
//! cost before running it.

use crate::record::CampaignKey;
use crate::store::CampaignStore;
use kc_core::windows::cyclic_windows;
use kc_core::{CellContext, CellKind, CouplingError, KernelSet, MeasurementKey};
use serde::{Deserialize, Serialize};

/// What still has to be measured for a campaign.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementPlan {
    /// The campaign being planned.
    pub key: CampaignKey,
    /// Whether the `N` isolated kernel runs are needed (false when a
    /// same-configuration record already holds them).
    pub needs_isolated: bool,
    /// Whether the serial-overhead run is needed.
    pub needs_overhead: bool,
    /// Whether the ground-truth application run is needed.
    pub needs_actual: bool,
    /// Whether the `N` chain-window runs at this chain length are
    /// needed (false when this exact campaign is already stored).
    pub needs_windows: bool,
    /// Number of loop kernels.
    pub kernels: usize,
}

impl MeasurementPlan {
    /// Total cluster runs this plan requires.
    pub fn runs(&self) -> usize {
        let mut n = 0;
        if self.needs_isolated {
            n += self.kernels;
        }
        if self.needs_windows {
            n += self.kernels;
        }
        n += usize::from(self.needs_overhead) + usize::from(self.needs_actual);
        n
    }

    /// Whether nothing needs to run.
    pub fn is_complete(&self) -> bool {
        self.runs() == 0
    }

    /// The plan's outstanding runs as provider cells: the
    /// `MeasurementKey`s a `kc_core::MeasurementProvider` would have
    /// to measure (isolated kernels and windows at `reps` samples,
    /// overhead and ground truth at one run each, matching the
    /// accounting of [`MeasurementPlan::runs`]).
    ///
    /// `ctx` pins the machine fingerprint and execution protocol;
    /// `set` must be the loop's kernel set.
    pub fn cells(
        &self,
        ctx: &CellContext,
        set: &KernelSet,
        reps: u32,
    ) -> Result<Vec<MeasurementKey>, CouplingError> {
        let chain_len = self.key.chain_len;
        if chain_len < 1 || chain_len > set.len() {
            return Err(CouplingError::BadChainLength {
                requested: chain_len,
                kernels: set.len(),
            });
        }
        let mut out = Vec::new();
        if self.needs_isolated {
            for id in set.ids() {
                out.push(ctx.key(CellKind::Chain(vec![id]), reps));
            }
        }
        if self.needs_windows {
            for w in cyclic_windows(set, chain_len) {
                out.push(ctx.key(CellKind::Chain(w.kernels().to_vec()), reps));
            }
        }
        if self.needs_overhead {
            out.push(ctx.key(CellKind::SerialOverhead, 1));
        }
        if self.needs_actual {
            out.push(ctx.key(CellKind::Application, 1));
        }
        Ok(out)
    }
}

/// Cluster runs of a *fresh* campaign over `kernels` loop kernels at
/// `chain_lens.len()` chain lengths (the quantity the paper's §6 wants
/// reduced).
pub fn campaign_runs(kernels: usize, chain_lens: usize) -> usize {
    kernels            // isolated
        + kernels * chain_lens // windows per length
        + 2 // overhead + ground truth
}

/// Plan the measurements for `key` (with `kernels` loop kernels) given
/// what `store` already holds.
pub fn plan(store: &CampaignStore, key: &CampaignKey, kernels: usize) -> MeasurementPlan {
    let exact = store.get(key).is_some();
    let same_config = !store.configuration_records(key).is_empty();
    MeasurementPlan {
        key: key.clone(),
        needs_isolated: !same_config,
        needs_overhead: !same_config,
        needs_actual: !same_config,
        needs_windows: !exact,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CampaignRecord;
    use kc_core::{CouplingAnalysis, SyntheticExecutor};

    fn stored(chain_len: usize) -> CampaignRecord {
        let mut app = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 1.0)
            .loop_iterations(10)
            .build();
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 2).unwrap();
        CampaignRecord::from_analysis(
            CampaignKey::new("m", "synthetic", "S", 4, chain_len),
            &analysis,
        )
    }

    #[test]
    fn fresh_campaign_costs_everything() {
        let store = CampaignStore::new();
        let key = CampaignKey::new("m", "synthetic", "S", 4, 2);
        let p = plan(&store, &key, 3);
        assert!(p.needs_isolated && p.needs_windows && p.needs_overhead && p.needs_actual);
        assert_eq!(p.runs(), 3 + 3 + 2);
        assert_eq!(p.runs(), campaign_runs(3, 1));
    }

    #[test]
    fn extending_to_a_new_chain_length_costs_only_windows() {
        let mut store = CampaignStore::new();
        store.insert(stored(2));
        let key = CampaignKey::new("m", "synthetic", "S", 4, 3);
        let p = plan(&store, &key, 3);
        assert!(!p.needs_isolated && !p.needs_overhead && !p.needs_actual);
        assert!(p.needs_windows);
        assert_eq!(p.runs(), 3);
    }

    #[test]
    fn exact_record_needs_nothing() {
        let mut store = CampaignStore::new();
        store.insert(stored(2));
        let key = CampaignKey::new("m", "synthetic", "S", 4, 2);
        let p = plan(&store, &key, 3);
        assert!(p.is_complete());
    }

    #[test]
    fn different_configuration_is_a_fresh_campaign() {
        let mut store = CampaignStore::new();
        store.insert(stored(2));
        let key = CampaignKey::new("m", "synthetic", "S", 9, 2); // other procs
        let p = plan(&store, &key, 3);
        assert_eq!(p.runs(), 8);
    }

    #[test]
    fn plan_cells_match_the_run_accounting() {
        use kc_core::KernelSet;

        let set = KernelSet::new(vec!["a", "b", "c"]);
        let ctx = CellContext {
            benchmark: "synthetic".to_string(),
            class: "S".to_string(),
            procs: 4,
            exec_digest: "d".to_string(),
            machine_fingerprint: "fp".to_string(),
        };

        // fresh campaign: every cell of the analysis, dedup-ready
        let fresh = plan(
            &CampaignStore::new(),
            &CampaignKey::new("m", "synthetic", "S", 4, 2),
            3,
        );
        let cells = fresh.cells(&ctx, &set, 5).unwrap();
        assert_eq!(cells.len(), fresh.runs());
        assert_eq!(
            cells,
            kc_core::analysis_cells(&ctx, &set, 2, 5).unwrap(),
            "a fresh plan is exactly the full analysis cell set"
        );

        // extension: only the windows remain
        let mut store = CampaignStore::new();
        store.insert(stored(2));
        let ext = plan(&store, &CampaignKey::new("m", "synthetic", "S", 4, 3), 3);
        let cells = ext.cells(&ctx, &set, 5).unwrap();
        assert_eq!(cells.len(), 3);
        assert!(cells
            .iter()
            .all(|k| matches!(&k.cell, CellKind::Chain(c) if c.len() == 3)));

        // a chain length the loop cannot support is an error
        let bad = plan(
            &CampaignStore::new(),
            &CampaignKey::new("m", "synthetic", "S", 4, 9),
            3,
        );
        assert!(bad.cells(&ctx, &set, 5).is_err());
    }

    #[test]
    fn multi_length_study_cost_formula() {
        // a 5-kernel loop studied at 3 chain lengths: the naive cost
        // is 5 + 15 + 2 runs; incremental measurement after the first
        // length saves the shared runs for the other two
        assert_eq!(campaign_runs(5, 3), 22);
        let per_extra_length = 5;
        assert_eq!(campaign_runs(5, 1) + 2 * per_extra_length, 22);
    }
}
