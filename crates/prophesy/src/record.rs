//! Serializable campaign records.

use kc_core::{CouplingAnalysis, CouplingError, KernelSet, Measurement};
use serde::{Deserialize, Serialize};

/// Identifies one campaign: where it ran and at what chain length.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CampaignKey {
    /// Machine name (e.g. `ibm-sp-p2sc`).
    pub machine: String,
    /// Benchmark / application name.
    pub benchmark: String,
    /// Problem-class label.
    pub class: String,
    /// Processor count.
    pub procs: usize,
    /// Chain (window) length of the coupling measurements.
    pub chain_len: usize,
}

impl CampaignKey {
    /// Convenience constructor.
    pub fn new(
        machine: &str,
        benchmark: &str,
        class: &str,
        procs: usize,
        chain_len: usize,
    ) -> Self {
        Self {
            machine: machine.to_string(),
            benchmark: benchmark.to_string(),
            class: class.to_string(),
            procs,
            chain_len,
        }
    }

    /// The same configuration at a different chain length (shares the
    /// isolated/overhead/actual measurements).
    pub fn with_chain_len(&self, chain_len: usize) -> Self {
        Self {
            chain_len,
            ..self.clone()
        }
    }

    /// Whether two keys describe the same configuration apart from the
    /// chain length.
    pub fn same_configuration(&self, other: &CampaignKey) -> bool {
        self.machine == other.machine
            && self.benchmark == other.benchmark
            && self.class == other.class
            && self.procs == other.procs
    }
}

impl std::fmt::Display for CampaignKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} class {} p{} L{}",
            self.machine, self.benchmark, self.class, self.procs, self.chain_len
        )
    }
}

/// A full campaign: every measurement of a `CouplingAnalysis`, with
/// all timing samples preserved.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecord {
    /// The campaign identity.
    pub key: CampaignKey,
    /// Loop kernel names in control-flow order.
    pub kernels: Vec<String>,
    /// The application's loop iteration count.
    pub loop_iterations: u32,
    /// Per-kernel isolated samples (seconds per iteration).
    pub isolated: Vec<Vec<f64>>,
    /// Per-window samples, cyclic window order (seconds per iteration).
    pub windows: Vec<Vec<f64>>,
    /// Serial overhead samples (total seconds).
    pub overhead: Vec<f64>,
    /// Ground-truth application samples (total seconds).
    pub actual: Vec<f64>,
}

impl CampaignRecord {
    /// Capture an analysis into a record.
    pub fn from_analysis(key: CampaignKey, analysis: &CouplingAnalysis) -> Self {
        assert_eq!(
            key.chain_len,
            analysis.chain_len(),
            "key chain length must match the analysis"
        );
        Self {
            key,
            kernels: analysis.kernel_set().names().to_vec(),
            loop_iterations: analysis.loop_iterations(),
            isolated: analysis
                .kernel_set()
                .ids()
                .map(|k| analysis.isolated(k).samples().to_vec())
                .collect(),
            windows: (0..analysis.windows().len())
                .map(|w| analysis.window_perf(w).samples().to_vec())
                .collect(),
            overhead: analysis.overhead().samples().to_vec(),
            actual: analysis.actual().samples().to_vec(),
        }
    }

    /// Rebuild the analysis (exactly, including samples).
    pub fn to_analysis(&self) -> Result<CouplingAnalysis, CouplingError> {
        let set = KernelSet::new(self.kernels.clone());
        CouplingAnalysis::from_measurements(
            set,
            self.key.chain_len,
            self.loop_iterations,
            self.isolated
                .iter()
                .map(|s| Measurement::from_samples(s.clone()))
                .collect(),
            self.windows
                .iter()
                .map(|s| Measurement::from_samples(s.clone()))
                .collect(),
            Measurement::from_samples(self.overhead.clone()),
            Measurement::from_samples(self.actual.clone()),
        )
    }

    /// Mean isolated time per kernel (the cheap measurements a reuse
    /// target needs).
    pub fn isolated_means(&self) -> Vec<f64> {
        self.isolated
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::{Predictor, SyntheticExecutor};

    fn sample_analysis(chain_len: usize) -> CouplingAnalysis {
        let mut app = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 0.5)
            .interaction("a", "b", -0.2)
            .interaction("c", "a", 0.1)
            .overheads(1.0, 0.5)
            .loop_iterations(50)
            .noise(0.001, 0.01, 3)
            .build();
        CouplingAnalysis::collect(&mut app, chain_len, 4).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let analysis = sample_analysis(2);
        let key = CampaignKey::new("m", "b", "S", 4, 2);
        let rec = CampaignRecord::from_analysis(key, &analysis);
        let back = rec.to_analysis().unwrap();
        assert_eq!(back.couplings().unwrap(), analysis.couplings().unwrap());
        assert_eq!(
            back.predict(Predictor::coupling(2)).unwrap(),
            analysis.predict(Predictor::coupling(2)).unwrap()
        );
        assert_eq!(back.actual().samples(), analysis.actual().samples());
    }

    #[test]
    fn json_roundtrip() {
        let analysis = sample_analysis(3);
        let rec = CampaignRecord::from_analysis(CampaignKey::new("m", "b", "W", 9, 3), &analysis);
        let json = serde_json::to_string(&rec).unwrap();
        let back: CampaignRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn key_helpers() {
        let k = CampaignKey::new("m", "bt", "W", 9, 3);
        let k5 = k.with_chain_len(5);
        assert!(k.same_configuration(&k5));
        assert_ne!(k, k5);
        assert!(k.to_string().contains("p9"));
        let other = CampaignKey::new("m", "bt", "A", 9, 3);
        assert!(!k.same_configuration(&other));
    }

    #[test]
    #[should_panic]
    fn mismatched_chain_len_panics() {
        let analysis = sample_analysis(2);
        CampaignRecord::from_analysis(CampaignKey::new("m", "b", "S", 4, 3), &analysis);
    }

    #[test]
    fn isolated_means_match_measurements() {
        let analysis = sample_analysis(2);
        let rec = CampaignRecord::from_analysis(CampaignKey::new("m", "b", "S", 4, 2), &analysis);
        let means = rec.isolated_means();
        for (k, m) in analysis.kernel_set().ids().zip(&means) {
            assert!((analysis.isolated(k).mean() - m).abs() < 1e-15);
        }
    }
}
