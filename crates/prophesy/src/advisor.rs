//! The reuse advisor: can a stored campaign predict a new
//! configuration, or is fresh measurement warranted?
//!
//! The decision rule comes straight from the reproduction's reuse
//! study (and the paper's regime observation): coefficients transfer
//! while the target sits in the *same performance regime* as the
//! source — operationally, the same cache level holds the
//! per-processor working set.  Regime identification is supplied by
//! the caller as a closure (`kc-experiments` derives it from the
//! benchmark working sets and the machine's cache capacities), keeping
//! this crate application-agnostic.

use crate::planner::{plan, MeasurementPlan};
use crate::record::CampaignKey;
use crate::store::CampaignStore;
use kc_core::{predict_with_reused_coefficients, CouplingError};

/// The advisor's verdict for a target configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum Advice {
    /// An exact campaign exists; use its native prediction.
    Native {
        /// The stored campaign to use.
        key: CampaignKey,
    },
    /// No exact campaign, but a same-regime campaign's coefficients
    /// can be transferred; only the target's isolated kernel times are
    /// needed.
    Transfer {
        /// The stored campaign to take coefficients from.
        source: CampaignKey,
        /// The shared regime identifier.
        regime: usize,
    },
    /// Nothing reusable: run the measurements in the plan.
    MeasureFresh {
        /// What a fresh campaign at the target costs.
        plan: MeasurementPlan,
    },
}

/// Decide how to predict `target`.
///
/// `regime_of` maps a configuration to its performance-regime id
/// (e.g. the cache level holding the working set); `kernels` is the
/// loop-kernel count used for plan costing.  Transfer sources must
/// share machine, benchmark and chain length, and sit in the same
/// regime.
pub fn advise(
    store: &CampaignStore,
    target: &CampaignKey,
    kernels: usize,
    regime_of: impl Fn(&CampaignKey) -> usize,
) -> Advice {
    if store.get(target).is_some() {
        return Advice::Native {
            key: target.clone(),
        };
    }
    let target_regime = regime_of(target);
    let candidate = store
        .query(|k| {
            k.machine == target.machine
                && k.benchmark == target.benchmark
                && k.chain_len == target.chain_len
        })
        .into_iter()
        .filter(|r| regime_of(&r.key) == target_regime)
        // prefer the closest processor count (most similar pipeline
        // structure)
        .min_by_key(|r| r.key.procs.abs_diff(target.procs));
    match candidate {
        Some(r) => Advice::Transfer {
            source: r.key.clone(),
            regime: target_regime,
        },
        None => Advice::MeasureFresh {
            plan: plan(store, target, kernels),
        },
    }
}

/// Execute a [`Advice::Transfer`]: predict the target's total time
/// from the source's coefficients and the target's isolated kernel
/// means (per iteration), loop count and serial overhead.
pub fn transfer_predict(
    store: &CampaignStore,
    source: &CampaignKey,
    target_isolated: &[f64],
    target_iterations: u32,
    target_overhead: f64,
) -> Result<f64, CouplingError> {
    let record = store.get(source).expect("transfer source must be stored");
    let analysis = record.to_analysis()?;
    predict_with_reused_coefficients(
        &analysis,
        target_isolated,
        target_iterations,
        target_overhead,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CampaignRecord;
    use kc_core::{ChainExecutor, CouplingAnalysis, SyntheticExecutor};

    /// Synthetic "configurations": regime = procs bucket (<=8 vs >8).
    fn regime(k: &CampaignKey) -> usize {
        usize::from(k.procs > 8)
    }

    /// A synthetic configuration whose times scale with 1/procs and
    /// whose interactions scale proportionally (in-regime transfers
    /// are then lossless).
    fn build(procs: usize) -> SyntheticExecutor {
        let s = 4.0 / procs as f64;
        SyntheticExecutor::builder()
            .kernel("a", 1.0 * s)
            .kernel("b", 2.0 * s)
            .kernel("c", 1.5 * s)
            .interaction("a", "b", -0.2 * s)
            .interaction("b", "c", -0.1 * s)
            .overheads(1.0, 0.5)
            .loop_iterations(100)
            .build()
    }

    fn key(procs: usize) -> CampaignKey {
        CampaignKey::new("m", "synthetic", "S", procs, 2)
    }

    fn record(procs: usize) -> CampaignRecord {
        let mut a = build(procs);
        let analysis = CouplingAnalysis::collect(&mut a, 2, 2).unwrap();
        CampaignRecord::from_analysis(key(procs), &analysis)
    }

    #[test]
    fn native_when_exact_record_exists() {
        let mut store = CampaignStore::new();
        store.insert(record(4));
        let advice = advise(&store, &key(4), 3, regime);
        assert_eq!(advice, Advice::Native { key: key(4) });
    }

    #[test]
    fn transfer_within_regime_prefers_nearest_procs() {
        let mut store = CampaignStore::new();
        store.insert(record(2));
        store.insert(record(8));
        store.insert(record(16)); // other regime
        let advice = advise(&store, &key(6), 3, regime);
        assert_eq!(
            advice,
            Advice::Transfer {
                source: key(8),
                regime: 0
            }
        );
    }

    #[test]
    fn fresh_when_only_other_regimes_exist() {
        let mut store = CampaignStore::new();
        store.insert(record(16)); // regime 1
        let advice = advise(&store, &key(4), 3, regime); // regime 0
        match advice {
            Advice::MeasureFresh { plan } => assert_eq!(plan.runs(), 8),
            other => panic!("expected MeasureFresh, got {other:?}"),
        }
    }

    #[test]
    fn transfer_prediction_lands_near_truth() {
        let mut store = CampaignStore::new();
        store.insert(record(4));
        // target at p=8: proportional scaling -> transfer is as good
        // as native
        let mut target_app = build(8);
        let target = CouplingAnalysis::collect(&mut target_app, 2, 2).unwrap();
        let isolated: Vec<f64> = target
            .kernel_set()
            .ids()
            .map(|k| target.isolated(k).mean())
            .collect();
        let pred = transfer_predict(
            &store,
            &key(4),
            &isolated,
            target.loop_iterations(),
            target.overhead().mean(),
        )
        .unwrap();
        let actual = target_app.measure_application().mean();
        let err = (pred - actual).abs() / actual;
        assert!(err < 0.05, "transfer error {err:.4}");
    }
}
