//! The cell store: persistent raw-measurement storage at *cell*
//! granularity, pluggable under `kc_core::CachedProvider`.
//!
//! [`crate::store::CampaignStore`] persists whole campaign records —
//! one analysis per (machine, benchmark, class, procs, chain length).
//! The cell store sits a level below: it keeps the raw samples of
//! individual measurement cells, keyed by the canonical text of
//! `kc_core::MeasurementKey`.  Because cell keys carry no chain
//! length, one saved cell serves every campaign that needs it — the
//! planner's sharing argument (isolated kernels, overhead and ground
//! truth are chain-length-independent) falls out of key equality
//! instead of bespoke bookkeeping.
//!
//! Persistence is a single JSON object mapping canonical keys to
//! sample arrays.  The workspace's JSON writer prints floats in
//! shortest-roundtrip form, so samples survive a save/load cycle
//! bit-exactly and a store-backed campaign reproduces an in-memory
//! one to the last bit.

use crate::backend::{CellBackend, StoreFormat};
use kc_core::{Measurement, MeasurementBackend, MeasurementKey};
use parking_lot::Mutex;
use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Traffic counters of one [`CellStore`]'s backend interface: how
/// often the campaign consulted it and how often it answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// `load` calls (cache misses that consulted the store).
    pub loads: u64,
    /// `load` calls answered from stored samples.
    pub load_hits: u64,
    /// `store` calls (fresh executions written back).
    pub stores: u64,
    /// `load` calls that failed with an I/O error and were answered
    /// as misses (always 0 for the in-memory JSON store).
    pub read_errors: u64,
}

impl From<BackendStats> for kc_core::BackendCounters {
    fn from(s: BackendStats) -> Self {
        Self {
            loads: s.loads,
            load_hits: s.load_hits,
            stores: s.stores,
            read_errors: s.read_errors,
        }
    }
}

/// The run-history sidecar path of a cell-store file: the store path
/// with `.history.jsonl` appended (`cells.json` →
/// `cells.json.history.jsonl`), so the history always travels next to
/// the cells it describes.
pub fn history_sidecar(store_path: &Path) -> std::path::PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".history.jsonl");
    std::path::PathBuf::from(os)
}

/// A thread-safe map from canonical cell keys to raw samples, with
/// JSON-file persistence.
#[derive(Debug, Default)]
pub struct CellStore {
    cells: Mutex<BTreeMap<String, Vec<f64>>>,
    stats: Mutex<BackendStats>,
    /// Where `CellBackend::flush` persists to, when the store was
    /// opened against a path.
    path: Mutex<Option<PathBuf>>,
}

impl CellStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store bound to `path`: loaded from it if the file exists,
    /// empty otherwise.  `CellBackend::flush` saves back to the same
    /// path.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let store = if path.exists() {
            Self::load(path)?
        } else {
            Self::new()
        };
        *store.path.lock() = Some(path.to_path_buf());
        Ok(store)
    }

    /// The path `CellBackend::flush` saves to, if one is bound.
    pub fn bound_path(&self) -> Option<PathBuf> {
        self.path.lock().clone()
    }

    /// Backend traffic counters since construction (or load).
    pub fn stats(&self) -> BackendStats {
        *self.stats.lock()
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.lock().is_empty()
    }

    /// Insert (or replace) one cell's samples.
    pub fn insert(&self, key: &MeasurementKey, samples: Vec<f64>) {
        self.cells.lock().insert(key.to_string(), samples);
    }

    /// The stored samples for a cell, if any.
    pub fn get(&self, key: &MeasurementKey) -> Option<Vec<f64>> {
        self.cells.lock().get(&key.to_string()).cloned()
    }

    /// All stored canonical keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.cells.lock().keys().cloned().collect()
    }

    /// Save as a single JSON object `{canonical key: [samples...]}`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let fields: Vec<(String, Value)> = self
            .cells
            .lock()
            .iter()
            .map(|(k, samples)| {
                let arr = samples.iter().copied().map(Value::Float).collect();
                (k.clone(), Value::Array(arr))
            })
            .collect();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json =
            serde_json::to_string_pretty(&Value::Object(fields)).expect("cell store serializes");
        std::fs::write(path, json)
    }

    /// Load a store written by [`CellStore::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let data = std::fs::read_to_string(path)?;
        let value: Value = serde_json::from_str(&data).map_err(|e| bad(e.to_string()))?;
        let Value::Object(fields) = value else {
            return Err(bad("cell store file must be a JSON object".into()));
        };
        let mut cells = BTreeMap::new();
        for (key, v) in fields {
            let Value::Array(items) = v else {
                return Err(bad(format!("cell '{key}' must hold a sample array")));
            };
            let mut samples = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::Float(f) => samples.push(f),
                    Value::Int(i) => samples.push(i as f64),
                    Value::UInt(u) => samples.push(u as f64),
                    _ => return Err(bad(format!("cell '{key}' has a non-numeric sample"))),
                }
            }
            cells.insert(key, samples);
        }
        Ok(Self {
            cells: Mutex::new(cells),
            stats: Mutex::new(BackendStats::default()),
            path: Mutex::new(None),
        })
    }
}

/// The trait view of the JSON store.  Counters live here (and in the
/// direct [`MeasurementBackend`] impl below) such that each route
/// into the store counts its traffic exactly once: the `dyn
/// CellBackend` adapter calls `get_raw`/`append_raw`, never the
/// concrete impl.
impl CellBackend for CellStore {
    fn get_raw(&self, key: &str) -> Option<Vec<f64>> {
        let found = self.cells.lock().get(key).cloned();
        let mut stats = self.stats.lock();
        stats.loads += 1;
        if found.is_some() {
            // any stored cell is a hit — including a legal empty
            // sample set; "empty means measured nothing" is the
            // measurement layer's call, not the store's
            stats.load_hits += 1;
        }
        drop(stats);
        found
    }

    fn append_raw(&self, key: &str, samples: &[f64]) -> std::io::Result<()> {
        self.cells.lock().insert(key.to_string(), samples.to_vec());
        self.stats.lock().stores += 1;
        Ok(())
    }

    fn entries(&self) -> Vec<(String, Vec<f64>)> {
        self.cells
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        CellStore::len(self)
    }

    fn stats(&self) -> BackendStats {
        CellStore::stats(self)
    }

    fn flush(&self) -> std::io::Result<()> {
        match self.bound_path() {
            Some(path) => self.save(&path),
            None => Ok(()),
        }
    }

    fn format(&self) -> StoreFormat {
        StoreFormat::Json
    }
}

impl MeasurementBackend for CellStore {
    fn load(&self, key: &MeasurementKey) -> Option<Measurement> {
        let found = self.get(key);
        let mut stats = self.stats.lock();
        stats.loads += 1;
        if found.is_some() {
            // hit accounting matches get_raw: a stored empty sample
            // set is a hit even though it loads as None below
            stats.load_hits += 1;
        }
        drop(stats);
        found
            .filter(|s| !s.is_empty())
            .map(Measurement::from_samples)
    }

    fn store(&self, key: &MeasurementKey, m: &Measurement) {
        self.insert(key, m.samples().to_vec());
        self.stats.lock().stores += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::CellKind;

    #[test]
    fn history_sidecar_travels_next_to_the_store() {
        assert_eq!(
            history_sidecar(Path::new("/tmp/cells.json")),
            Path::new("/tmp/cells.json.history.jsonl")
        );
        assert_eq!(
            history_sidecar(Path::new("s.json")),
            Path::new("s.json.history.jsonl")
        );
    }

    #[test]
    fn backend_stats_convert_to_history_counters() {
        let counters: kc_core::BackendCounters = BackendStats {
            loads: 5,
            load_hits: 3,
            stores: 2,
            read_errors: 1,
        }
        .into();
        assert_eq!(counters.loads, 5);
        assert_eq!(counters.load_hits, 3);
        assert_eq!(counters.stores, 2);
        assert_eq!(counters.read_errors, 1);
    }

    fn key(cell: CellKind, reps: u32) -> MeasurementKey {
        MeasurementKey {
            benchmark: "BT".to_string(),
            class: "S".to_string(),
            procs: 4,
            cell,
            reps,
            exec_digest: "w1t2mpb1ci".to_string(),
            machine_fingerprint: "00ff00ff00ff00ff".to_string(),
        }
    }

    #[test]
    fn backend_roundtrips_measurements() {
        let store = CellStore::new();
        let k = key(CellKind::SerialOverhead, 1);
        assert!(MeasurementBackend::load(&store, &k).is_none());
        let m = Measurement::from_samples(vec![0.25, 0.3, 0.28]);
        store.store(&k, &m);
        assert_eq!(MeasurementBackend::load(&store, &k), Some(m));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn save_load_is_bit_exact() {
        let store = CellStore::new();
        // awkward floats: shortest-roundtrip printing must preserve them
        store.insert(
            &key(CellKind::Chain(vec![kc_core::KernelId(0)]), 5),
            vec![0.1, 1.0 / 3.0, 6.02e-23],
        );
        store.insert(&key(CellKind::Application, 1), vec![42.0]);
        let path = std::env::temp_dir().join("kc_prophesy_cells/cells.json");
        let _ = std::fs::remove_file(&path);
        store.save(&path).unwrap();
        let loaded = CellStore::load(&path).unwrap();
        assert_eq!(loaded.keys(), store.keys());
        for k in store.keys() {
            let a = store.cells.lock().get(&k).cloned().unwrap();
            let b = loaded.cells.lock().get(&k).cloned().unwrap();
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "samples of {k} drifted");
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn backend_stats_count_loads_hits_and_stores() {
        let store = CellStore::new();
        let k = key(CellKind::SerialOverhead, 1);
        assert_eq!(store.stats(), BackendStats::default());
        assert!(MeasurementBackend::load(&store, &k).is_none());
        store.store(&k, &Measurement::from_samples(vec![0.5]));
        assert!(MeasurementBackend::load(&store, &k).is_some());
        let s = store.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_hits, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn load_rejects_malformed_files() {
        let dir = std::env::temp_dir().join("kc_prophesy_cells_bad");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in [
            ("notjson.json", "not json"),
            ("notobject.json", "[1,2]"),
            ("notarray.json", "{\"k\": 3}"),
            ("notnumeric.json", "{\"k\": [\"x\"]}"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            assert!(CellStore::load(&path).is_err(), "{name} should be rejected");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
