//! The campaign store: an in-memory collection of records with
//! JSON-file persistence.

use crate::record::{CampaignKey, CampaignRecord};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A collection of campaign records, keyed by [`CampaignKey`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignStore {
    records: Vec<CampaignRecord>,
}

impl CampaignStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored campaigns.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert a record, replacing any existing record with the same
    /// key; returns `true` if a record was replaced.
    pub fn insert(&mut self, record: CampaignRecord) -> bool {
        if let Some(pos) = self.records.iter().position(|r| r.key == record.key) {
            self.records[pos] = record;
            true
        } else {
            self.records.push(record);
            false
        }
    }

    /// Look up a record by exact key.
    pub fn get(&self, key: &CampaignKey) -> Option<&CampaignRecord> {
        self.records.iter().find(|r| &r.key == key)
    }

    /// Remove a record by key; returns it if present.
    pub fn remove(&mut self, key: &CampaignKey) -> Option<CampaignRecord> {
        let pos = self.records.iter().position(|r| &r.key == key)?;
        Some(self.records.remove(pos))
    }

    /// All records matching a predicate.
    pub fn query(&self, pred: impl Fn(&CampaignKey) -> bool) -> Vec<&CampaignRecord> {
        self.records.iter().filter(|r| pred(&r.key)).collect()
    }

    /// All records of the same configuration (any chain length).
    pub fn configuration_records(&self, key: &CampaignKey) -> Vec<&CampaignRecord> {
        self.query(|k| k.same_configuration(key))
    }

    /// All stored keys.
    pub fn keys(&self) -> impl Iterator<Item = &CampaignKey> {
        self.records.iter().map(|r| &r.key)
    }

    /// Save as pretty JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from a JSON file written by [`CampaignStore::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::{CouplingAnalysis, SyntheticExecutor};

    fn record(machine: &str, procs: usize, chain_len: usize) -> CampaignRecord {
        let mut app = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .interaction("a", "b", -0.1)
            .loop_iterations(10)
            .build();
        let analysis = CouplingAnalysis::collect(&mut app, chain_len, 2).unwrap();
        CampaignRecord::from_analysis(
            CampaignKey::new(machine, "synthetic", "S", procs, chain_len),
            &analysis,
        )
    }

    #[test]
    fn insert_get_replace_remove() {
        let mut store = CampaignStore::new();
        let r = record("m1", 4, 2);
        let key = r.key.clone();
        assert!(!store.insert(r.clone()));
        assert_eq!(store.len(), 1);
        assert!(store.get(&key).is_some());
        // replacing the same key keeps the store size
        assert!(store.insert(r));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&key).is_some());
        assert!(store.is_empty());
        assert!(store.remove(&key).is_none());
    }

    #[test]
    fn queries_filter_by_key_fields() {
        let mut store = CampaignStore::new();
        store.insert(record("m1", 4, 2));
        store.insert(record("m1", 9, 2));
        store.insert(record("m2", 4, 2));
        assert_eq!(store.query(|k| k.machine == "m1").len(), 2);
        assert_eq!(store.query(|k| k.procs == 4).len(), 2);
        let probe = CampaignKey::new("m1", "synthetic", "S", 4, 1);
        assert_eq!(store.configuration_records(&probe).len(), 1);
        assert_eq!(store.keys().count(), 3);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = CampaignStore::new();
        store.insert(record("m1", 4, 2));
        store.insert(record("m1", 4, 1));
        let path = std::env::temp_dir().join("kc_prophesy_test/store.json");
        let _ = std::fs::remove_file(&path);
        store.save(&path).unwrap();
        let loaded = CampaignStore::load(&path).unwrap();
        assert_eq!(loaded, store);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("kc_prophesy_garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(CampaignStore::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
