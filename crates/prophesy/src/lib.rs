//! # kc-prophesy
//!
//! A Prophesy-style measurement database for coupling campaigns.
//!
//! The kernel-coupling paper grew out of the authors' **Prophesy**
//! project ("Prophesy: Automating the Modeling Process", cited as
//! \[TG01\]): an infrastructure that records performance measurements in
//! a database and builds models from them automatically (reference \[TG01\]).  This crate
//! is that layer for the coupling methodology:
//!
//! * [`record`] — serializable campaign records round-tripping to and
//!   from `kc_core::CouplingAnalysis` with full sample fidelity;
//! * [`store`] — a JSON-file-backed store with key/filter queries;
//! * [`cells`] — raw per-cell sample storage implementing
//!   `kc_core::MeasurementBackend`, so a `CachedProvider` can persist
//!   individual measurements across processes and campaigns;
//! * [`backend`] — the [`CellBackend`] trait over cell stores, plus
//!   format auto-detection ([`open_store`]) so binaries accept either
//!   on-disk representation;
//! * [`sharded`] — the binary [`ShardedStore`]: digest-sharded
//!   append-only segments with checksummed frames and torn-tail
//!   recovery, fronted by the lossy [`hot`] cache;
//! * [`planner`] — incremental measurement planning: given what the
//!   store already holds, which cluster runs does a new campaign
//!   actually need?  (Isolated kernel times, the serial overhead and
//!   the ground truth are shared across chain lengths, so extending a
//!   campaign to a new chain length costs only `N` window runs.)
//! * [`advisor`] — operationalizes the paper's §6 future work: given a
//!   target configuration, decide whether a stored campaign's
//!   coefficients can be *reused* (same regime) or fresh measurements
//!   are warranted, and produce the transferred prediction.
//!
//! ```
//! use kc_core::{ChainExecutor, CouplingAnalysis, SyntheticExecutor};
//! use kc_prophesy::{CampaignKey, CampaignRecord, CampaignStore};
//!
//! let mut app = SyntheticExecutor::builder()
//!     .kernel("a", 1.0)
//!     .kernel("b", 2.0)
//!     .interaction("a", "b", -0.2)
//!     .loop_iterations(100)
//!     .build();
//! let analysis = CouplingAnalysis::collect(&mut app, 2, 3).unwrap();
//!
//! let key = CampaignKey::new("test-machine", "synthetic", "S", 1, 2);
//! let mut store = CampaignStore::new();
//! store.insert(CampaignRecord::from_analysis(key.clone(), &analysis));
//!
//! // later (or in another process): rebuild the analysis and predict
//! let restored = store.get(&key).unwrap().to_analysis().unwrap();
//! assert_eq!(restored.couplings().unwrap(), analysis.couplings().unwrap());
//! ```

pub mod advisor;
pub mod backend;
pub mod cells;
pub mod hot;
pub mod planner;
pub mod record;
pub mod sharded;
pub mod store;

pub use advisor::{advise, transfer_predict, Advice};
pub use backend::{
    detect_format, open_store, open_store_with, CellBackend, StoreFormat, StoreOptions, StoreSpec,
};
pub use cells::{history_sidecar, BackendStats, CellStore};
pub use hot::{HotTier, HotTierStats};
pub use planner::{campaign_runs, MeasurementPlan};
pub use record::{CampaignKey, CampaignRecord};
pub use sharded::{
    fnv1a_digest, CompactionReport, ReadPathStats, SegmentStat, ShardOpenOptions, ShardedStore,
    SidecarState,
};
pub use store::CampaignStore;
