//! The storage abstraction over cell backends: one trait, two
//! on-disk formats.
//!
//! [`CellBackend`] is the seam between campaigns and persistence.  A
//! backend maps *canonical key text* (`kc_core::MeasurementKey`'s
//! `Display` form) to raw sample vectors; everything above it — the
//! `CachedProvider`, campaigns, the serve loop — speaks
//! `MeasurementBackend`, which this module implements once for `dyn
//! CellBackend` so any backend slots into the existing machinery
//! unchanged.
//!
//! Two implementations ship:
//!
//! * [`crate::CellStore`] — the original single-file pretty-JSON
//!   store.  Human-readable, diffs well, loads everything up front.
//! * [`crate::ShardedStore`] — a directory of compact binary
//!   segments sharded by key digest, fronted by a lossy hot cache.
//!   Append-only writes, torn-tail-tolerant loads, cheap enough to
//!   share between concurrent `kc_served` instances.
//!
//! [`open_store`] is the one entry point binaries use: it
//! auto-detects which format lives at a path (file ⇒ JSON, directory
//! with a manifest ⇒ sharded) and creates missing stores in the
//! requested format.  The formats hold bit-identical samples — JSON
//! through shortest-roundtrip float printing, binary through raw
//! `f64` bits — which is what keeps the golden tables byte-identical
//! whichever backend produced them.

use crate::cells::BackendStats;
use crate::sharded::{ShardOpenOptions, ShardedStore};
use crate::CellStore;
use kc_core::{Measurement, MeasurementBackend, MeasurementKey, TelemetrySink};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// The on-disk representation of a cell store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFormat {
    /// One pretty-printed JSON object file.
    Json,
    /// A directory of binary segment files sharded by key digest.
    Sharded,
}

impl StoreFormat {
    /// The CLI spelling of this format.
    pub fn as_str(self) -> &'static str {
        match self {
            StoreFormat::Json => "json",
            StoreFormat::Sharded => "sharded",
        }
    }
}

impl std::fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for StoreFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(StoreFormat::Json),
            "sharded" => Ok(StoreFormat::Sharded),
            other => Err(format!(
                "unknown store format '{other}' (expected 'json' or 'sharded')"
            )),
        }
    }
}

/// Persistent cell storage, keyed by canonical key text.
///
/// The raw-string methods are the primitive interface — conversion
/// tools iterate stores without ever parsing key text back into a
/// `MeasurementKey`.  The keyed wrappers are what measurement-path
/// callers use.  Implementations count their own traffic
/// ([`CellBackend::stats`]) inside `get_raw`/`append_raw`, so every
/// route into the backend lands in exactly one counter.
pub trait CellBackend: Send + Sync {
    /// The stored samples under this canonical key text, if any.
    fn get_raw(&self, key: &str) -> Option<Vec<f64>>;

    /// Store (or replace) the samples under this canonical key text.
    fn append_raw(&self, key: &str, samples: &[f64]) -> io::Result<()>;

    /// The stored samples for a cell, if any.
    fn get(&self, key: &MeasurementKey) -> Option<Vec<f64>> {
        self.get_raw(&key.to_string())
    }

    /// Store (or replace) one cell's samples.
    fn append(&self, key: &MeasurementKey, samples: &[f64]) -> io::Result<()> {
        self.append_raw(&key.to_string(), samples)
    }

    /// Every stored `(canonical key, samples)` pair, sorted by key.
    /// Replaced entries appear once, with their latest samples.
    fn entries(&self) -> Vec<(String, Vec<f64>)>;

    /// Number of distinct stored cells.
    fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the store holds no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Backend traffic counters since open.
    fn stats(&self) -> BackendStats;

    /// Persist any buffered state and surface deferred write errors.
    fn flush(&self) -> io::Result<()>;

    /// Which on-disk format this backend is.
    fn format(&self) -> StoreFormat;

    /// Route the backend's own diagnostics (e.g. read errors answered
    /// as misses) into a telemetry sink instead of stderr.  Backends
    /// with nothing to report ignore the sink.
    fn attach_sink(&self, sink: Arc<dyn TelemetrySink>) {
        let _ = sink;
    }
}

/// Every cell backend is a measurement backend: load filters out
/// empty sample sets (an empty cell is "measured nothing", not a
/// measurement), store appends.  Append errors are reported to stderr
/// and re-surfaced by the backend's next [`CellBackend::flush`], so a
/// campaign cannot silently finish over a store that lost writes.
impl MeasurementBackend for dyn CellBackend {
    fn load(&self, key: &MeasurementKey) -> Option<Measurement> {
        self.get(key)
            .filter(|s| !s.is_empty())
            .map(Measurement::from_samples)
    }

    fn store(&self, key: &MeasurementKey, m: &Measurement) {
        if let Err(e) = self.append(key, m.samples()) {
            eprintln!("[store] append of cell '{key}' failed: {e}");
        }
    }
}

/// A parsed `--store` argument: where the cell store lives, plus an
/// optional forced format.
///
/// The one store spec every binary shares.  Spelling:
///
/// * `PATH` — auto-detect the format on disk (a fresh store is
///   created as JSON, the pre-sharding default);
/// * `sharded:PATH` — force the sharded binary format;
/// * `json:PATH` — force the single-file JSON format.
///
/// The old two-flag spelling (`--store PATH --store-format FMT`) is
/// a deprecated alias: binaries fold the flag in through
/// [`StoreSpec::with_legacy_format`] and warn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreSpec {
    /// Store location.
    pub path: std::path::PathBuf,
    /// Forced format; `None` auto-detects (see [`open_store`]).
    pub format: Option<StoreFormat>,
}

impl StoreSpec {
    /// A spec that auto-detects the format at `path`.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        Self {
            path: path.into(),
            format: None,
        }
    }

    /// Open (or create) the store this spec names.
    pub fn open(&self) -> io::Result<Arc<dyn CellBackend>> {
        open_store(&self.path, self.format)
    }

    /// [`StoreSpec::open`] with explicit backend tunables.
    pub fn open_with(&self, options: StoreOptions) -> io::Result<Arc<dyn CellBackend>> {
        open_store_with(&self.path, self.format, options)
    }

    /// Fold in a deprecated `--store-format` flag.  The flag only
    /// fills an unforced spec; clashing with a `FMT:PATH` prefix is an
    /// error rather than a silent override.
    pub fn with_legacy_format(mut self, format: StoreFormat) -> Result<Self, String> {
        match self.format {
            None => {
                self.format = Some(format);
                Ok(self)
            }
            Some(forced) if forced == format => Ok(self),
            Some(forced) => Err(format!(
                "--store spec forces '{forced}' but --store-format says '{format}'"
            )),
        }
    }
}

impl std::fmt::Display for StoreSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.format {
            Some(fmt) => write!(f, "{fmt}:{}", self.path.display()),
            None => write!(f, "{}", self.path.display()),
        }
    }
}

impl std::str::FromStr for StoreSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("empty store spec (expected PATH or FORMAT:PATH)".to_string());
        }
        for format in [StoreFormat::Json, StoreFormat::Sharded] {
            if let Some(path) = s.strip_prefix(&format!("{format}:")) {
                if path.is_empty() {
                    return Err(format!("store spec '{s}' names no path"));
                }
                return Ok(Self {
                    path: path.into(),
                    format: Some(format),
                });
            }
        }
        Ok(Self::new(s))
    }
}

/// The format stored at `path`, if a store exists there.
///
/// A directory holding a [`ShardedStore`] manifest is sharded; a
/// regular file is JSON (the JSON reader validates contents on load).
/// A directory without a manifest is no store at all.
pub fn detect_format(path: &Path) -> Option<StoreFormat> {
    if path.is_dir() {
        if ShardedStore::manifest_path(path).is_file() {
            Some(StoreFormat::Sharded)
        } else {
            None
        }
    } else if path.is_file() {
        Some(StoreFormat::Json)
    } else {
        None
    }
}

/// Backend tunables a binary can thread through [`open_store_with`].
/// Formats ignore what does not apply to them (the JSON store has no
/// compaction).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreOptions {
    /// Superseded-frame ratio past which a sharded store compacts a
    /// shard automatically (`--compact-ratio`); `None` keeps
    /// compaction manual.
    pub compact_ratio: Option<f64>,
}

/// Open the cell store at `path`, creating it if absent.
///
/// * existing store → auto-detect its format; if `requested` is given
///   and disagrees with what is on disk, fail loudly rather than
///   shadowing or clobbering data;
/// * missing path → create a fresh store in the `requested` format
///   (default [`StoreFormat::Json`], matching the pre-sharding
///   behaviour of the binaries).
pub fn open_store(path: &Path, requested: Option<StoreFormat>) -> io::Result<Arc<dyn CellBackend>> {
    open_store_with(path, requested, StoreOptions::default())
}

/// [`open_store`] with explicit backend tunables.
pub fn open_store_with(
    path: &Path,
    requested: Option<StoreFormat>,
    options: StoreOptions,
) -> io::Result<Arc<dyn CellBackend>> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    let open_sharded = |path: &Path| -> io::Result<ShardedStore> {
        ShardedStore::open_with(
            path,
            ShardOpenOptions {
                compact_ratio: options.compact_ratio,
                ..Default::default()
            },
        )
    };
    match detect_format(path) {
        Some(found) => {
            if let Some(req) = requested {
                if req != found {
                    return Err(invalid(format!(
                        "store at {} is {found}, but --store-format {req} was requested",
                        path.display()
                    )));
                }
            }
            match found {
                StoreFormat::Json => Ok(Arc::new(CellStore::open(path)?)),
                StoreFormat::Sharded => Ok(Arc::new(open_sharded(path)?)),
            }
        }
        None if path.is_dir() => Err(invalid(format!(
            "{} is a directory but holds no sharded-store manifest",
            path.display()
        ))),
        None => match requested.unwrap_or(StoreFormat::Json) {
            StoreFormat::Json => Ok(Arc::new(CellStore::open(path)?)),
            StoreFormat::Sharded => {
                // create() leaves a fresh (empty) store behind; reopen
                // it with the requested tunables
                drop(ShardedStore::create(path, ShardedStore::DEFAULT_SHARDS)?);
                Ok(Arc::new(open_sharded(path)?))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::CellKind;

    fn key(i: u32) -> MeasurementKey {
        MeasurementKey {
            benchmark: "BT".to_string(),
            class: "S".to_string(),
            procs: 4,
            cell: CellKind::Chain(vec![kc_core::KernelId(i)]),
            reps: 3,
            exec_digest: "w1t2".to_string(),
            machine_fingerprint: "fp0".to_string(),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("kc_backend_{name}"));
        let _ = std::fs::remove_dir_all(&p);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn store_format_parses_and_prints() {
        assert_eq!("json".parse::<StoreFormat>().unwrap(), StoreFormat::Json);
        assert_eq!(
            "sharded".parse::<StoreFormat>().unwrap(),
            StoreFormat::Sharded
        );
        assert!("csv".parse::<StoreFormat>().is_err());
        assert_eq!(StoreFormat::Json.to_string(), "json");
        assert_eq!(StoreFormat::Sharded.to_string(), "sharded");
    }

    #[test]
    fn store_spec_parses_prefixes_and_bare_paths() {
        use std::str::FromStr;
        let bare = StoreSpec::from_str("out/cells.json").unwrap();
        assert_eq!(bare, StoreSpec::new("out/cells.json"));
        assert_eq!(bare.to_string(), "out/cells.json");

        let sharded = StoreSpec::from_str("sharded:out/cells.kcs").unwrap();
        assert_eq!(sharded.path, std::path::PathBuf::from("out/cells.kcs"));
        assert_eq!(sharded.format, Some(StoreFormat::Sharded));
        assert_eq!(sharded.to_string(), "sharded:out/cells.kcs");

        let json = StoreSpec::from_str("json:cells").unwrap();
        assert_eq!(json.format, Some(StoreFormat::Json));

        assert!(StoreSpec::from_str("").is_err());
        assert!(StoreSpec::from_str("sharded:").is_err());
        // an unknown prefix is just a path with a colon in it
        let odd = StoreSpec::from_str("weird:path").unwrap();
        assert_eq!(odd.path, std::path::PathBuf::from("weird:path"));
    }

    #[test]
    fn store_spec_legacy_format_fills_but_never_overrides() {
        use std::str::FromStr;
        let filled = StoreSpec::new("x")
            .with_legacy_format(StoreFormat::Sharded)
            .unwrap();
        assert_eq!(filled.format, Some(StoreFormat::Sharded));

        let agreeing = StoreSpec::from_str("sharded:x")
            .unwrap()
            .with_legacy_format(StoreFormat::Sharded)
            .unwrap();
        assert_eq!(agreeing.format, Some(StoreFormat::Sharded));

        assert!(StoreSpec::from_str("json:x")
            .unwrap()
            .with_legacy_format(StoreFormat::Sharded)
            .is_err());
    }

    #[test]
    fn store_spec_open_round_trips() {
        use std::str::FromStr;
        let root = tmp("spec_open");
        std::fs::create_dir_all(&root).unwrap();
        let spec =
            StoreSpec::from_str(&format!("sharded:{}", root.join("cells.kcs").display())).unwrap();
        let store = spec.open().unwrap();
        assert_eq!(store.format(), StoreFormat::Sharded);
        store.append(&key(9), &[4.5]).unwrap();
        store.flush().unwrap();
        // bare-path spec auto-detects the sharded store
        let again = StoreSpec::new(root.join("cells.kcs")).open().unwrap();
        assert_eq!(again.get(&key(9)), Some(vec![4.5]));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_store_creates_the_requested_format_and_redetects_it() {
        let root = tmp("create");
        std::fs::create_dir_all(&root).unwrap();
        let json_path = root.join("cells.json");
        let sharded_path = root.join("cells.kcs");

        let json = open_store(&json_path, None).unwrap();
        assert_eq!(json.format(), StoreFormat::Json);
        json.append(&key(0), &[1.0, 2.0]).unwrap();
        json.flush().unwrap();
        assert_eq!(detect_format(&json_path), Some(StoreFormat::Json));

        let sharded = open_store(&sharded_path, Some(StoreFormat::Sharded)).unwrap();
        assert_eq!(sharded.format(), StoreFormat::Sharded);
        sharded.append(&key(1), &[3.0]).unwrap();
        sharded.flush().unwrap();
        assert_eq!(detect_format(&sharded_path), Some(StoreFormat::Sharded));

        // reopen without a requested format: auto-detection routes to
        // the right reader and the data is still there
        let json2 = open_store(&json_path, None).unwrap();
        assert_eq!(json2.get(&key(0)), Some(vec![1.0, 2.0]));
        let sharded2 = open_store(&sharded_path, None).unwrap();
        assert_eq!(sharded2.get(&key(1)), Some(vec![3.0]));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_store_rejects_a_format_mismatch() {
        let root = tmp("mismatch");
        std::fs::create_dir_all(&root).unwrap();
        let json_path = root.join("cells.json");
        open_store(&json_path, Some(StoreFormat::Json))
            .unwrap()
            .flush()
            .unwrap();
        match open_store(&json_path, Some(StoreFormat::Sharded)) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("format mismatch must be rejected"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_store_rejects_a_bare_directory() {
        let root = tmp("baredir");
        std::fs::create_dir_all(&root).unwrap();
        assert!(open_store(&root, None).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn dyn_backend_is_a_measurement_backend() {
        let root = tmp("dynbackend");
        let store: Arc<dyn CellBackend> = open_store(&root, Some(StoreFormat::Sharded)).unwrap();
        let backend: &dyn CellBackend = &*store;
        let k = key(2);
        assert!(backend.load(&k).is_none());
        backend.store(&k, &Measurement::from_samples(vec![0.5, 0.75]));
        assert_eq!(
            backend.load(&k),
            Some(Measurement::from_samples(vec![0.5, 0.75]))
        );
        // empty sample sets load as None, mirroring CellStore
        backend.append(&key(3), &[]).unwrap();
        assert!(backend.load(&key(3)).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
