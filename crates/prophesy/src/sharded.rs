//! The sharded binary cell store: append-only segment files sharded
//! by key digest, fronted by the lossy [`HotTier`].
//!
//! # Layout
//!
//! A sharded store is a directory:
//!
//! ```text
//! cells.kcs/
//!   kcstore.json     manifest: {"format":"kc-cell-store/sharded","version":1,"shards":N}
//!   shard-000.seg    segment of shard 0
//!   ...
//!   shard-N-1.seg
//! ```
//!
//! A cell lives in shard `fnv1a(key) % N`, where `fnv1a` is the exact
//! digest `kc_core::MeasurementKey::digest_u64` computes over the
//! canonical key text — so a store and the scheduler agree on a
//! cell's identity without ever re-parsing keys.
//!
//! # Record framing
//!
//! Each segment starts with a 12-byte header (`KCSHARD1` magic plus
//! the shard index, little-endian u32) and then holds length-prefixed
//! frames:
//!
//! ```text
//! u32 LE payload_len | u64 LE fnv1a(payload) | payload
//! payload = u32 LE key_len | key (utf-8) | u32 LE n_samples | n × f64 LE bits
//! ```
//!
//! Appends are a single `write_all` of one frame, and re-appending a
//! key supersedes earlier frames (last-wins on scan) — so writers
//! never rewrite old bytes and a reader can always trust the frames
//! it has already validated.  Samples travel as raw `f64` bits, so
//! the binary format is bit-exact by construction.
//!
//! # Torn tails
//!
//! A crash (or a reader racing an in-flight append) can leave a
//! partial frame at the end of a segment.  Scans validate each frame
//! (length sanity, checksum) and simply stop at the first frame that
//! does not check out: the intact prefix is the store.  [`ShardedStore::open`]
//! additionally *truncates* such tails before accepting new appends —
//! otherwise fresh frames would land behind the garbage and be
//! invisible to every future scan.

use crate::backend::{CellBackend, StoreFormat};
use crate::cells::BackendStats;
use crate::hot::{HotTier, HotTierStats};
use parking_lot::Mutex;
use serde::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every segment file (the trailing `1` is the format
/// version).
const SEGMENT_MAGIC: &[u8; 8] = b"KCSHARD1";

/// Segment header: magic + u32 LE shard index.
const SEGMENT_HEADER_LEN: usize = SEGMENT_MAGIC.len() + 4;

/// Frame header: u32 LE payload length + u64 LE payload checksum.
const FRAME_HEADER_LEN: usize = 4 + 8;

/// Upper bound on a single frame payload; anything larger is treated
/// as garbage (a real cell is a key of a few hundred bytes plus a few
/// dozen samples).
const MAX_PAYLOAD_LEN: usize = 1 << 28;

/// Manifest `format` field value.
const MANIFEST_FORMAT: &str = "kc-cell-store/sharded";

/// Manifest schema version.
const MANIFEST_VERSION: u64 = 1;

/// FNV-1a over arbitrary bytes — the same constants as
/// `kc_core::MeasurementKey::digest_u64`, so `fnv1a(key.to_string())
/// == key.digest_u64()` and shard placement matches key identity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The key digest used for shard placement — public so tools (e.g.
/// `kc_store inspect`) can map canonical key text to shards without
/// reconstructing a `MeasurementKey`.
pub fn fnv1a_digest(key: &str) -> u64 {
    fnv1a(key.as_bytes())
}

/// What one [`ShardedStore::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Frames on disk before compaction (including superseded ones).
    pub records_before: u64,
    /// Frames after compaction (one per live cell).
    pub records_after: u64,
    /// Total segment bytes before.
    pub bytes_before: u64,
    /// Total segment bytes after.
    pub bytes_after: u64,
}

/// A sharded, append-only binary cell store with a lossy in-memory
/// hot tier.
///
/// Reads probe the hot tier first; a miss scans the key's segment
/// (last frame wins) and promotes the result.  Appends write one
/// frame under the shard's lock and refresh the hot tier.  Because
/// the tier overwrites on slot collision, residency is best-effort —
/// but a miss only costs a shard re-read, never a wrong answer.
pub struct ShardedStore {
    dir: PathBuf,
    shards: u32,
    hot: HotTier,
    /// Per-shard append handles; the mutex also serializes appends so
    /// frames from concurrent writers never interleave.
    appenders: Vec<Mutex<File>>,
    stats: Mutex<BackendStats>,
    /// First deferred append error, surfaced by `flush`.
    write_error: Mutex<Option<io::Error>>,
    /// Bytes of torn tail truncated at open, across all segments.
    repaired_bytes: u64,
}

impl ShardedStore {
    /// Shard count used when creating a store without an explicit
    /// choice.
    pub const DEFAULT_SHARDS: u32 = 16;

    /// Hot-tier slots per store.
    pub const DEFAULT_HOT_SLOTS: usize = 2048;

    /// The manifest path inside a store directory (also the format
    /// marker auto-detection looks for).
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("kcstore.json")
    }

    /// The segment path of one shard.
    fn segment_path(dir: &Path, shard: u32) -> PathBuf {
        dir.join(format!("shard-{shard:03}.seg"))
    }

    /// Create a fresh empty store at `dir` with `shards` segments.
    /// Fails if a store already lives there.
    pub fn create(dir: &Path, shards: u32) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if shards == 0 {
            return Err(bad("a sharded store needs at least one shard".into()));
        }
        if Self::manifest_path(dir).exists() {
            return Err(bad(format!(
                "a sharded store already exists at {}",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        let manifest = Value::Object(vec![
            (
                "format".to_string(),
                Value::Str(MANIFEST_FORMAT.to_string()),
            ),
            ("version".to_string(), Value::UInt(MANIFEST_VERSION)),
            ("shards".to_string(), Value::UInt(shards as u64)),
        ]);
        std::fs::write(
            Self::manifest_path(dir),
            serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
        )?;
        for shard in 0..shards {
            let mut f = File::create(Self::segment_path(dir, shard))?;
            f.write_all(SEGMENT_MAGIC)?;
            f.write_all(&shard.to_le_bytes())?;
        }
        Self::open(dir)
    }

    /// Open an existing store, validating the manifest and segment
    /// headers and truncating any torn tail left by a crashed writer
    /// (append-after-torn-tail would otherwise hide the new frames
    /// behind the garbage).
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with_hot_slots(dir, Self::DEFAULT_HOT_SLOTS)
    }

    /// [`ShardedStore::open`] with an explicit hot-tier size.  A tiny
    /// tier maximizes lossy collisions, which is how the tests force
    /// the shard-fallback path; a size of 1 makes every distinct key
    /// evict the previous one.
    pub fn open_with_hot_slots(dir: &Path, hot_slots: usize) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let manifest_text = std::fs::read_to_string(Self::manifest_path(dir))?;
        let manifest: Value =
            serde_json::from_str(&manifest_text).map_err(|e| bad(format!("bad manifest: {e}")))?;
        if manifest.get("format").and_then(Value::as_str) != Some(MANIFEST_FORMAT) {
            return Err(bad(format!(
                "{} is not a {MANIFEST_FORMAT} manifest",
                Self::manifest_path(dir).display()
            )));
        }
        let version = manifest
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("manifest lacks a version".into()))?;
        if version != MANIFEST_VERSION {
            return Err(bad(format!(
                "unsupported store version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let shards = manifest
            .get("shards")
            .and_then(Value::as_u64)
            .filter(|n| (1..=4096).contains(n))
            .ok_or_else(|| bad("manifest lacks a sane shard count".into()))?
            as u32;

        let mut repaired_bytes = 0u64;
        let mut appenders = Vec::with_capacity(shards as usize);
        for shard in 0..shards {
            let path = Self::segment_path(dir, shard);
            if !path.exists() {
                // a missing segment is an empty shard; recreate it so
                // appends have somewhere to land
                let mut f = File::create(&path)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.write_all(&shard.to_le_bytes())?;
            }
            let bytes = std::fs::read(&path)?;
            let (_, valid_len) =
                scan_segment(&bytes, shard).map_err(|e| bad(format!("{}: {e}", path.display())))?;
            if valid_len < bytes.len() {
                repaired_bytes += (bytes.len() - valid_len) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_len as u64)?;
            }
            appenders.push(Mutex::new(OpenOptions::new().append(true).open(&path)?));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            shards,
            hot: HotTier::new(hot_slots),
            appenders,
            stats: Mutex::new(BackendStats::default()),
            write_error: Mutex::new(None),
            repaired_bytes,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Bytes of torn tail truncated when this store was opened.
    pub fn repaired_bytes(&self) -> u64 {
        self.repaired_bytes
    }

    /// Hot-tier traffic counters.
    pub fn hot_stats(&self) -> HotTierStats {
        self.hot.stats()
    }

    /// The shard a key lives in.
    fn shard_of(&self, key: &str) -> u32 {
        (fnv1a(key.as_bytes()) % self.shards as u64) as u32
    }

    /// Read a key straight from its segment, bypassing the hot tier
    /// (last frame wins).
    fn read_from_shard(&self, key: &str) -> io::Result<Option<Vec<f64>>> {
        let shard = self.shard_of(key);
        let bytes = std::fs::read(Self::segment_path(&self.dir, shard))?;
        let (frames, _) = scan_segment(&bytes, shard)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(frames
            .into_iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, samples)| samples))
    }

    /// The samples stored under a canonical key, if any: hot-tier
    /// probe first, shard scan (plus hot promotion) on a miss.
    fn lookup(&self, key: &str) -> Option<Vec<f64>> {
        let digest = fnv1a(key.as_bytes());
        if let Some(samples) = self.hot.get(digest, key) {
            return Some(samples);
        }
        match self.read_from_shard(key) {
            Ok(Some(samples)) => {
                self.hot.insert(digest, key, &samples);
                Some(samples)
            }
            Ok(None) => None,
            Err(e) => {
                // a read error is not "absent", but the backend
                // interface has no error channel; log and miss, the
                // campaign will re-execute the cell
                eprintln!("[store] shard read for '{key}' failed: {e}");
                None
            }
        }
    }

    /// Append one frame for `key` and refresh the hot tier.
    fn write(&self, key: &str, samples: &[f64]) -> io::Result<()> {
        let digest = fnv1a(key.as_bytes());
        let frame = encode_frame(key, samples);
        let shard = self.shard_of(key);
        {
            let mut f = self.appenders[shard as usize].lock();
            if let Err(e) = f.write_all(&frame).and_then(|()| f.flush()) {
                let mut slot = self.write_error.lock();
                if slot.is_none() {
                    *slot = Some(io::Error::new(e.kind(), e.to_string()));
                }
                return Err(e);
            }
        }
        self.hot.insert(digest, key, samples);
        Ok(())
    }

    /// Scan every shard and return the live cells, sorted by key
    /// (last frame per key wins).
    fn scan_all(&self) -> io::Result<BTreeMap<String, Vec<f64>>> {
        let mut cells = BTreeMap::new();
        for shard in 0..self.shards {
            let bytes = std::fs::read(Self::segment_path(&self.dir, shard))?;
            let (frames, _) = scan_segment(&bytes, shard)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            for (key, samples) in frames {
                cells.insert(key, samples);
            }
        }
        Ok(cells)
    }

    /// Rewrite every segment with one frame per live cell, dropping
    /// superseded frames.  Readers racing a compaction keep their old
    /// file handle (the new segment lands by rename), writers are
    /// held out by the shard locks.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut report = CompactionReport::default();
        for shard in 0..self.shards {
            let path = Self::segment_path(&self.dir, shard);
            let mut guard = self.appenders[shard as usize].lock();
            let bytes = std::fs::read(&path)?;
            let (frames, _) = scan_segment(&bytes, shard)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            report.records_before += frames.len() as u64;
            report.bytes_before += bytes.len() as u64;
            let mut live = BTreeMap::new();
            for (key, samples) in frames {
                live.insert(key, samples);
            }
            report.records_after += live.len() as u64;

            let tmp = path.with_extension("seg.tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.write_all(&shard.to_le_bytes())?;
                for (key, samples) in &live {
                    f.write_all(&encode_frame(key, samples))?;
                }
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)?;
            report.bytes_after += std::fs::metadata(&path)?.len();
            *guard = OpenOptions::new().append(true).open(&path)?;
        }
        Ok(report)
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards)
            .field("repaired_bytes", &self.repaired_bytes)
            .finish_non_exhaustive()
    }
}

impl CellBackend for ShardedStore {
    fn get_raw(&self, key: &str) -> Option<Vec<f64>> {
        let found = self.lookup(key);
        let mut stats = self.stats.lock();
        stats.loads += 1;
        if found.as_ref().is_some_and(|s| !s.is_empty()) {
            stats.load_hits += 1;
        }
        found
    }

    fn append_raw(&self, key: &str, samples: &[f64]) -> io::Result<()> {
        self.write(key, samples)?;
        self.stats.lock().stores += 1;
        Ok(())
    }

    fn entries(&self) -> Vec<(String, Vec<f64>)> {
        match self.scan_all() {
            Ok(cells) => cells.into_iter().collect(),
            Err(e) => {
                eprintln!("[store] scan of {} failed: {e}", self.dir.display());
                Vec::new()
            }
        }
    }

    fn stats(&self) -> BackendStats {
        *self.stats.lock()
    }

    fn flush(&self) -> io::Result<()> {
        if let Some(e) = self.write_error.lock().take() {
            return Err(e);
        }
        for appender in &self.appenders {
            appender.lock().sync_all()?;
        }
        Ok(())
    }

    fn format(&self) -> StoreFormat {
        StoreFormat::Sharded
    }
}

/// One encoded frame for `key` / `samples`.
fn encode_frame(key: &str, samples: &[f64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + key.len() + samples.len() * 8);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    for s in samples {
        payload.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The frames of one segment in file order, plus the byte length of
/// the validated prefix.
type ScannedSegment = (Vec<(String, Vec<f64>)>, usize);

/// Decode all intact frames of one segment.
///
/// Returns the frames **in file order** (callers apply last-wins) and
/// the byte length of the validated prefix.  A torn or corrupt tail —
/// short frame, implausible length, checksum mismatch, malformed
/// payload — ends the scan rather than failing it; only a bad
/// *header* makes the whole file invalid (it is not a segment at
/// all).
fn scan_segment(bytes: &[u8], shard: u32) -> Result<ScannedSegment, String> {
    if bytes.len() < SEGMENT_HEADER_LEN
        || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC
        || bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER_LEN] != shard.to_le_bytes()
    {
        return Err(format!("not a shard-{shard} segment (bad header)"));
    }
    let mut frames = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    while bytes.len() - pos >= FRAME_HEADER_LEN {
        let payload_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let start = pos + FRAME_HEADER_LEN;
        if payload_len > MAX_PAYLOAD_LEN || bytes.len() - start < payload_len {
            break; // torn or garbage tail: keep the validated prefix
        }
        let payload = &bytes[start..start + payload_len];
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(frame) = decode_payload(payload) else {
            break;
        };
        frames.push(frame);
        pos = start + payload_len;
    }
    Ok((frames, pos))
}

/// Decode one checksum-validated payload; `None` means the payload is
/// internally inconsistent (which a checksum match makes vanishingly
/// unlikely, but scans must not panic on hostile bytes).
fn decode_payload(payload: &[u8]) -> Option<(String, Vec<f64>)> {
    let key_len = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let key_end = 4usize.checked_add(key_len)?;
    let key = std::str::from_utf8(payload.get(4..key_end)?).ok()?;
    let n = u32::from_le_bytes(payload.get(key_end..key_end + 4)?.try_into().ok()?) as usize;
    let data = payload.get(key_end + 4..)?;
    if data.len() != n.checked_mul(8)? {
        return None;
    }
    let samples = data
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    Some((key.to_string(), samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("kc_sharded_{name}"));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn digest_matches_measurement_key_digest() {
        let key = kc_core::MeasurementKey {
            benchmark: "BT".to_string(),
            class: "W".to_string(),
            procs: 9,
            cell: kc_core::CellKind::Application,
            reps: 1,
            exec_digest: "w1t2".to_string(),
            machine_fingerprint: "fp0".to_string(),
        };
        assert_eq!(fnv1a(key.to_string().as_bytes()), key.digest_u64());
    }

    #[test]
    fn append_get_roundtrips_bit_exactly() {
        let dir = tmp("roundtrip");
        let store = ShardedStore::create(&dir, 4).unwrap();
        let awkward = [0.1, 1.0 / 3.0, 6.02e-23, f64::MIN_POSITIVE, -0.0];
        store.append_raw("k|1", &awkward).unwrap();
        store.append_raw("k|2", &[]).unwrap();
        let got = store.get_raw("k|1").unwrap();
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&awkward));
        assert_eq!(store.get_raw("k|2"), Some(vec![]));
        assert_eq!(store.get_raw("missing"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reappend_supersedes_and_reopen_sees_the_latest() {
        let dir = tmp("lastwins");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("cell", &[1.0]).unwrap();
            store.append_raw("cell", &[2.0, 3.0]).unwrap();
            assert_eq!(store.get_raw("cell"), Some(vec![2.0, 3.0]));
            assert_eq!(store.len(), 1);
            store.flush().unwrap();
        }
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.get_raw("cell"), Some(vec![2.0, 3.0]));
        assert_eq!(
            reopened.entries(),
            vec![("cell".to_string(), vec![2.0, 3.0])]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_cold_get_misses_the_hot_tier_then_promotes() {
        let dir = tmp("promote");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("a", &[1.5]).unwrap();
            store.flush().unwrap();
        }
        let store = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.hot_stats().hits, 0);
        assert_eq!(store.get_raw("a"), Some(vec![1.5]));
        let after_first = store.hot_stats();
        assert_eq!(after_first.misses, 1, "cold read misses the tier");
        assert_eq!(after_first.inserts, 1, "and promotes the cell");
        assert_eq!(store.get_raw("a"), Some(vec![1.5]));
        assert_eq!(store.hot_stats().hits, 1, "warm read is a tier hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_repaired_on_open() {
        let dir = tmp("torn");
        {
            let store = ShardedStore::create(&dir, 1).unwrap();
            store.append_raw("alpha", &[1.0, 2.0]).unwrap();
            store.append_raw("beta", &[3.0]).unwrap();
            store.flush().unwrap();
        }
        // tear the segment mid-frame: drop the last 5 bytes
        let seg = ShardedStore::segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let store = ShardedStore::open(&dir).unwrap();
        assert!(store.repaired_bytes() > 0, "the torn tail was truncated");
        assert_eq!(store.get_raw("alpha"), Some(vec![1.0, 2.0]));
        assert_eq!(store.get_raw("beta"), None, "the torn frame is gone");
        // appends after repair are visible (not hidden behind garbage)
        store.append_raw("gamma", &[4.0]).unwrap();
        store.flush().unwrap();
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.repaired_bytes(), 0);
        assert_eq!(reopened.get_raw("gamma"), Some(vec![4.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_ends_the_scan_at_the_clean_prefix() {
        let dir = tmp("checksum");
        {
            let store = ShardedStore::create(&dir, 1).unwrap();
            store.append_raw("first", &[1.0]).unwrap();
            store.append_raw("second", &[2.0]).unwrap();
            store.flush().unwrap();
        }
        let seg = ShardedStore::segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a bit inside the second payload
        std::fs::write(&seg, &bytes).unwrap();
        let store = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.get_raw("first"), Some(vec![1.0]));
        assert_eq!(store.get_raw("second"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_non_segment_file_is_rejected_not_misread() {
        let dir = tmp("badheader");
        ShardedStore::create(&dir, 1).unwrap();
        std::fs::write(ShardedStore::segment_path(&dir, 0), b"not a segment").unwrap();
        assert!(ShardedStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber_and_open_refuses_garbage_manifests() {
        let dir = tmp("guard");
        ShardedStore::create(&dir, 2).unwrap();
        assert!(ShardedStore::create(&dir, 2).is_err());
        std::fs::write(ShardedStore::manifest_path(&dir), "{\"format\":\"other\"}").unwrap();
        assert!(ShardedStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_frames_and_keeps_the_data() {
        let dir = tmp("compact");
        let store = ShardedStore::create(&dir, 3).unwrap();
        for round in 0..4 {
            for i in 0..6 {
                store
                    .append_raw(&format!("cell-{i}"), &[round as f64, i as f64])
                    .unwrap();
            }
        }
        let before = store.entries();
        let report = store.compact().unwrap();
        assert_eq!(report.records_before, 24);
        assert_eq!(report.records_after, 6);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.entries(), before, "compaction preserves live cells");
        // the store still accepts appends after its handles were reset
        store.append_raw("cell-0", &[9.0]).unwrap();
        assert_eq!(store.get_raw("cell-0"), Some(vec![9.0]));
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.get_raw("cell-0"), Some(vec![9.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backend_stats_count_loads_hits_and_stores() {
        let dir = tmp("stats");
        let store = ShardedStore::create(&dir, 2).unwrap();
        assert_eq!(store.stats(), BackendStats::default());
        assert_eq!(store.get_raw("k"), None);
        store.append_raw("k", &[0.5]).unwrap();
        assert!(store.get_raw("k").is_some());
        let s = CellBackend::stats(&store);
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_hits, 1);
        assert_eq!(s.stores, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
