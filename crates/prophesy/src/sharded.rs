//! The sharded binary cell store: append-only segment files sharded
//! by key digest, fronted by the lossy [`HotTier`] and indexed by an
//! in-memory per-shard frame map.
//!
//! # Layout
//!
//! A sharded store is a directory:
//!
//! ```text
//! cells.kcs/
//!   kcstore.json     manifest: {"format":"kc-cell-store/sharded","version":1,"shards":N}
//!   shard-000.seg    segment of shard 0
//!   shard-000.idx    optional index sidecar of shard 0 (advisory)
//!   ...
//!   shard-N-1.seg
//! ```
//!
//! A cell lives in shard `fnv1a(key) % N`, where `fnv1a` is the exact
//! digest `kc_core::MeasurementKey::digest_u64` computes over the
//! canonical key text — so a store and the scheduler agree on a
//! cell's identity without ever re-parsing keys.
//!
//! # Record framing
//!
//! Each segment starts with a 12-byte header (`KCSHARD1` magic plus
//! the shard index, little-endian u32) and then holds length-prefixed
//! frames:
//!
//! ```text
//! u32 LE payload_len | u64 LE fnv1a(payload) | payload
//! payload = u32 LE key_len | key (utf-8) | u32 LE n_samples | n × f64 LE bits
//! ```
//!
//! Appends are a single `write_all` of one frame, and re-appending a
//! key supersedes earlier frames (last-wins on scan) — so writers
//! never rewrite old bytes and a reader can always trust the frames
//! it has already validated.  Samples travel as raw `f64` bits, so
//! the binary format is bit-exact by construction.
//!
//! # The read path: index, existence filter, positioned reads
//!
//! Each shard keeps an in-memory map from key digest to the offset
//! and length of the key's **latest** frame.  A lookup probes the hot
//! tier, then the index: an absent digest answers "no such cell" with
//! zero segment I/O (the map doubles as the existence filter), a
//! present one costs a single positioned read of exactly that frame.
//! The frame re-validates on read (length, checksum, key text), so a
//! wrong or stale index entry — a digest collision, a sidecar raced
//! by another writer — degrades to a full segment scan that also
//! rebuilds the shard's index, never to a wrong answer.
//!
//! The index persists as an optional `shard-NNN.idx` sidecar
//! (checksummed, written on flush and after compaction) so reopening
//! a large store skips the segment scan.  Sidecars are **advisory**:
//! one is loaded only if its checksum matches and its recorded
//! segment length equals the file's, and every entry still
//! re-validates against segment bytes on use.  Deleting every `.idx`
//! file merely makes the next open scan segments again.
//!
//! # Torn tails
//!
//! A crash (or a reader racing an in-flight append) can leave a
//! partial frame at the end of a segment.  Scans validate each frame
//! (length sanity, checksum) and simply stop at the first frame that
//! does not check out: the intact prefix is the store.  [`ShardedStore::open`]
//! additionally *truncates* such tails before accepting new appends —
//! otherwise fresh frames would land behind the garbage and be
//! invisible to every future scan.
//!
//! # Compaction
//!
//! Re-appends leave superseded frames behind; [`ShardedStore::compact`]
//! rewrites each segment with one frame per live cell (tmp + fsync +
//! rename).  With [`ShardedStore::set_compact_ratio`] the store also
//! compacts a shard automatically once an append leaves more than the
//! given fraction of its frames superseded.  Automatic compactions
//! run on a **background worker thread** (one per store, bounded
//! queue): the appending thread only checks the ratio under the shard
//! lock and enqueues the shard id, so the append path never pays the
//! rewrite.  The worker re-checks the ratio under the shard lock
//! before compacting (a racing manual compaction or a concurrent
//! trigger may have emptied the backlog), failed background
//! compactions poison the store exactly like failed appends, and
//! [`ShardedStore::flush`] (and drop) drain the worker first — after
//! a flush returns, every triggered compaction has landed.
//!
//! Long append-heavy sessions also refresh each shard's `.idx`
//! sidecar inline: after [`ShardOpenOptions::sidecar_refresh_bytes`]
//! appended bytes since the sidecar last matched disk, the next
//! append rewrites it, so reopening stays cheap even when nothing
//! ever calls `flush`.

use crate::backend::{CellBackend, StoreFormat};
use crate::cells::BackendStats;
use crate::hot::{HotTier, HotTierStats};
use kc_core::{TelemetryEvent, TelemetrySink};
use parking_lot::Mutex;
use serde::Value;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Magic prefix of every segment file (the trailing `1` is the format
/// version).
const SEGMENT_MAGIC: &[u8; 8] = b"KCSHARD1";

/// Magic prefix of every index sidecar.
const INDEX_MAGIC: &[u8; 8] = b"KCSIDX01";

/// Segment header: magic + u32 LE shard index.
const SEGMENT_HEADER_LEN: usize = SEGMENT_MAGIC.len() + 4;

/// Frame header: u32 LE payload length + u64 LE payload checksum.
const FRAME_HEADER_LEN: usize = 4 + 8;

/// Upper bound on a single frame payload; anything larger is treated
/// as garbage (a real cell is a key of a few hundred bytes plus a few
/// dozen samples).
const MAX_PAYLOAD_LEN: usize = 1 << 28;

/// Manifest `format` field value.
const MANIFEST_FORMAT: &str = "kc-cell-store/sharded";

/// Manifest schema version.
const MANIFEST_VERSION: u64 = 1;

/// FNV-1a over arbitrary bytes — the same constants as
/// `kc_core::MeasurementKey::digest_u64`, so `fnv1a(key.to_string())
/// == key.digest_u64()` and shard placement matches key identity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The key digest used for shard placement — public so tools (e.g.
/// `kc_store inspect`) can map canonical key text to shards without
/// reconstructing a `MeasurementKey`.
pub fn fnv1a_digest(key: &str) -> u64 {
    fnv1a(key.as_bytes())
}

/// What one [`ShardedStore::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Frames on disk before compaction (including superseded ones).
    pub records_before: u64,
    /// Frames after compaction (one per live cell).
    pub records_after: u64,
    /// Total segment bytes before.
    pub bytes_before: u64,
    /// Total segment bytes after.
    pub bytes_after: u64,
}

impl CompactionReport {
    fn absorb(&mut self, other: CompactionReport) {
        self.records_before += other.records_before;
        self.records_after += other.records_after;
        self.bytes_before += other.bytes_before;
        self.bytes_after += other.bytes_after;
    }
}

/// Where one live frame sits inside its segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FrameLoc {
    /// Byte offset of the frame header from the start of the file.
    offset: u64,
    /// Whole frame length: header plus payload.
    len: u32,
}

/// Freshness of one shard's on-disk index sidecar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SidecarState {
    /// The sidecar on disk describes the segment exactly.
    Fresh,
    /// A sidecar exists on disk but no longer matches the segment
    /// (appends since it was written, or a failed checksum).
    Stale,
    /// No sidecar on disk.
    Missing,
}

impl std::fmt::Display for SidecarState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SidecarState::Fresh => "fresh",
            SidecarState::Stale => "stale",
            SidecarState::Missing => "missing",
        })
    }
}

/// A point-in-time view of one shard, as reported by
/// [`ShardedStore::segment_stats`] (and `kc_store stat`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentStat {
    /// Shard index.
    pub shard: u32,
    /// Validated segment bytes.
    pub bytes: u64,
    /// Frames on disk, including superseded ones.
    pub frames: u64,
    /// Live cells (distinct indexed digests).
    pub live: u64,
    /// Sidecar freshness.
    pub sidecar: SidecarState,
}

impl SegmentStat {
    /// Frames a compaction would drop.
    pub fn superseded(&self) -> u64 {
        self.frames.saturating_sub(self.live)
    }

    /// `superseded / frames`, `0` for an empty shard.
    pub fn superseded_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.superseded() as f64 / self.frames as f64
        }
    }
}

/// Read-path traffic counters of a [`ShardedStore`], all monotonic
/// since open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadPathStats {
    /// Lookups answered "absent" by the in-memory existence filter,
    /// with zero segment I/O.
    pub filtered_absent: u64,
    /// Lookups answered by a single positioned frame read.
    pub positioned_reads: u64,
    /// Lookups that fell back to a full segment scan (digest
    /// collision or an index entry that no longer validates); each
    /// fallback also rebuilds that shard's index.
    pub fallback_scans: u64,
    /// Shards whose index was loaded from a fresh sidecar at open.
    pub sidecar_loads: u64,
    /// Shards whose index was rebuilt by scanning the segment (at
    /// open, or by a fallback scan).
    pub index_rebuilds: u64,
    /// Shard compactions triggered by the superseded-frame ratio.
    pub auto_compactions: u64,
}

#[derive(Default)]
struct ReadPathCounters {
    filtered_absent: AtomicU64,
    positioned_reads: AtomicU64,
    fallback_scans: AtomicU64,
    sidecar_loads: AtomicU64,
    index_rebuilds: AtomicU64,
    auto_compactions: AtomicU64,
}

impl ReadPathCounters {
    fn snapshot(&self) -> ReadPathStats {
        ReadPathStats {
            filtered_absent: self.filtered_absent.load(Ordering::Relaxed),
            positioned_reads: self.positioned_reads.load(Ordering::Relaxed),
            fallback_scans: self.fallback_scans.load(Ordering::Relaxed),
            sidecar_loads: self.sidecar_loads.load(Ordering::Relaxed),
            index_rebuilds: self.index_rebuilds.load(Ordering::Relaxed),
            auto_compactions: self.auto_compactions.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Tunables for [`ShardedStore::open_with`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardOpenOptions {
    /// Hot-tier slots.  A tiny tier maximizes lossy collisions, which
    /// is how tests force the segment read path; a size of 1 makes
    /// every distinct key evict the previous one.
    pub hot_slots: usize,
    /// Superseded-frame ratio past which a shard compacts itself
    /// after an append (on the store's background compaction worker);
    /// `None` keeps compaction manual.
    pub compact_ratio: Option<f64>,
    /// Appended bytes per shard after which the next append refreshes
    /// the `.idx` sidecar inline, so long append-heavy sessions stay
    /// cheap to reopen without an explicit flush.  `u64::MAX`
    /// restores the flush/compact-only behaviour.
    pub sidecar_refresh_bytes: u64,
}

impl Default for ShardOpenOptions {
    fn default() -> Self {
        Self {
            hot_slots: ShardedStore::DEFAULT_HOT_SLOTS,
            compact_ratio: None,
            sidecar_refresh_bytes: ShardedStore::DEFAULT_SIDECAR_REFRESH_BYTES,
        }
    }
}

/// One shard's mutable state.  Everything that must stay mutually
/// consistent — the append handle and its write offset, the read
/// handle, the frame index — lives under one mutex, so appends,
/// positioned reads and compactions of the same shard serialize while
/// different shards proceed in parallel.
struct Shard {
    /// Append handle; also used for truncation repairs.
    appender: File,
    /// Positioned-read handle (its cursor is only touched under the
    /// shard lock).
    reader: File,
    /// digest → latest frame.  Doubles as the existence filter: a
    /// digest missing here is a key the shard does not hold.
    index: HashMap<u64, FrameLoc>,
    /// Frames on disk, including superseded ones.
    frames: u64,
    /// Validated segment length in bytes (the append offset).
    len: u64,
    /// What the on-disk sidecar currently describes.
    sidecar: SidecarState,
    /// Bytes appended since the sidecar last matched the segment;
    /// crossing [`ShardOpenOptions::sidecar_refresh_bytes`] rewrites
    /// the sidecar inline on the next append.
    appended_since_sidecar: u64,
}

/// The store state shared between the front-end handle and its
/// background compaction worker: everything an automatic compaction
/// needs to run off the appending thread.
struct StoreCore {
    dir: PathBuf,
    shards: u32,
    /// Per-shard state; the mutex also serializes appends so frames
    /// from concurrent writers never interleave.
    state: Vec<Mutex<Shard>>,
    /// First deferred append error, surfaced by **every** `flush`
    /// until [`ShardedStore::clear_write_error`] acknowledges it.
    write_error: Mutex<Option<(io::ErrorKind, String)>>,
    /// Ratio-triggered compaction threshold.
    compact_ratio: Mutex<Option<f64>>,
    /// Inline sidecar refresh threshold (bytes appended per shard).
    sidecar_refresh_bytes: u64,
    read_path: ReadPathCounters,
}

/// What the appending threads hand the compaction worker.
enum CompactMsg {
    /// A shard crossed the superseded ratio; re-check and compact it.
    Compact(u32),
    /// Sync point: answer once every earlier message is processed.
    Drain(SyncSender<()>),
}

impl StoreCore {
    /// The segment path of one shard.
    fn segment_path(&self, shard: u32) -> PathBuf {
        ShardedStore::segment_path(&self.dir, shard)
    }

    /// The index-sidecar path of one shard.
    fn index_path(&self, shard: u32) -> PathBuf {
        ShardedStore::index_path(&self.dir, shard)
    }

    /// Record an append failure for `flush` to keep reporting.
    fn poison(&self, e: &io::Error) {
        let mut slot = self.write_error.lock();
        if slot.is_none() {
            *slot = Some((e.kind(), e.to_string()));
        }
    }

    /// Whether ratio-triggered compaction is due for a shard in this
    /// state.  Called under the shard lock — by the appending thread
    /// to decide whether to enqueue, and by the worker to re-check
    /// before doing the work.
    fn compaction_due(&self, s: &Shard) -> bool {
        let Some(ratio) = *self.compact_ratio.lock() else {
            return false;
        };
        if s.frames < ShardedStore::AUTO_COMPACT_MIN_FRAMES {
            return false;
        }
        let superseded = s.frames.saturating_sub(s.index.len() as u64);
        (superseded as f64) > ratio * (s.frames as f64)
    }

    /// Compact `shard` if ratio-triggered compaction is enabled and
    /// the shard (still) crosses the threshold.  A failed automatic
    /// compaction poisons the store (the segment itself is intact —
    /// replacement is by rename — but the shard handles may not be).
    fn maybe_compact_locked(&self, shard: u32, s: &mut Shard) {
        if !self.compaction_due(s) {
            return;
        }
        match self.compact_shard_locked(shard, s) {
            Ok(_) => ReadPathCounters::bump(&self.read_path.auto_compactions),
            Err(e) => self.poison(&e),
        }
    }

    /// Rewrite one shard's segment with one frame per live cell and
    /// swap it in by rename, refreshing the handles, the index and
    /// the sidecar.
    fn compact_shard_locked(&self, shard: u32, s: &mut Shard) -> io::Result<CompactionReport> {
        let path = self.segment_path(shard);
        let bytes = std::fs::read(&path)?;
        let (scanned, _) = scan_segment(&bytes, shard)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut report = CompactionReport {
            records_before: scanned.len() as u64,
            bytes_before: bytes.len() as u64,
            ..Default::default()
        };
        let mut live = BTreeMap::new();
        for f in scanned {
            live.insert(f.key, f.samples);
        }
        report.records_after = live.len() as u64;

        let tmp = path.with_extension("seg.tmp");
        let mut index = HashMap::with_capacity(live.len());
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SEGMENT_MAGIC)?;
            f.write_all(&shard.to_le_bytes())?;
            let mut offset = SEGMENT_HEADER_LEN as u64;
            for (key, samples) in &live {
                let frame = encode_frame(key, samples);
                f.write_all(&frame)?;
                index.insert(
                    fnv1a(key.as_bytes()),
                    FrameLoc {
                        offset,
                        len: frame.len() as u32,
                    },
                );
                offset += frame.len() as u64;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        report.bytes_after = std::fs::metadata(&path)?.len();
        s.appender = OpenOptions::new().append(true).open(&path)?;
        s.reader = File::open(&path)?;
        s.index = index;
        s.frames = report.records_after;
        s.len = report.bytes_after;
        // the old sidecar describes the pre-compaction segment;
        // refresh it now (best-effort: a stale sidecar is detected
        // and rebuilt, never believed)
        s.sidecar = match write_sidecar(&self.index_path(shard), shard, s.len, s.frames, &s.index) {
            Ok(()) => SidecarState::Fresh,
            Err(_) => SidecarState::Stale,
        };
        s.appended_since_sidecar = 0;
        Ok(report)
    }
}

/// The background compaction loop: drain shard ids, re-check the
/// ratio under the shard lock, compact.  Exits when every sender is
/// gone (store drop).
fn compaction_worker(core: Arc<StoreCore>, rx: Receiver<CompactMsg>) {
    for msg in rx {
        match msg {
            CompactMsg::Compact(shard) => {
                let mut s = core.state[shard as usize].lock();
                core.maybe_compact_locked(shard, &mut s);
            }
            CompactMsg::Drain(ack) => {
                // receiver may have given up (timeout); that's theirs
                let _ = ack.send(());
            }
        }
    }
}

/// A sharded, append-only binary cell store with a lossy in-memory
/// hot tier and per-shard frame indexes.
///
/// Reads probe the hot tier first; a miss consults the shard's index
/// — absent keys answer without touching disk, present ones cost one
/// positioned frame read (plus hot promotion).  Appends write one
/// frame under the shard's lock, update the index and refresh the hot
/// tier.  Because the tier overwrites on slot collision, residency is
/// best-effort — but a miss only costs an indexed read, never a wrong
/// answer.
pub struct ShardedStore {
    /// State shared with the background compaction worker.
    core: Arc<StoreCore>,
    hot: HotTier,
    stats: Mutex<BackendStats>,
    /// Sink for store-emitted telemetry (read errors).
    sink: Mutex<Option<Arc<dyn TelemetrySink>>>,
    /// Bytes of torn tail truncated at open, across all segments.
    repaired_bytes: u64,
    /// Bounded queue feeding the compaction worker; dropped (closing
    /// the channel) before the join on drop.
    compact_tx: Option<SyncSender<CompactMsg>>,
    /// The compaction worker itself, joined on drop.
    compact_worker: Mutex<Option<JoinHandle<()>>>,
}

impl ShardedStore {
    /// Shard count used when creating a store without an explicit
    /// choice.
    pub const DEFAULT_SHARDS: u32 = 16;

    /// Hot-tier slots per store.
    pub const DEFAULT_HOT_SLOTS: usize = 2048;

    /// Appended bytes per shard after which an append refreshes the
    /// index sidecar inline (see
    /// [`ShardOpenOptions::sidecar_refresh_bytes`]).
    pub const DEFAULT_SIDECAR_REFRESH_BYTES: u64 = 1 << 20;

    /// Queue slots of the background compaction worker.  Triggers
    /// past a full queue are dropped: the shard still crosses the
    /// ratio, so any later append re-enqueues it.
    const COMPACT_QUEUE_SLOTS: usize = 256;

    /// Frames a shard must hold before the superseded ratio can
    /// trigger an automatic compaction (rewriting a near-empty
    /// segment for its first superseded frame would thrash).
    pub const AUTO_COMPACT_MIN_FRAMES: u64 = 16;

    /// The manifest path inside a store directory (also the format
    /// marker auto-detection looks for).
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("kcstore.json")
    }

    /// The segment path of one shard.
    fn segment_path(dir: &Path, shard: u32) -> PathBuf {
        dir.join(format!("shard-{shard:03}.seg"))
    }

    /// The index-sidecar path of one shard.
    fn index_path(dir: &Path, shard: u32) -> PathBuf {
        dir.join(format!("shard-{shard:03}.idx"))
    }

    /// Create a fresh empty store at `dir` with `shards` segments.
    /// Fails if a store already lives there.
    pub fn create(dir: &Path, shards: u32) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if shards == 0 {
            return Err(bad("a sharded store needs at least one shard".into()));
        }
        if Self::manifest_path(dir).exists() {
            return Err(bad(format!(
                "a sharded store already exists at {}",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        let manifest = Value::Object(vec![
            (
                "format".to_string(),
                Value::Str(MANIFEST_FORMAT.to_string()),
            ),
            ("version".to_string(), Value::UInt(MANIFEST_VERSION)),
            ("shards".to_string(), Value::UInt(shards as u64)),
        ]);
        std::fs::write(
            Self::manifest_path(dir),
            serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
        )?;
        for shard in 0..shards {
            let mut f = File::create(Self::segment_path(dir, shard))?;
            f.write_all(SEGMENT_MAGIC)?;
            f.write_all(&shard.to_le_bytes())?;
        }
        Self::open(dir)
    }

    /// Open an existing store, validating the manifest and segment
    /// headers and truncating any torn tail left by a crashed writer
    /// (append-after-torn-tail would otherwise hide the new frames
    /// behind the garbage).
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with(dir, ShardOpenOptions::default())
    }

    /// [`ShardedStore::open`] with an explicit hot-tier size.
    pub fn open_with_hot_slots(dir: &Path, hot_slots: usize) -> io::Result<Self> {
        Self::open_with(
            dir,
            ShardOpenOptions {
                hot_slots,
                ..Default::default()
            },
        )
    }

    /// [`ShardedStore::open`] with explicit tunables.
    ///
    /// Each shard's index loads from a fresh sidecar when one exists
    /// (checksum intact, recorded segment length equal to the file's);
    /// otherwise the segment is scanned — which is also when torn
    /// tails are repaired — and the index rebuilt from the scan.
    pub fn open_with(dir: &Path, options: ShardOpenOptions) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let manifest_text = std::fs::read_to_string(Self::manifest_path(dir))?;
        let manifest: Value =
            serde_json::from_str(&manifest_text).map_err(|e| bad(format!("bad manifest: {e}")))?;
        if manifest.get("format").and_then(Value::as_str) != Some(MANIFEST_FORMAT) {
            return Err(bad(format!(
                "{} is not a {MANIFEST_FORMAT} manifest",
                Self::manifest_path(dir).display()
            )));
        }
        let version = manifest
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("manifest lacks a version".into()))?;
        if version != MANIFEST_VERSION {
            return Err(bad(format!(
                "unsupported store version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let shards = manifest
            .get("shards")
            .and_then(Value::as_u64)
            .filter(|n| (1..=4096).contains(n))
            .ok_or_else(|| bad("manifest lacks a sane shard count".into()))?
            as u32;

        let mut repaired_bytes = 0u64;
        let mut sidecar_loads = 0u64;
        let mut index_rebuilds = 0u64;
        let mut state = Vec::with_capacity(shards as usize);
        for shard in 0..shards {
            let path = Self::segment_path(dir, shard);
            if !path.exists() {
                // a missing segment is an empty shard; recreate it so
                // appends have somewhere to land
                let mut f = File::create(&path)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.write_all(&shard.to_le_bytes())?;
            }
            let file_len = std::fs::metadata(&path)?.len();
            let (index, frames, len, sidecar) =
                match load_sidecar(&Self::index_path(dir, shard), shard, file_len) {
                    Some((index, frames)) => {
                        sidecar_loads += 1;
                        (index, frames, file_len, SidecarState::Fresh)
                    }
                    None => {
                        let bytes = std::fs::read(&path)?;
                        let (scanned, valid_len) = scan_segment(&bytes, shard)
                            .map_err(|e| bad(format!("{}: {e}", path.display())))?;
                        if valid_len < bytes.len() {
                            repaired_bytes += (bytes.len() - valid_len) as u64;
                            let f = OpenOptions::new().write(true).open(&path)?;
                            f.set_len(valid_len as u64)?;
                        }
                        index_rebuilds += 1;
                        let sidecar = if Self::index_path(dir, shard).exists() {
                            SidecarState::Stale
                        } else {
                            SidecarState::Missing
                        };
                        (
                            index_of(&scanned),
                            scanned.len() as u64,
                            valid_len as u64,
                            sidecar,
                        )
                    }
                };
            state.push(Mutex::new(Shard {
                appender: OpenOptions::new().append(true).open(&path)?,
                reader: File::open(&path)?,
                index,
                frames,
                len,
                sidecar,
                appended_since_sidecar: 0,
            }));
        }
        let read_path = ReadPathCounters::default();
        read_path
            .sidecar_loads
            .store(sidecar_loads, Ordering::Relaxed);
        read_path
            .index_rebuilds
            .store(index_rebuilds, Ordering::Relaxed);
        let core = Arc::new(StoreCore {
            dir: dir.to_path_buf(),
            shards,
            state,
            write_error: Mutex::new(None),
            compact_ratio: Mutex::new(options.compact_ratio),
            sidecar_refresh_bytes: options.sidecar_refresh_bytes.max(1),
            read_path,
        });
        let (compact_tx, compact_rx) = std::sync::mpsc::sync_channel(Self::COMPACT_QUEUE_SLOTS);
        let worker_core = Arc::clone(&core);
        let worker = std::thread::Builder::new()
            .name("kc-store-compact".to_string())
            .spawn(move || compaction_worker(worker_core, compact_rx))?;
        Ok(Self {
            core,
            hot: HotTier::new(options.hot_slots),
            stats: Mutex::new(BackendStats::default()),
            sink: Mutex::new(None),
            repaired_bytes,
            compact_tx: Some(compact_tx),
            compact_worker: Mutex::new(Some(worker)),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.core.dir
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.core.shards
    }

    /// Bytes of torn tail truncated when this store was opened.
    pub fn repaired_bytes(&self) -> u64 {
        self.repaired_bytes
    }

    /// Hot-tier traffic counters.
    pub fn hot_stats(&self) -> HotTierStats {
        self.hot.stats()
    }

    /// Read-path traffic counters.
    pub fn read_stats(&self) -> ReadPathStats {
        self.core.read_path.snapshot()
    }

    /// The ratio-triggered compaction threshold, if enabled.
    pub fn compact_ratio(&self) -> Option<f64> {
        *self.core.compact_ratio.lock()
    }

    /// Enable (or disable) ratio-triggered compaction: after an
    /// append leaves a shard of at least
    /// [`ShardedStore::AUTO_COMPACT_MIN_FRAMES`] frames with more
    /// than `ratio` of them superseded, the shard is queued for the
    /// store's background compaction worker.  Values outside `(0, 1)`
    /// effectively disable (`>= 1`) or constantly re-trigger (`<= 0`)
    /// the check; CLI callers validate the range.
    pub fn set_compact_ratio(&self, ratio: Option<f64>) {
        *self.core.compact_ratio.lock() = ratio;
    }

    /// Block until the background compaction worker has processed
    /// every trigger enqueued so far.  [`CellBackend::flush`] calls
    /// this before syncing, so callers only need it when asserting on
    /// compaction effects without flushing.
    pub fn drain_compactions(&self) {
        if let Some(tx) = &self.compact_tx {
            let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
            if tx.send(CompactMsg::Drain(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Attach a telemetry sink; subsequent read errors are recorded
    /// as [`TelemetryEvent::StoreReadError`] instead of logged to
    /// stderr.
    pub fn attach_sink(&self, sink: Arc<dyn TelemetrySink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Per-shard frame/byte/sidecar statistics (the `kc_store stat`
    /// view).
    pub fn segment_stats(&self) -> Vec<SegmentStat> {
        (0..self.core.shards)
            .map(|shard| {
                let s = self.core.state[shard as usize].lock();
                SegmentStat {
                    shard,
                    bytes: s.len,
                    frames: s.frames,
                    live: s.index.len() as u64,
                    sidecar: s.sidecar,
                }
            })
            .collect()
    }

    /// Drop a sticky append failure recorded by an earlier write,
    /// returning it.  Until this is called, every
    /// [`CellBackend::flush`] re-reports the failure — a store that
    /// lost a write must not quietly report success once the first
    /// flush was seen.
    pub fn clear_write_error(&self) -> Option<io::Error> {
        self.core
            .write_error
            .lock()
            .take()
            .map(|(kind, msg)| io::Error::new(kind, msg))
    }

    /// The shard a key lives in.
    fn shard_of(&self, key: &str) -> u32 {
        (fnv1a(key.as_bytes()) % self.core.shards as u64) as u32
    }

    /// Count a shard read error and surface it: through the attached
    /// telemetry sink as a [`TelemetryEvent::StoreReadError`] when one
    /// is attached, to stderr otherwise.
    fn report_read_error(&self, key: &str, e: &io::Error) {
        self.stats.lock().read_errors += 1;
        let sink = self.sink.lock().clone();
        match sink {
            Some(sink) => sink.record(TelemetryEvent::StoreReadError {
                key: key.to_string(),
                error: e.to_string(),
            }),
            None => eprintln!("[store] shard read for '{key}' failed: {e}"),
        }
    }

    /// Look `key` up by scanning its whole segment, bypassing the hot
    /// tier and the index.  This is the pre-index read path, kept as
    /// the benchmark baseline (`benches/store_read.rs` measures it
    /// against indexed misses) and as a correctness oracle in tests;
    /// real reads go through [`CellBackend::get_raw`].
    pub fn full_scan_lookup(&self, key: &str) -> io::Result<Option<Vec<f64>>> {
        let shard = self.shard_of(key);
        let _guard = self.core.state[shard as usize].lock();
        let bytes = std::fs::read(self.core.segment_path(shard))?;
        let (frames, _) = scan_segment(&bytes, shard)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(frames
            .into_iter()
            .rev()
            .find(|f| f.key == key)
            .map(|f| f.samples))
    }

    /// The samples stored under a canonical key, if any: hot-tier
    /// probe first, indexed segment read (plus hot promotion) on a
    /// miss.
    fn lookup(&self, key: &str) -> Option<Vec<f64>> {
        let digest = fnv1a(key.as_bytes());
        if let Some(samples) = self.hot.get(digest, key) {
            return Some(samples);
        }
        let shard = (digest % self.core.shards as u64) as u32;
        let found = {
            let mut s = self.core.state[shard as usize].lock();
            self.read_locked(shard, &mut s, digest, key)
        };
        match found {
            Ok(Some(samples)) => {
                self.hot.insert(digest, key, &samples);
                Some(samples)
            }
            Ok(None) => None,
            Err(e) => {
                // a read error is not "absent", but the backend
                // interface has no error channel; count + report it
                // and miss, the campaign will re-execute the cell
                self.report_read_error(key, &e);
                None
            }
        }
    }

    /// The indexed read: existence filter, then one positioned frame
    /// read, falling back to a full scan (which rebuilds the index)
    /// if the indexed frame does not validate or holds a
    /// digest-colliding key.
    fn read_locked(
        &self,
        shard: u32,
        s: &mut Shard,
        digest: u64,
        key: &str,
    ) -> io::Result<Option<Vec<f64>>> {
        let Some(loc) = s.index.get(&digest).copied() else {
            ReadPathCounters::bump(&self.core.read_path.filtered_absent);
            return Ok(None);
        };
        if let Some((frame_key, samples)) = read_frame_at(&s.reader, loc)? {
            if frame_key == key {
                ReadPathCounters::bump(&self.core.read_path.positioned_reads);
                return Ok(Some(samples));
            }
            // digest collision: the indexed frame belongs to another
            // key with the same digest; the scan below still finds
            // ours if the shard holds it
        }
        ReadPathCounters::bump(&self.core.read_path.fallback_scans);
        self.rescan_locked(shard, s, key)
    }

    /// Re-derive one shard's state from its segment bytes — the
    /// correctness path; the in-memory index and any sidecar are pure
    /// accelerators over it.  Returns the samples stored under `key`,
    /// if any.
    fn rescan_locked(&self, shard: u32, s: &mut Shard, key: &str) -> io::Result<Option<Vec<f64>>> {
        let path = self.core.segment_path(shard);
        let bytes = std::fs::read(&path)?;
        let (scanned, valid_len) = scan_segment(&bytes, shard)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if valid_len < bytes.len() {
            // mid-segment corruption: drop the invalid tail exactly
            // like open does, so future appends stay visible
            s.appender.set_len(valid_len as u64)?;
        }
        if (valid_len as u64, scanned.len() as u64) != (s.len, s.frames)
            && s.sidecar == SidecarState::Fresh
        {
            s.sidecar = SidecarState::Stale;
        }
        s.index = index_of(&scanned);
        s.frames = scanned.len() as u64;
        s.len = valid_len as u64;
        ReadPathCounters::bump(&self.core.read_path.index_rebuilds);
        Ok(scanned
            .into_iter()
            .rev()
            .find(|f| f.key == key)
            .map(|f| f.samples))
    }

    /// Append one frame for `key`, update the shard index and refresh
    /// the hot tier; then hand the shard to the background compaction
    /// worker if the superseded ratio crossed the configured
    /// threshold, and rewrite the index sidecar inline if enough
    /// bytes accumulated since it last matched disk.
    fn write(&self, key: &str, samples: &[f64]) -> io::Result<()> {
        let digest = fnv1a(key.as_bytes());
        let frame = encode_frame(key, samples);
        let shard = (digest % self.core.shards as u64) as u32;
        let compaction_due = {
            let mut s = self.core.state[shard as usize].lock();
            let offset = s.len;
            if let Err(e) = s
                .appender
                .write_all(&frame)
                .and_then(|()| s.appender.flush())
            {
                // drop any partially-written frame so the segment
                // stays a clean validated prefix, then poison the
                // store for flush()
                let _ = s.appender.set_len(offset);
                self.core.poison(&e);
                return Err(e);
            }
            s.len += frame.len() as u64;
            s.frames += 1;
            s.index.insert(
                digest,
                FrameLoc {
                    offset,
                    len: frame.len() as u32,
                },
            );
            if s.sidecar == SidecarState::Fresh {
                s.sidecar = SidecarState::Stale;
            }
            s.appended_since_sidecar += frame.len() as u64;
            if s.appended_since_sidecar >= self.core.sidecar_refresh_bytes {
                // long append session without a flush: refresh the
                // sidecar so a reopen skips the segment scan anyway
                // (best-effort — on failure just try again after the
                // next threshold's worth of appends)
                if write_sidecar(
                    &self.core.index_path(shard),
                    shard,
                    s.len,
                    s.frames,
                    &s.index,
                )
                .is_ok()
                {
                    s.sidecar = SidecarState::Fresh;
                }
                s.appended_since_sidecar = 0;
            }
            self.core.compaction_due(&s)
        };
        if compaction_due {
            // off-thread: enqueue after releasing the shard lock.  A
            // full queue drops the trigger — the ratio stays crossed,
            // so a later append (or flush's drain) still gets there.
            if let Some(tx) = &self.compact_tx {
                match tx.try_send(CompactMsg::Compact(shard)) {
                    Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
        self.hot.insert(digest, key, samples);
        Ok(())
    }

    /// Scan every shard and return the live cells, sorted by key
    /// (last frame per key wins).
    fn scan_all(&self) -> io::Result<BTreeMap<String, Vec<f64>>> {
        let mut cells = BTreeMap::new();
        for shard in 0..self.core.shards {
            let bytes = std::fs::read(self.core.segment_path(shard))?;
            let (frames, _) = scan_segment(&bytes, shard)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            for f in frames {
                cells.insert(f.key, f.samples);
            }
        }
        Ok(cells)
    }

    /// Rewrite every segment with one frame per live cell, dropping
    /// superseded frames.  Readers racing a compaction keep their old
    /// file handle (the new segment lands by rename), writers are
    /// held out by the shard locks.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut report = CompactionReport::default();
        for shard in 0..self.core.shards {
            let mut s = self.core.state[shard as usize].lock();
            report.absorb(self.core.compact_shard_locked(shard, &mut s)?);
        }
        Ok(report)
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        // closing the channel ends the worker's receive loop; joining
        // guarantees no compaction is mid-rewrite when the shard
        // handles go away with the store
        self.compact_tx = None;
        if let Some(handle) = self.compact_worker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("dir", &self.core.dir)
            .field("shards", &self.core.shards)
            .field("repaired_bytes", &self.repaired_bytes)
            .finish_non_exhaustive()
    }
}

impl CellBackend for ShardedStore {
    fn get_raw(&self, key: &str) -> Option<Vec<f64>> {
        let found = self.lookup(key);
        let mut stats = self.stats.lock();
        stats.loads += 1;
        if found.is_some() {
            // any stored frame is a hit — including a legal empty
            // sample set (the measurement layer above separately
            // treats empty as "measured nothing")
            stats.load_hits += 1;
        }
        drop(stats);
        found
    }

    fn append_raw(&self, key: &str, samples: &[f64]) -> io::Result<()> {
        self.write(key, samples)?;
        self.stats.lock().stores += 1;
        Ok(())
    }

    fn entries(&self) -> Vec<(String, Vec<f64>)> {
        match self.scan_all() {
            Ok(cells) => cells.into_iter().collect(),
            Err(e) => {
                eprintln!("[store] scan of {} failed: {e}", self.core.dir.display());
                Vec::new()
            }
        }
    }

    fn stats(&self) -> BackendStats {
        *self.stats.lock()
    }

    fn flush(&self) -> io::Result<()> {
        // settle any queued background compactions first, so the
        // sticky-error check below sees their failures too and the
        // durability point covers the compacted segments
        self.drain_compactions();
        if let Some((kind, msg)) = &*self.core.write_error.lock() {
            // sticky: a store that lost a write keeps failing until
            // clear_write_error acknowledges the loss
            return Err(io::Error::new(*kind, msg.clone()));
        }
        for (shard, state) in self.core.state.iter().enumerate() {
            let mut s = state.lock();
            s.appender.sync_all()?;
            if s.sidecar != SidecarState::Fresh
                && write_sidecar(
                    &self.core.index_path(shard as u32),
                    shard as u32,
                    s.len,
                    s.frames,
                    &s.index,
                )
                .is_ok()
            {
                s.sidecar = SidecarState::Fresh;
                s.appended_since_sidecar = 0;
            }
        }
        Ok(())
    }

    fn format(&self) -> StoreFormat {
        StoreFormat::Sharded
    }

    fn attach_sink(&self, sink: Arc<dyn TelemetrySink>) {
        ShardedStore::attach_sink(self, sink);
    }
}

/// One encoded frame for `key` / `samples`.
fn encode_frame(key: &str, samples: &[f64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + key.len() + samples.len() * 8);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    for s in samples {
        payload.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// One validated frame, as located by a segment scan.
struct ScannedFrame {
    key: String,
    samples: Vec<f64>,
    /// Byte offset of the frame header from the start of the file.
    offset: u64,
    /// Whole frame length: header plus payload.
    len: u32,
}

/// The frames of one segment in file order, plus the byte length of
/// the validated prefix.
type ScannedSegment = (Vec<ScannedFrame>, usize);

/// The last-wins index over a scan's frames.
fn index_of(scanned: &[ScannedFrame]) -> HashMap<u64, FrameLoc> {
    let mut index = HashMap::with_capacity(scanned.len());
    for f in scanned {
        index.insert(
            fnv1a(f.key.as_bytes()),
            FrameLoc {
                offset: f.offset,
                len: f.len,
            },
        );
    }
    index
}

/// Decode all intact frames of one segment.
///
/// Returns the frames **in file order** (callers apply last-wins) and
/// the byte length of the validated prefix.  A torn or corrupt tail —
/// short frame, implausible length, checksum mismatch, malformed
/// payload — ends the scan rather than failing it; only a bad
/// *header* makes the whole file invalid (it is not a segment at
/// all).
fn scan_segment(bytes: &[u8], shard: u32) -> Result<ScannedSegment, String> {
    if bytes.len() < SEGMENT_HEADER_LEN
        || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC
        || bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER_LEN] != shard.to_le_bytes()
    {
        return Err(format!("not a shard-{shard} segment (bad header)"));
    }
    let mut frames = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    while bytes.len() - pos >= FRAME_HEADER_LEN {
        let payload_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let start = pos + FRAME_HEADER_LEN;
        if payload_len > MAX_PAYLOAD_LEN || bytes.len() - start < payload_len {
            break; // torn or garbage tail: keep the validated prefix
        }
        let payload = &bytes[start..start + payload_len];
        if fnv1a(payload) != checksum {
            break;
        }
        let Some((key, samples)) = decode_payload(payload) else {
            break;
        };
        frames.push(ScannedFrame {
            key,
            samples,
            offset: pos as u64,
            len: (FRAME_HEADER_LEN + payload_len) as u32,
        });
        pos = start + payload_len;
    }
    Ok((frames, pos))
}

/// Read and re-validate one frame at a known location.  `Ok(None)`
/// means the bytes there no longer decode as a well-formed frame (a
/// stale or digest-colliding index entry) — callers fall back to a
/// full scan; `Err` is a real I/O failure.
fn read_frame_at(reader: &File, loc: FrameLoc) -> io::Result<Option<(String, Vec<f64>)>> {
    if (loc.len as usize) < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let mut r = reader;
    r.seek(SeekFrom::Start(loc.offset))?;
    let mut buf = vec![0u8; loc.len as usize];
    match r.read_exact(&mut buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let payload_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if payload_len != loc.len as usize - FRAME_HEADER_LEN {
        return Ok(None);
    }
    let checksum = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let payload = &buf[FRAME_HEADER_LEN..];
    if fnv1a(payload) != checksum {
        return Ok(None);
    }
    Ok(decode_payload(payload))
}

/// Serialize one shard's index sidecar:
///
/// ```text
/// KCSIDX01 | u64 LE fnv1a(body) | body
/// body = u32 LE shard | u64 LE segment_len | u64 LE frames
///      | u32 LE entries | entries × (u64 LE digest | u64 LE offset | u32 LE len)
/// ```
///
/// `segment_len` is the freshness check: a sidecar is believed only
/// when it equals the segment file's length at open, so any append or
/// truncation since the write makes the sidecar invisible (and the
/// open rescans).  Entries are digest-sorted so the bytes are
/// deterministic.
fn encode_sidecar(
    shard: u32,
    segment_len: u64,
    frames: u64,
    index: &HashMap<u64, FrameLoc>,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(24 + index.len() * 20);
    body.extend_from_slice(&shard.to_le_bytes());
    body.extend_from_slice(&segment_len.to_le_bytes());
    body.extend_from_slice(&frames.to_le_bytes());
    body.extend_from_slice(&(index.len() as u32).to_le_bytes());
    let mut entries: Vec<(&u64, &FrameLoc)> = index.iter().collect();
    entries.sort_by_key(|(digest, _)| **digest);
    for (digest, loc) in entries {
        body.extend_from_slice(&digest.to_le_bytes());
        body.extend_from_slice(&loc.offset.to_le_bytes());
        body.extend_from_slice(&loc.len.to_le_bytes());
    }
    let mut out = Vec::with_capacity(INDEX_MAGIC.len() + 8 + body.len());
    out.extend_from_slice(INDEX_MAGIC);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Atomically (tmp + rename) write one shard's index sidecar.
fn write_sidecar(
    path: &Path,
    shard: u32,
    segment_len: u64,
    frames: u64,
    index: &HashMap<u64, FrameLoc>,
) -> io::Result<()> {
    let tmp = path.with_extension("idx.tmp");
    std::fs::write(&tmp, encode_sidecar(shard, segment_len, frames, index))?;
    std::fs::rename(&tmp, path)
}

/// Load one shard's sidecar, returning `(index, frames)` only when it
/// is *believable*: magic and checksum intact, shard matching, its
/// recorded segment length equal to the file's current length, and
/// every entry inside the segment's bounds.  Anything else — missing
/// file, torn write, appends since the sidecar — returns `None` and
/// the caller rescans the segment.
fn load_sidecar(
    path: &Path,
    shard: u32,
    segment_len: u64,
) -> Option<(HashMap<u64, FrameLoc>, u64)> {
    let bytes = std::fs::read(path).ok()?;
    let header = INDEX_MAGIC.len() + 8;
    if bytes.len() < header + 24 || &bytes[..INDEX_MAGIC.len()] != INDEX_MAGIC {
        return None;
    }
    let checksum = u64::from_le_bytes(bytes[INDEX_MAGIC.len()..header].try_into().ok()?);
    let body = &bytes[header..];
    if fnv1a(body) != checksum {
        return None;
    }
    if u32::from_le_bytes(body[..4].try_into().ok()?) != shard {
        return None;
    }
    if u64::from_le_bytes(body[4..12].try_into().ok()?) != segment_len {
        return None; // the segment moved on: the sidecar is stale
    }
    let frames = u64::from_le_bytes(body[12..20].try_into().ok()?);
    let entries = u32::from_le_bytes(body[20..24].try_into().ok()?) as usize;
    let rest = &body[24..];
    if rest.len() != entries.checked_mul(20)? || (entries as u64) > frames {
        return None;
    }
    let mut index = HashMap::with_capacity(entries);
    for chunk in rest.chunks_exact(20) {
        let digest = u64::from_le_bytes(chunk[..8].try_into().ok()?);
        let offset = u64::from_le_bytes(chunk[8..16].try_into().ok()?);
        let len = u32::from_le_bytes(chunk[16..20].try_into().ok()?);
        if offset < SEGMENT_HEADER_LEN as u64
            || (len as usize) < FRAME_HEADER_LEN
            || offset.checked_add(len as u64)? > segment_len
        {
            return None;
        }
        index.insert(digest, FrameLoc { offset, len });
    }
    Some((index, frames))
}

/// Decode one checksum-validated payload; `None` means the payload is
/// internally inconsistent (which a checksum match makes vanishingly
/// unlikely, but scans must not panic on hostile bytes).
fn decode_payload(payload: &[u8]) -> Option<(String, Vec<f64>)> {
    let key_len = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let key_end = 4usize.checked_add(key_len)?;
    let key = std::str::from_utf8(payload.get(4..key_end)?).ok()?;
    let n = u32::from_le_bytes(payload.get(key_end..key_end + 4)?.try_into().ok()?) as usize;
    let data = payload.get(key_end + 4..)?;
    if data.len() != n.checked_mul(8)? {
        return None;
    }
    let samples = data
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    Some((key.to_string(), samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("kc_sharded_{name}"));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn digest_matches_measurement_key_digest() {
        let key = kc_core::MeasurementKey {
            benchmark: "BT".to_string(),
            class: "W".to_string(),
            procs: 9,
            cell: kc_core::CellKind::Application,
            reps: 1,
            exec_digest: "w1t2".to_string(),
            machine_fingerprint: "fp0".to_string(),
        };
        assert_eq!(fnv1a(key.to_string().as_bytes()), key.digest_u64());
    }

    #[test]
    fn append_get_roundtrips_bit_exactly() {
        let dir = tmp("roundtrip");
        let store = ShardedStore::create(&dir, 4).unwrap();
        let awkward = [0.1, 1.0 / 3.0, 6.02e-23, f64::MIN_POSITIVE, -0.0];
        store.append_raw("k|1", &awkward).unwrap();
        store.append_raw("k|2", &[]).unwrap();
        let got = store.get_raw("k|1").unwrap();
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&awkward));
        assert_eq!(store.get_raw("k|2"), Some(vec![]));
        assert_eq!(store.get_raw("missing"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reappend_supersedes_and_reopen_sees_the_latest() {
        let dir = tmp("lastwins");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("cell", &[1.0]).unwrap();
            store.append_raw("cell", &[2.0, 3.0]).unwrap();
            assert_eq!(store.get_raw("cell"), Some(vec![2.0, 3.0]));
            assert_eq!(store.len(), 1);
            store.flush().unwrap();
        }
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.get_raw("cell"), Some(vec![2.0, 3.0]));
        assert_eq!(
            reopened.entries(),
            vec![("cell".to_string(), vec![2.0, 3.0])]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_cold_get_misses_the_hot_tier_then_promotes() {
        let dir = tmp("promote");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("a", &[1.5]).unwrap();
            store.flush().unwrap();
        }
        let store = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.hot_stats().hits, 0);
        assert_eq!(store.get_raw("a"), Some(vec![1.5]));
        let after_first = store.hot_stats();
        assert_eq!(after_first.misses, 1, "cold read misses the tier");
        assert_eq!(after_first.inserts, 1, "and promotes the cell");
        assert_eq!(store.get_raw("a"), Some(vec![1.5]));
        assert_eq!(store.hot_stats().hits, 1, "warm read is a tier hit");
        let reads = store.read_stats();
        assert_eq!(reads.positioned_reads, 1, "the cold read was indexed");
        assert_eq!(reads.fallback_scans, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_sample_set_counts_as_a_load_hit() {
        let dir = tmp("emptyhit");
        let store = ShardedStore::create(&dir, 2).unwrap();
        store.append_raw("empty", &[]).unwrap();
        assert_eq!(store.get_raw("empty"), Some(vec![]));
        assert_eq!(store.get_raw("absent"), None);
        let s = CellBackend::stats(&store);
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_hits, 1, "a stored empty frame is a hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_repaired_on_open() {
        let dir = tmp("torn");
        {
            let store = ShardedStore::create(&dir, 1).unwrap();
            store.append_raw("alpha", &[1.0, 2.0]).unwrap();
            store.append_raw("beta", &[3.0]).unwrap();
            store.flush().unwrap();
        }
        // tear the segment mid-frame: drop the last 5 bytes
        let seg = ShardedStore::segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let store = ShardedStore::open(&dir).unwrap();
        assert!(store.repaired_bytes() > 0, "the torn tail was truncated");
        assert_eq!(
            store.read_stats().sidecar_loads,
            0,
            "the flushed sidecar no longer matches the torn segment"
        );
        assert_eq!(store.get_raw("alpha"), Some(vec![1.0, 2.0]));
        assert_eq!(store.get_raw("beta"), None, "the torn frame is gone");
        // appends after repair are visible (not hidden behind garbage)
        store.append_raw("gamma", &[4.0]).unwrap();
        store.flush().unwrap();
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.repaired_bytes(), 0);
        assert_eq!(reopened.get_raw("gamma"), Some(vec![4.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_ends_the_scan_at_the_clean_prefix() {
        let dir = tmp("checksum");
        {
            let store = ShardedStore::create(&dir, 1).unwrap();
            store.append_raw("first", &[1.0]).unwrap();
            store.append_raw("second", &[2.0]).unwrap();
            store.flush().unwrap();
        }
        let seg = ShardedStore::segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a bit inside the second payload
        std::fs::write(&seg, &bytes).unwrap();
        let store = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.get_raw("first"), Some(vec![1.0]));
        assert_eq!(store.get_raw("second"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_non_segment_file_is_rejected_not_misread() {
        let dir = tmp("badheader");
        ShardedStore::create(&dir, 1).unwrap();
        std::fs::write(ShardedStore::segment_path(&dir, 0), b"not a segment").unwrap();
        assert!(ShardedStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber_and_open_refuses_garbage_manifests() {
        let dir = tmp("guard");
        ShardedStore::create(&dir, 2).unwrap();
        assert!(ShardedStore::create(&dir, 2).is_err());
        std::fs::write(ShardedStore::manifest_path(&dir), "{\"format\":\"other\"}").unwrap();
        assert!(ShardedStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_frames_and_keeps_the_data() {
        let dir = tmp("compact");
        let store = ShardedStore::create(&dir, 3).unwrap();
        for round in 0..4 {
            for i in 0..6 {
                store
                    .append_raw(&format!("cell-{i}"), &[round as f64, i as f64])
                    .unwrap();
            }
        }
        let before = store.entries();
        let report = store.compact().unwrap();
        assert_eq!(report.records_before, 24);
        assert_eq!(report.records_after, 6);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.entries(), before, "compaction preserves live cells");
        // the store still accepts appends after its handles were reset
        store.append_raw("cell-0", &[9.0]).unwrap();
        assert_eq!(store.get_raw("cell-0"), Some(vec![9.0]));
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.get_raw("cell-0"), Some(vec![9.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backend_stats_count_loads_hits_and_stores() {
        let dir = tmp("stats");
        let store = ShardedStore::create(&dir, 2).unwrap();
        assert_eq!(store.stats(), BackendStats::default());
        assert_eq!(store.get_raw("k"), None);
        store.append_raw("k", &[0.5]).unwrap();
        assert!(store.get_raw("k").is_some());
        let s = CellBackend::stats(&store);
        assert_eq!(s.loads, 2);
        assert_eq!(s.load_hits, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.read_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_keys_answer_from_the_existence_filter() {
        let dir = tmp("absent");
        let store = ShardedStore::create(&dir, 2).unwrap();
        store.append_raw("present", &[1.0]).unwrap();
        for i in 0..10 {
            assert_eq!(store.get_raw(&format!("absent-{i}")), None);
        }
        let reads = store.read_stats();
        assert_eq!(reads.filtered_absent, 10, "absent keys never touch disk");
        assert_eq!(reads.positioned_reads, 0);
        assert_eq!(reads.fallback_scans, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_fresh_sidecar_skips_the_open_time_scan() {
        let dir = tmp("sidecar");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("a", &[1.0]).unwrap();
            store.append_raw("b", &[2.0]).unwrap();
            store.flush().unwrap();
        }
        for shard in 0..2 {
            assert!(
                ShardedStore::index_path(&dir, shard).is_file(),
                "flush writes each shard's sidecar"
            );
        }
        let store = ShardedStore::open(&dir).unwrap();
        let reads = store.read_stats();
        assert_eq!(reads.sidecar_loads, 2, "both indexes loaded from sidecars");
        assert_eq!(reads.index_rebuilds, 0);
        assert_eq!(store.get_raw("a"), Some(vec![1.0]));
        assert_eq!(store.get_raw("b"), Some(vec![2.0]));
        for stat in store.segment_stats() {
            assert_eq!(stat.sidecar, SidecarState::Fresh);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_sidecars_rebuild_without_changing_answers() {
        let dir = tmp("sidecar_gone");
        {
            let store = ShardedStore::create(&dir, 2).unwrap();
            store.append_raw("a", &[1.0]).unwrap();
            store.flush().unwrap();
        }
        for shard in 0..2 {
            std::fs::remove_file(ShardedStore::index_path(&dir, shard)).unwrap();
        }
        let store = ShardedStore::open(&dir).unwrap();
        let reads = store.read_stats();
        assert_eq!(reads.sidecar_loads, 0);
        assert_eq!(reads.index_rebuilds, 2, "missing sidecars mean a rescan");
        assert_eq!(store.get_raw("a"), Some(vec![1.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupt_index_entry_falls_back_to_the_scan() {
        let dir = tmp("badindex");
        let store = ShardedStore::create(&dir, 1).unwrap();
        store.append_raw("victim", &[7.0]).unwrap();
        store.append_raw("other", &[8.0]).unwrap();
        // sabotage the in-memory index: point the victim's entry at a
        // nonsense location — the read must self-heal, not mis-answer
        {
            let mut s = store.core.state[0].lock();
            let digest = fnv1a(b"victim");
            s.index.insert(
                digest,
                FrameLoc {
                    offset: 99_999,
                    len: 40,
                },
            );
        }
        store.hot.clear();
        assert_eq!(store.get_raw("victim"), Some(vec![7.0]));
        let reads = store.read_stats();
        assert_eq!(reads.fallback_scans, 1, "the bad entry forced a scan");
        store.hot.clear();
        assert_eq!(
            store.get_raw("victim"),
            Some(vec![7.0]),
            "the scan rebuilt the index"
        );
        assert_eq!(store.read_stats().fallback_scans, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ratio_triggered_compaction_bounds_segment_growth() {
        let dir = tmp("autocompact");
        drop(ShardedStore::create(&dir, 1).unwrap());
        let store = ShardedStore::open_with(
            &dir,
            ShardOpenOptions {
                compact_ratio: Some(0.5),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(store.compact_ratio(), Some(0.5));
        store.append_raw("stable", &[0.5]).unwrap();
        for round in 0..50 {
            store.append_raw("churner", &[round as f64]).unwrap();
        }
        // compaction runs on the worker thread; settle it before
        // asserting on its effects
        store.drain_compactions();
        let reads = store.read_stats();
        assert!(
            reads.auto_compactions >= 1,
            "50 supersedes past ratio 0.5 must compact (got {reads:?})"
        );
        let stat = &store.segment_stats()[0];
        assert!(
            stat.frames < 40,
            "compaction bounds frame growth (got {} frames)",
            stat.frames
        );
        assert_eq!(store.get_raw("churner"), Some(vec![49.0]));
        assert_eq!(store.get_raw("stable"), Some(vec![0.5]));
        store.flush().unwrap();
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.get_raw("churner"), Some(vec![49.0]));
        assert_eq!(reopened.get_raw("stable"), Some(vec![0.5]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_refreshes_after_enough_appended_bytes_without_a_flush() {
        let dir = tmp("sidecar-refresh");
        drop(ShardedStore::create(&dir, 1).unwrap());
        let store = ShardedStore::open_with(
            &dir,
            ShardOpenOptions {
                sidecar_refresh_bytes: 64,
                ..Default::default()
            },
        )
        .unwrap();
        store.append_raw("first", &[1.0]).unwrap();
        store.append_raw("second", &[2.0]).unwrap();
        // two ~40-byte frames crossed the 64-byte threshold, so the
        // sidecar was rewritten inline — no flush() involved
        assert_eq!(store.segment_stats()[0].sidecar, SidecarState::Fresh);
        drop(store);
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(
            reopened.read_stats().sidecar_loads,
            1,
            "reopen skips the segment scan"
        );
        assert_eq!(reopened.get_raw("first"), Some(vec![1.0]));
        assert_eq!(reopened.get_raw("second"), Some(vec![2.0]));

        // the default threshold is far above a few tiny frames: the
        // sidecar goes stale on append and stays stale until flush
        let lazy_dir = tmp("sidecar-lazy");
        drop(ShardedStore::create(&lazy_dir, 1).unwrap());
        let lazy = ShardedStore::open(&lazy_dir).unwrap();
        lazy.append_raw("first", &[1.0]).unwrap();
        lazy.flush().unwrap();
        lazy.append_raw("second", &[2.0]).unwrap();
        assert_eq!(lazy.segment_stats()[0].sidecar, SidecarState::Stale);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&lazy_dir);
    }

    #[test]
    fn flush_stays_poisoned_after_a_failed_write_until_cleared() {
        let dir = tmp("poison");
        let store = ShardedStore::create(&dir, 1).unwrap();
        store.append_raw("ok", &[1.0]).unwrap();
        // swap the appender for a handle that cannot take bytes
        let Ok(full) = OpenOptions::new().write(true).open("/dev/full") else {
            eprintln!("skipping: /dev/full unavailable on this platform");
            return;
        };
        {
            let mut s = store.core.state[0].lock();
            s.appender = full;
        }
        assert!(store.append_raw("doomed", &[2.0]).is_err());
        assert!(store.flush().is_err(), "first flush reports the loss");
        assert!(
            store.flush().is_err(),
            "the store stays poisoned: every flush keeps reporting"
        );
        let err = store.clear_write_error().expect("the error is returned");
        assert!(!err.to_string().is_empty());
        // after explicit repair (and restoring a real handle) the
        // store flushes again
        {
            let mut s = store.core.state[0].lock();
            s.appender = OpenOptions::new()
                .append(true)
                .open(ShardedStore::segment_path(&dir, 0))
                .unwrap();
        }
        store.flush().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_errors_are_counted_and_reported_to_the_sink() {
        let dir = tmp("readerr");
        drop(ShardedStore::create(&dir, 1).unwrap());
        let store = ShardedStore::open_with_hot_slots(&dir, 1).unwrap();
        let sink = Arc::new(kc_core::MemorySink::new());
        ShardedStore::attach_sink(&store, sink.clone());
        store.append_raw("key", &[1.0]).unwrap();
        store.hot.clear();
        // break the read path: replace the segment with a directory
        // so the fallback scan's fs::read errors
        {
            let mut s = store.core.state[0].lock();
            s.index.insert(
                fnv1a(b"key"),
                FrameLoc {
                    offset: 50_000,
                    len: 40,
                },
            );
        }
        let seg = ShardedStore::segment_path(&dir, 0);
        std::fs::remove_file(&seg).unwrap();
        std::fs::create_dir(&seg).unwrap();
        assert_eq!(store.get_raw("key"), None, "a read error degrades to miss");
        assert_eq!(CellBackend::stats(&store).read_errors, 1);
        let events = sink.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::StoreReadError { key, .. } if key == "key")),
            "the error surfaced as telemetry, got {events:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecars_are_deterministic_and_round_trip() {
        let mut index = HashMap::new();
        index.insert(
            7u64,
            FrameLoc {
                offset: 12,
                len: 40,
            },
        );
        index.insert(
            3u64,
            FrameLoc {
                offset: 52,
                len: 24,
            },
        );
        let a = encode_sidecar(1, 100, 5, &index);
        let b = encode_sidecar(1, 100, 5, &index);
        assert_eq!(a, b, "sidecar bytes are deterministic");
        let dir = tmp("sidecar_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-001.idx");
        std::fs::write(&path, &a).unwrap();
        let (loaded, frames) = load_sidecar(&path, 1, 100).expect("fresh sidecar loads");
        assert_eq!(frames, 5);
        assert_eq!(loaded, index);
        assert!(
            load_sidecar(&path, 1, 101).is_none(),
            "a length mismatch means stale"
        );
        assert!(load_sidecar(&path, 2, 100).is_none(), "wrong shard");
        let mut torn = a.clone();
        torn[20] ^= 0xff;
        std::fs::write(&path, &torn).unwrap();
        assert!(load_sidecar(&path, 1, 100).is_none(), "checksum catches it");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
