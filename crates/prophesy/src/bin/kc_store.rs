//! `kc_store` — cell-store maintenance from the command line.
//!
//! ```text
//! kc_store convert SRC DST [--format {json,sharded}] [--shards N]
//! kc_store inspect SPEC
//! kc_store stat PATH
//! kc_store compact PATH
//! ```
//!
//! Store arguments are `kc_prophesy::StoreSpec`s: a bare PATH
//! (format auto-detected) or `sharded:PATH` / `json:PATH` to force
//! one.  `convert` copies every cell from one store into a freshly
//! created one (refusing to overwrite an existing DST).  The target
//! format is taken from DST's spec prefix or `--format` (a deprecated
//! alias for the prefix), or inferred as the opposite of SRC's —
//! converting is almost always a json↔sharded move.  Samples travel
//! as raw `f64` values through both formats, so convert is lossless:
//! `json → sharded → json` reproduces the original file byte for
//! byte.
//!
//! `inspect` prints a store's format, cell and sample counts, and
//! per-shard layout for sharded stores.  `stat` (alias `index`)
//! prints a sharded store's read-path view: per-shard frame counts,
//! live cells, superseded ratios and index-sidecar freshness.
//! `compact` rewrites a sharded store's segments with one record per
//! live cell, dropping superseded appends.

use kc_prophesy::{detect_format, open_store, CellBackend, ShardedStore, StoreFormat, StoreSpec};
use std::path::Path;
use std::sync::Arc;

fn usage_text() -> String {
    "usage: kc_store COMMAND ...\n\
     commands:\n\
     \x20 convert SRC DST [--format FORMAT] [--shards N]\n\
     \x20     copy every cell of the store at SRC into a new store at DST;\n\
     \x20     SRC/DST are PATH or 'sharded:PATH' / 'json:PATH' specs;\n\
     \x20     --format is a deprecated alias for DST's spec prefix\n\
     \x20     (default: the opposite of SRC's format),\n\
     \x20     --shards N sets the segment count of a sharded DST\n\
     \x20 inspect SPEC\n\
     \x20     print format, cell/sample counts and shard layout\n\
     \x20 stat PATH        (alias: index)\n\
     \x20     print a sharded store's per-shard frame counts, superseded\n\
     \x20     ratios and index-sidecar freshness\n\
     \x20 compact PATH\n\
     \x20     drop superseded records from a sharded store's segments\n"
        .to_string()
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    eprint!("{}", usage_text());
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Open an existing store or bail out (never creates).  A spec that
/// forces a format acts as an assertion against what is on disk.
fn open_existing(spec: &StoreSpec) -> Arc<dyn CellBackend> {
    if detect_format(&spec.path).is_none() {
        fail(format!("no cell store at {}", spec.path.display()));
    }
    spec.open()
        .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", spec.path.display())))
}

fn convert(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut format: Option<StoreFormat> = None;
    let mut shards: u32 = ShardedStore::DEFAULT_SHARDS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die("--format needs a value".into()));
                format = Some(v.parse().unwrap_or_else(|e: String| die(e)));
            }
            "--shards" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die("--shards needs a value".into()));
                shards = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die(format!("bad --shards value '{v}'")));
            }
            flag if flag.starts_with('-') => die(format!("unknown flag '{flag}'")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [src, dst] = positional[..] else {
        die("convert needs SRC and DST".into());
    };
    let src: StoreSpec = src.parse().unwrap_or_else(|e: String| die(e));
    let mut dst: StoreSpec = dst.parse().unwrap_or_else(|e: String| die(e));
    if let Some(f) = format {
        eprintln!("warning: --format is deprecated; spell the spec as {f}:PATH");
        dst = dst.with_legacy_format(f).unwrap_or_else(|e| die(e));
    }
    if detect_format(&dst.path).is_some() {
        fail(format!(
            "{} already holds a store; convert refuses to overwrite",
            dst.path.display()
        ));
    }
    let source = open_existing(&src);
    let target_format = dst.format.unwrap_or(match source.format() {
        StoreFormat::Json => StoreFormat::Sharded,
        StoreFormat::Sharded => StoreFormat::Json,
    });
    let dst = dst.path;
    let target: Arc<dyn CellBackend> = match target_format {
        StoreFormat::Sharded => Arc::new(
            ShardedStore::create(&dst, shards)
                .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dst.display()))),
        ),
        StoreFormat::Json => open_store(&dst, Some(StoreFormat::Json))
            .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dst.display()))),
    };
    let entries = source.entries();
    let cells = entries.len();
    for (key, samples) in entries {
        target
            .append_raw(&key, &samples)
            .unwrap_or_else(|e| fail(format!("append to {} failed: {e}", dst.display())));
    }
    target
        .flush()
        .unwrap_or_else(|e| fail(format!("flush of {} failed: {e}", dst.display())));
    println!(
        "converted {cells} cells: {} ({}) -> {} ({target_format})",
        src.path.display(),
        source.format(),
        dst.display()
    );
}

fn inspect(spec: &StoreSpec) {
    let store = open_existing(spec);
    let path = spec.path.as_path();
    let entries = store.entries();
    let samples: usize = entries.iter().map(|(_, s)| s.len()).sum();
    println!("path:    {}", path.display());
    println!("format:  {}", store.format());
    println!("cells:   {}", entries.len());
    println!("samples: {samples}");
    if store.format() == StoreFormat::Sharded {
        let sharded = ShardedStore::open(path)
            .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", path.display())));
        println!("shards:  {}", sharded.shards());
        if sharded.repaired_bytes() > 0 {
            println!(
                "repaired: {} torn-tail bytes truncated",
                sharded.repaired_bytes()
            );
        }
        let mut per_shard = vec![0usize; sharded.shards() as usize];
        for (key, _) in &entries {
            let digest = kc_prophesy::sharded::fnv1a_digest(key);
            per_shard[(digest % sharded.shards() as u64) as usize] += 1;
        }
        for (i, n) in per_shard.iter().enumerate() {
            println!("  shard {i:3}: {n} cells");
        }
    }
}

fn stat(path: &Path) {
    if detect_format(path) != Some(StoreFormat::Sharded) {
        fail(format!(
            "{} is not a sharded store (stat reads segment indexes)",
            path.display()
        ));
    }
    let store = ShardedStore::open(path)
        .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", path.display())));
    let stats = store.segment_stats();
    let reads = store.read_stats();
    println!("path:    {}", path.display());
    println!("shards:  {}", store.shards());
    println!(
        "indexes: {} loaded from sidecars, {} rebuilt by scan",
        reads.sidecar_loads, reads.index_rebuilds
    );
    println!("  shard   bytes  frames    live  superseded  sidecar");
    let mut frames = 0u64;
    let mut live = 0u64;
    let mut bytes = 0u64;
    for s in &stats {
        println!(
            "  {:5} {:7} {:7} {:7}  {:4} ({:4.0}%)  {}",
            s.shard,
            s.bytes,
            s.frames,
            s.live,
            s.superseded(),
            100.0 * s.superseded_ratio(),
            s.sidecar
        );
        frames += s.frames;
        live += s.live;
        bytes += s.bytes;
    }
    let superseded = frames.saturating_sub(live);
    let ratio = if frames == 0 {
        0.0
    } else {
        superseded as f64 / frames as f64
    };
    println!(
        "total:   {bytes} bytes, {frames} frames, {live} live, \
         {superseded} superseded ({:.0}% superseded ratio)",
        100.0 * ratio
    );
}

fn compact(path: &Path) {
    if detect_format(path) != Some(StoreFormat::Sharded) {
        fail(format!(
            "{} is not a sharded store (only sharded stores compact)",
            path.display()
        ));
    }
    let store = ShardedStore::open(path)
        .unwrap_or_else(|e| fail(format!("cannot open {}: {e}", path.display())));
    let report = store
        .compact()
        .unwrap_or_else(|e| fail(format!("compaction failed: {e}")));
    println!(
        "compacted {}: {} -> {} records, {} -> {} bytes",
        path.display(),
        report.records_before,
        report.records_after,
        report.bytes_before,
        report.bytes_after
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") => print!("{}", usage_text()),
        Some("convert") => convert(&args[1..]),
        Some("inspect") => match &args[1..] {
            [spec] => inspect(&spec.parse().unwrap_or_else(|e: String| die(e))),
            _ => die("inspect needs exactly one store spec".into()),
        },
        Some("stat") | Some("index") => match &args[1..] {
            [path] => stat(Path::new(path)),
            _ => die("stat needs exactly one PATH".into()),
        },
        Some("compact") => match &args[1..] {
            [path] => compact(Path::new(path)),
            _ => die("compact needs exactly one PATH".into()),
        },
        Some(other) => die(format!("unknown command '{other}'")),
        None => die("a command is required".into()),
    }
}
