//! The lossy hot tier: a fixed-size open-addressing cache over cell
//! samples where a colliding insert simply **overwrites** the slot.
//!
//! The idiom comes from leaky task caches in BDD libraries: a
//! bounded, single-probe table beats an unbounded hash map on the hot
//! path because it never rehashes, never allocates after
//! construction, and touches exactly one cache line's worth of
//! metadata per probe.  The price is that two keys whose digests land
//! in the same slot evict each other — which is *safe* here, because
//! [`crate::ShardedStore`] treats the tier as a cache only: a miss
//! falls back to the shard's frame index (one positioned read of the
//! key's latest frame, or a filtered "absent" with no I/O at all), so
//! correctness never depends on residency.
//!
//! Probing is deliberately single-slot (no chains, no Robin Hood):
//! the whole point of the lossy design is that a lookup costs one
//! digest, one mask, one lock, one compare.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One resident cell: the full key text guards against digest
/// collisions (equal digests with different keys read as a miss, not
/// as wrong samples).
#[derive(Debug)]
struct HotEntry {
    digest: u64,
    key: String,
    samples: Vec<f64>,
}

/// Traffic counters of a [`HotTier`], all monotonic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotTierStats {
    /// Probes answered from a resident entry.
    pub hits: u64,
    /// Probes that found an empty or foreign slot.
    pub misses: u64,
    /// Inserts into an empty slot or over the same key.
    pub inserts: u64,
    /// Inserts that overwrote a *different* resident key (the lossy
    /// collision case).
    pub evictions: u64,
}

/// A fixed-size, overwrite-on-collision cache from cell-key digests
/// to sample vectors.
///
/// Thread safety is per-slot: concurrent probes of different slots
/// never contend, and a probe of a slot being overwritten sees either
/// the old or the new entry, both of which are valid cells.
#[derive(Debug)]
pub struct HotTier {
    slots: Vec<Mutex<Option<HotEntry>>>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl HotTier {
    /// A tier with at least `capacity` slots (rounded up to a power
    /// of two, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            mask: cap - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of resident entries (counts locked slots one by one; a
    /// diagnostic, not a hot-path call).
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().is_some()).count()
    }

    /// The resident samples for `key`, if its slot holds exactly this
    /// key.
    pub fn get(&self, digest: u64, key: &str) -> Option<Vec<f64>> {
        let slot = self.slots[digest as usize & self.mask].lock();
        match slot.as_ref() {
            Some(e) if e.digest == digest && e.key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.samples.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Make `key` resident, overwriting whatever held its slot.
    pub fn insert(&self, digest: u64, key: &str, samples: &[f64]) {
        let mut slot = self.slots[digest as usize & self.mask].lock();
        if matches!(slot.as_ref(), Some(e) if e.key != key) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        *slot = Some(HotEntry {
            digest,
            key: key.to_string(),
            samples: samples.to_vec(),
        });
    }

    /// Drop every resident entry (counters are kept).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock() = None;
        }
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> HotTierStats {
        HotTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(HotTier::new(0).capacity(), 1);
        assert_eq!(HotTier::new(5).capacity(), 8);
        assert_eq!(HotTier::new(8).capacity(), 8);
    }

    #[test]
    fn hit_miss_and_overwrite_semantics() {
        let tier = HotTier::new(4);
        assert_eq!(tier.get(1, "a"), None);
        tier.insert(1, "a", &[1.0, 2.0]);
        assert_eq!(tier.get(1, "a"), Some(vec![1.0, 2.0]));
        assert_eq!(tier.resident(), 1);

        // same slot (digest 1 and 5 collide mod 4), different key:
        // the newcomer overwrites, the old key becomes a miss
        tier.insert(5, "b", &[3.0]);
        assert_eq!(tier.get(5, "b"), Some(vec![3.0]));
        assert_eq!(tier.get(1, "a"), None, "lossy eviction on collision");
        assert_eq!(tier.resident(), 1);

        let s = tier.stats();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn equal_digest_different_key_is_a_miss_not_a_wrong_answer() {
        let tier = HotTier::new(2);
        tier.insert(7, "left", &[1.5]);
        // a digest collision with a different key text must never
        // serve the other key's samples
        assert_eq!(tier.get(7, "right"), None);
        assert_eq!(tier.get(7, "left"), Some(vec![1.5]));
    }

    #[test]
    fn clear_empties_the_tier() {
        let tier = HotTier::new(4);
        tier.insert(0, "x", &[1.0]);
        tier.insert(1, "y", &[2.0]);
        tier.clear();
        assert_eq!(tier.resident(), 0);
        assert_eq!(tier.get(0, "x"), None);
    }
}
