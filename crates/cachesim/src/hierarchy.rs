//! Multi-level cache hierarchies.

use crate::counts::{AccessCounts, MAX_LEVELS};
use crate::region::Span;
use crate::setassoc::SetAssocCache;
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Build the cache level this config describes.
    pub fn build(&self) -> SetAssocCache {
        SetAssocCache::new(self.capacity, self.line, self.ways)
    }
}

/// A stack of cache levels in front of main memory.
///
/// Requests walk the levels in order; a miss at level *i* is forwarded
/// to level *i + 1* (and installed at every level on the way back —
/// an inclusive hierarchy, like the paper-era P2SC/SP nodes).
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    levels: Vec<SetAssocCache>,
    /// Line size used to chop spans into line requests (the L1 line).
    line: u64,
    totals: AccessCounts,
}

impl CacheHierarchy {
    /// Build a hierarchy from level configs, ordered L1 first.
    ///
    /// # Panics
    /// If there are no levels, more than [`MAX_LEVELS`], capacities are
    /// not strictly increasing, or line sizes differ between levels
    /// (mixed line sizes complicate inclusion and the P2SC-era machines
    /// we model don't need them).
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        assert!(
            configs.len() <= MAX_LEVELS,
            "at most {MAX_LEVELS} levels supported"
        );
        for w in configs.windows(2) {
            assert!(
                w[0].capacity < w[1].capacity,
                "cache capacities must strictly increase"
            );
            assert_eq!(w[0].line, w[1].line, "all levels must share one line size");
        }
        let line = configs[0].line as u64;
        Self {
            levels: configs.iter().map(CacheConfig::build).collect(),
            line,
            totals: AccessCounts::zero(),
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.line as usize
    }

    /// Capacity of level `i` in bytes.
    pub fn capacity(&self, level: usize) -> usize {
        self.levels[level].capacity()
    }

    /// Running totals over every touch since construction/reset.
    pub fn totals(&self) -> AccessCounts {
        self.totals
    }

    /// Access one line by byte address, returning the level that served
    /// it (`depth()` means main memory).
    pub fn access_line(&mut self, addr: u64) -> usize {
        let mut served = self.levels.len();
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                served = i;
                break;
            }
        }
        if served < self.levels.len() {
            self.totals.record_hit(served);
        } else {
            self.totals.record_memory();
        }
        served
    }

    /// Touch every line of `span`, returning where the lines were
    /// served.
    pub fn touch(&mut self, span: Span) -> AccessCounts {
        let mut counts = AccessCounts::zero();
        if span.bytes == 0 {
            return counts;
        }
        let first = span.addr / self.line;
        let last = (span.addr + span.bytes - 1) / self.line;
        for l in first..=last {
            let served = self.access_line(l * self.line);
            if served < self.levels.len() {
                counts.record_hit(served);
            } else {
                counts.record_memory();
            }
        }
        counts
    }

    /// Touch a strided sequence: `count` elements of `elem` bytes
    /// separated by `stride` bytes starting at `span.addr`.  Used for
    /// pencil accesses along non-contiguous dimensions.
    pub fn touch_strided(
        &mut self,
        start: u64,
        stride: u64,
        elem: u64,
        count: u64,
    ) -> AccessCounts {
        let mut counts = AccessCounts::zero();
        for n in 0..count {
            counts += self.touch(Span {
                addr: start + n * stride,
                bytes: elem,
            });
        }
        counts
    }

    /// Invalidate every level (cold caches) without clearing totals.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Invalidate every level and clear totals.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.totals = AccessCounts::zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionMap;

    fn two_level() -> CacheHierarchy {
        CacheHierarchy::new(vec![
            CacheConfig {
                capacity: 8 * 128,
                line: 128,
                ways: 8,
            },
            CacheConfig {
                capacity: 64 * 128,
                line: 128,
                ways: 8,
            },
        ])
    }

    #[test]
    fn l1_then_l2_service() {
        let mut h = two_level();
        let mut m = RegionMap::new();
        // 16 lines: fits L2 (64 lines) but not L1 (8 lines)
        let a = m.register("a", 16 * 128);
        let c0 = h.touch(m.whole(a));
        assert_eq!(c0.misses_to_memory(), 16);
        let c1 = h.touch(m.whole(a));
        assert_eq!(c1.misses_to_memory(), 0);
        // streaming 16 lines through an 8-line L1 leaves no reusable L1
        // residue, so the second pass is served by L2
        assert_eq!(c1.hits_at(1), 16);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut h = two_level();
        let mut m = RegionMap::new();
        let a = m.register("a", 4 * 128);
        h.touch(m.whole(a));
        let c = h.touch(m.whole(a));
        assert_eq!(c.hits_at(0), 4);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn spill_to_memory_beyond_l2() {
        let mut h = two_level();
        let mut m = RegionMap::new();
        let a = m.register("a", 128 * 128); // 128 lines > 64-line L2
        h.touch(m.whole(a));
        let c = h.touch(m.whole(a));
        assert!(
            c.misses_to_memory() > 0,
            "working set exceeds L2, must stream from memory"
        );
    }

    #[test]
    fn strided_touch_counts_distinct_lines() {
        let mut h = two_level();
        // 4 elements of 8 bytes, 256 bytes apart: 4 distinct lines
        let c = h.touch_strided(0, 256, 8, 4);
        assert_eq!(c.total(), 4);
        assert_eq!(c.misses_to_memory(), 4);
    }

    #[test]
    fn empty_span_is_free() {
        let mut h = two_level();
        let c = h.touch(Span { addr: 0, bytes: 0 });
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn span_straddling_line_boundary_touches_both() {
        let mut h = two_level();
        let c = h.touch(Span {
            addr: 120,
            bytes: 16,
        });
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn flush_forces_cold_misses() {
        let mut h = two_level();
        let mut m = RegionMap::new();
        let a = m.register("a", 4 * 128);
        h.touch(m.whole(a));
        h.flush();
        let c = h.touch(m.whole(a));
        assert_eq!(c.misses_to_memory(), 4);
    }

    #[test]
    fn totals_accumulate() {
        let mut h = two_level();
        let mut m = RegionMap::new();
        let a = m.register("a", 2 * 128);
        h.touch(m.whole(a));
        h.touch(m.whole(a));
        assert_eq!(h.totals().total(), 4);
    }

    #[test]
    #[should_panic]
    fn non_increasing_capacities_panic() {
        CacheHierarchy::new(vec![
            CacheConfig {
                capacity: 1024,
                line: 128,
                ways: 8,
            },
            CacheConfig {
                capacity: 1024,
                line: 128,
                ways: 8,
            },
        ]);
    }
}
