//! Per-level access accounting.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Maximum number of cache levels a hierarchy may have.
pub const MAX_LEVELS: usize = 4;

/// Counts of cache-line requests served at each level of a hierarchy.
///
/// `hits[0]` is the number of lines served by L1, `hits[1]` by L2, …;
/// `memory` is the number that missed every level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Lines served at each cache level (index 0 = L1).
    pub hits: [u64; MAX_LEVELS],
    /// Lines served by main memory.
    pub memory: u64,
}

impl AccessCounts {
    /// All-zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total lines requested.
    pub fn total(&self) -> u64 {
        self.hits.iter().sum::<u64>() + self.memory
    }

    /// Lines served at cache level `level` (0-based).
    pub fn hits_at(&self, level: usize) -> u64 {
        self.hits[level]
    }

    /// Lines that had to go to main memory.
    pub fn misses_to_memory(&self) -> u64 {
        self.memory
    }

    /// Record one line served at cache level `level`.
    pub fn record_hit(&mut self, level: usize) {
        self.hits[level] += 1;
    }

    /// Record one line served by memory.
    pub fn record_memory(&mut self) {
        self.memory += 1;
    }

    /// Fraction of requests that were L1 hits (0 if no requests).
    pub fn l1_hit_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.hits[0] as f64 / t as f64
        }
    }
}

impl Add for AccessCounts {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.hits.iter_mut().zip(rhs.hits) {
            *a += b;
        }
        self.memory += rhs.memory;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let mut c = AccessCounts::zero();
        for _ in 0..3 {
            c.record_hit(0);
        }
        c.record_hit(1);
        c.record_memory();
        assert_eq!(c.total(), 5);
        assert_eq!(c.hits_at(0), 3);
        assert_eq!(c.hits_at(1), 1);
        assert_eq!(c.misses_to_memory(), 1);
        assert!((c.l1_hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(AccessCounts::zero().l1_hit_rate(), 0.0);
    }

    #[test]
    fn addition() {
        let mut a = AccessCounts::zero();
        a.record_hit(0);
        let mut b = AccessCounts::zero();
        b.record_memory();
        let c = a + b;
        assert_eq!(c.total(), 2);
        assert_eq!(c.misses_to_memory(), 1);
    }
}
