//! # kc-cachesim
//!
//! A small, deterministic, multi-level set-associative cache simulator.
//!
//! The kernel-coupling paper attributes the *regimes* its coupling
//! values move through to the memory subsystem of the IBM SP's P2SC
//! processors: per-processor working sets that fit in L1 behave
//! differently from ones that fit only in L2 or spill to memory, and
//! the coupling between adjacent kernels changes accordingly (data one
//! kernel loads may still be resident when the next kernel runs —
//! constructive coupling — or kernels may evict each other's data —
//! destructive coupling).
//!
//! `kc-machine` gives every simulated rank its own [`CacheHierarchy`];
//! the NPB kernels in `kc-npb` describe their memory traffic as *region
//! touches* (array slices identified by a [`RegionId`] plus a byte
//! range), and the hierarchy reports at which level each cache line was
//! served.  The machine model then converts those counts into stall
//! time.
//!
//! The simulator is timing-free by design: it only counts.  That keeps
//! it reusable and easy to property-test (e.g. the LRU inclusion
//! property: growing a cache's associativity at fixed set count never
//! increases misses).
//!
//! ```
//! use kc_cachesim::{CacheConfig, CacheHierarchy, RegionMap};
//!
//! let mut map = RegionMap::new();
//! let a = map.register("a", 64 * 1024);
//! let _b = map.register("b", 64 * 1024);
//! let mut h = CacheHierarchy::new(vec![
//!     CacheConfig { capacity: 32 * 1024, line: 128, ways: 4 },
//!     CacheConfig { capacity: 1024 * 1024, line: 128, ways: 8 },
//! ]);
//! // stream region `a` twice: the second pass is served by L2
//! // (the region is 64 KiB, L1 only 32 KiB)
//! h.touch(map.span(a, 0, 64 * 1024));
//! let c = h.touch(map.span(a, 0, 64 * 1024));
//! assert_eq!(c.misses_to_memory(), 0);
//! assert!(c.hits_at(1) > 0);
//! ```

pub mod contention;
pub mod counts;
pub mod hierarchy;
pub mod region;
pub mod reuse_distance;
pub mod setassoc;

pub use contention::derate_shared_llc;
pub use counts::AccessCounts;
pub use hierarchy::{CacheConfig, CacheHierarchy};
pub use region::{RegionId, RegionMap, Span};
pub use reuse_distance::ReuseDistance;
pub use setassoc::SetAssocCache;
