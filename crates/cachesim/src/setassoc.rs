//! A single set-associative cache level with true-LRU replacement.

/// One set-associative cache with LRU replacement.
///
/// Addresses are plain byte addresses in a flat 64-bit space; the
/// [`crate::region::RegionMap`] hands out non-overlapping region base
/// addresses so different arrays never alias.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    line: u64,
    line_shift: u32,
    sets: usize,
    ways: usize,
    /// `sets * ways` tag slots; within a set, index 0 is most recently
    /// used.  `u64::MAX` marks an empty slot.
    slots: Vec<u64>,
    accesses: u64,
    misses: u64,
}

const EMPTY: u64 = u64::MAX;

impl SetAssocCache {
    /// Create a cache of `capacity` bytes with the given line size and
    /// associativity.
    ///
    /// # Panics
    /// If `line` is not a power of two, or if `capacity` is not an
    /// exact multiple of `line * ways`.
    pub fn new(capacity: usize, line: usize, ways: usize) -> Self {
        assert!(
            line.is_power_of_two(),
            "cache line size must be a power of two"
        );
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity / line;
        assert!(
            lines > 0 && lines.is_multiple_of(ways) && lines * line == capacity,
            "capacity {capacity} not a multiple of line {line} x ways {ways}"
        );
        let sets = lines / ways;
        Self {
            line: line as u64,
            line_shift: line.trailing_zeros(),
            sets,
            ways,
            slots: vec![EMPTY; lines],
            accesses: 0,
            misses: 0,
        }
    }

    /// A fully-associative cache of `capacity` bytes.
    pub fn fully_associative(capacity: usize, line: usize) -> Self {
        let ways = capacity / line;
        Self::new(capacity, line, ways)
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(&self) -> usize {
        self.line as usize
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line as usize
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total accesses so far.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Access the line containing byte address `addr`; returns `true`
    /// on a hit.  On a miss the line is installed, evicting the set's
    /// LRU line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let tag = addr >> self.line_shift;
        let set = (tag % self.sets as u64) as usize;
        let base = set * self.ways;
        let set_slots = &mut self.slots[base..base + self.ways];
        match set_slots.iter().position(|&t| t == tag) {
            Some(0) => true,
            Some(pos) => {
                // promote to MRU
                set_slots[..=pos].rotate_right(1);
                true
            }
            None => {
                self.misses += 1;
                set_slots.rotate_right(1);
                set_slots[0] = tag;
                false
            }
        }
    }

    /// Whether the line containing `addr` is currently resident
    /// (does not update LRU state or counters).
    pub fn probe(&self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        let set = (tag % self.sets as u64) as usize;
        let base = set * self.ways;
        self.slots[base..base + self.ways].contains(&tag)
    }

    /// Invalidate all contents and reset statistics.
    pub fn reset(&mut self) {
        self.slots.fill(EMPTY);
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidate contents but keep statistics (a "cache flush").
    pub fn flush(&mut self) {
        self.slots.fill(EMPTY);
    }

    /// Number of distinct lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|&&t| t != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(1024, 64, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways, 64-byte lines
        let mut c = SetAssocCache::new(128, 64, 2);
        c.access(0); // A
        c.access(64); // B  (LRU: A)
        c.access(0); // A hit (LRU: B)
        c.access(128); // C evicts B
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn set_mapping_avoids_cross_set_eviction() {
        // 2 sets, 1 way: lines 0 and 1 map to different sets
        let mut c = SetAssocCache::new(128, 64, 1);
        c.access(0);
        c.access(64);
        assert!(c.probe(0));
        assert!(c.probe(64));
        // line 2 maps to set 0, evicting line 0
        c.access(128);
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn fully_associative_capacity_behaviour() {
        let mut c = SetAssocCache::fully_associative(4 * 64, 64);
        for i in 0..4u64 {
            c.access(i * 64);
        }
        // all resident
        for i in 0..4u64 {
            assert!(c.probe(i * 64));
        }
        // fifth line evicts the LRU (line 0)
        c.access(4 * 64);
        assert!(!c.probe(0));
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn flush_keeps_stats_reset_clears_them() {
        let mut c = SetAssocCache::new(1024, 64, 4);
        c.access(0);
        c.flush();
        assert_eq!(c.misses(), 1);
        assert!(!c.probe(0));
        c.reset();
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = SetAssocCache::fully_associative(64 * 64, 64);
        for pass in 0..3 {
            let miss_before = c.misses();
            for i in 0..64u64 {
                c.access(i * 64);
            }
            if pass > 0 {
                assert_eq!(c.misses(), miss_before, "pass {pass} should be all hits");
            }
        }
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        SetAssocCache::new(1000, 64, 4);
    }
}
