//! Reuse-distance (LRU stack distance) analysis.
//!
//! The reuse distance of an access is the number of *distinct* cache
//! lines touched since the previous access to the same line (∞ for
//! first touches).  Its histogram characterizes a workload's locality
//! independently of any particular cache: a fully-associative LRU
//! cache of `C` lines hits exactly the accesses with distance `< C`.
//! That makes the histogram the natural tool for *predicting* the
//! coupling regime transitions the paper ties to the memory subsystem:
//! where the distance mass sits relative to L1/L2 capacities tells you
//! which regime a kernel (or kernel chain) occupies before running any
//! timing experiment.
//!
//! The implementation is the classic balanced-tree stack algorithm
//! (O(log n) per access) over a splay-free BTree of timestamps.

use std::collections::{BTreeMap, HashMap};

/// Accumulates an access stream and produces the reuse-distance
/// histogram.
#[derive(Clone, Debug, Default)]
pub struct ReuseDistance {
    /// line -> logical time of its last access
    last_access: HashMap<u64, u64>,
    /// set of "last access" timestamps currently live, ordered
    live: BTreeMap<u64, ()>,
    clock: u64,
    /// histogram: distance -> count (cold misses recorded separately)
    histogram: HashMap<u64, u64>,
    cold: u64,
}

impl ReuseDistance {
    /// An empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access to `line` (an opaque line identifier) and
    /// return its reuse distance, or `None` for a cold (first) access.
    pub fn access(&mut self, line: u64) -> Option<u64> {
        self.clock += 1;
        let now = self.clock;
        let dist = match self.last_access.insert(line, now) {
            None => {
                self.cold += 1;
                None
            }
            Some(prev) => {
                // distance = number of live timestamps greater than prev
                let d = self.live.range((prev + 1)..).count() as u64;
                self.live.remove(&prev);
                *self.histogram.entry(d).or_insert(0) += 1;
                Some(d)
            }
        };
        self.live.insert(now, ());
        dist
    }

    /// Record a sequential range of lines.
    pub fn access_range(&mut self, first_line: u64, lines: u64) {
        for l in first_line..first_line + lines {
            self.access(l);
        }
    }

    /// Number of cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Total accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.clock
    }

    /// The raw histogram (distance → count), cold misses excluded.
    pub fn histogram(&self) -> &HashMap<u64, u64> {
        &self.histogram
    }

    /// Number of accesses with finite reuse distance `< capacity`
    /// lines — i.e. hits in a fully-associative LRU cache of that many
    /// lines.
    pub fn hits_under(&self, capacity_lines: u64) -> u64 {
        self.histogram
            .iter()
            .filter(|(d, _)| **d < capacity_lines)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Predicted miss ratio of a fully-associative LRU cache with
    /// `capacity_lines` lines on this trace.
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        1.0 - self.hits_under(capacity_lines) as f64 / self.clock as f64
    }

    /// The smallest capacity (in lines) achieving at least
    /// `target_hit_ratio` of the warm accesses — "how much cache does
    /// this working set want".
    pub fn capacity_for_hit_ratio(&self, target_hit_ratio: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&target_hit_ratio));
        let warm: u64 = self.histogram.values().sum();
        if warm == 0 {
            return None;
        }
        let mut dists: Vec<(u64, u64)> = self.histogram.iter().map(|(d, c)| (*d, *c)).collect();
        dists.sort_unstable();
        let mut acc = 0u64;
        for (d, c) in dists {
            acc += c;
            if acc as f64 / warm as f64 >= target_hit_ratio {
                return Some(d + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setassoc::SetAssocCache;

    #[test]
    fn cold_and_repeat_accesses() {
        let mut rd = ReuseDistance::new();
        assert_eq!(rd.access(1), None);
        assert_eq!(rd.access(1), Some(0));
        assert_eq!(rd.access(2), None);
        assert_eq!(rd.access(1), Some(1));
        assert_eq!(rd.cold_misses(), 2);
        assert_eq!(rd.total_accesses(), 4);
    }

    #[test]
    fn cyclic_scan_has_distance_n_minus_one() {
        // scanning N lines repeatedly: every warm access has distance N-1
        let n = 16u64;
        let mut rd = ReuseDistance::new();
        for _ in 0..3 {
            rd.access_range(0, n);
        }
        assert_eq!(rd.cold_misses(), n);
        assert_eq!(*rd.histogram().get(&(n - 1)).unwrap(), 2 * n);
        // an LRU cache of exactly N lines captures the scan; N-1 does not
        assert_eq!(rd.hits_under(n), 2 * n);
        assert_eq!(rd.hits_under(n - 1), 0);
    }

    #[test]
    fn matches_fully_associative_simulation() {
        // the fundamental theorem: hits_under(C) == hits of a
        // fully-associative LRU cache with C lines, on any trace
        let trace: Vec<u64> = (0..500u64)
            .map(|i| {
                // a mix of streaming and hot lines
                if i % 3 == 0 {
                    i % 7
                } else {
                    (i * 13) % 97
                }
            })
            .collect();
        for cap_lines in [4u64, 16, 64] {
            let mut rd = ReuseDistance::new();
            let mut cache = SetAssocCache::fully_associative((cap_lines * 64) as usize, 64);
            let mut sim_hits = 0u64;
            for &l in &trace {
                rd.access(l);
                if cache.access(l * 64) {
                    sim_hits += 1;
                }
            }
            assert_eq!(
                rd.hits_under(cap_lines),
                sim_hits,
                "capacity {cap_lines} lines: stack distance vs simulation"
            );
        }
    }

    #[test]
    fn miss_ratio_and_capacity_queries() {
        let mut rd = ReuseDistance::new();
        for _ in 0..10 {
            rd.access_range(0, 8);
        }
        // 8 cold + 72 warm at distance 7
        assert!((rd.miss_ratio(8) - 8.0 / 80.0).abs() < 1e-12);
        assert_eq!(rd.capacity_for_hit_ratio(1.0), Some(8));
        assert_eq!(rd.capacity_for_hit_ratio(0.5), Some(8));
    }

    #[test]
    fn empty_trace_edge_cases() {
        let rd = ReuseDistance::new();
        assert_eq!(rd.miss_ratio(64), 0.0);
        assert_eq!(rd.capacity_for_hit_ratio(0.9), None);
    }
}
