//! Named memory regions and byte spans.
//!
//! Kernels do not hand raw pointers to the simulator; they register
//! each logical array (the solution field `u`, the right-hand side
//! `rhs`, solver coefficient planes, …) as a *region* and then touch
//! byte spans of it.  The [`RegionMap`] assigns non-overlapping base
//! addresses, page-aligned so regions never share a cache line.

use serde::{Deserialize, Serialize};

/// Identifier of a registered region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// A byte span inside the flat simulated address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Absolute start address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

/// Alignment for region base addresses (a 4 KiB "page").
const REGION_ALIGN: u64 = 4096;

#[derive(Clone, Debug, Default)]
struct RegionInfo {
    name: String,
    base: u64,
    size: u64,
}

/// Allocator of non-overlapping simulated address ranges.
#[derive(Clone, Debug, Default)]
pub struct RegionMap {
    regions: Vec<RegionInfo>,
    next: u64,
}

impl RegionMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region of `size` bytes under `name`; returns its id.
    pub fn register(&mut self, name: &str, size: usize) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        let base = self.next;
        let padded = (size as u64).div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.regions.push(RegionInfo {
            name: name.to_string(),
            base,
            size: size as u64,
        });
        self.next = base + padded.max(REGION_ALIGN);
        id
    }

    /// Name of a region.
    pub fn name(&self, id: RegionId) -> &str {
        &self.regions[id.0 as usize].name
    }

    /// Registered size of a region in bytes.
    pub fn size(&self, id: RegionId) -> usize {
        self.regions[id.0 as usize].size as usize
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// A byte span covering `[offset, offset + bytes)` of region `id`.
    ///
    /// # Panics
    /// If the span overruns the registered region size.
    pub fn span(&self, id: RegionId, offset: usize, bytes: usize) -> Span {
        let info = &self.regions[id.0 as usize];
        assert!(
            (offset + bytes) as u64 <= info.size,
            "span [{offset}, {}) overruns region '{}' of {} bytes",
            offset + bytes,
            info.name,
            info.size
        );
        Span {
            addr: info.base + offset as u64,
            bytes: bytes as u64,
        }
    }

    /// The whole region as one span.
    pub fn whole(&self, id: RegionId) -> Span {
        let info = &self.regions[id.0 as usize];
        Span {
            addr: info.base,
            bytes: info.size,
        }
    }

    /// Total footprint (sum of registered sizes, without padding).
    pub fn total_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.size as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut m = RegionMap::new();
        let a = m.register("a", 1000);
        let b = m.register("b", 5000);
        let sa = m.whole(a);
        let sb = m.whole(b);
        assert!(sa.addr + sa.bytes <= sb.addr);
    }

    #[test]
    fn bases_are_page_aligned() {
        let mut m = RegionMap::new();
        let _ = m.register("a", 1);
        let b = m.register("b", 10);
        assert_eq!(m.whole(b).addr % REGION_ALIGN, 0);
    }

    #[test]
    fn span_offsets() {
        let mut m = RegionMap::new();
        let a = m.register("a", 4096);
        let s = m.span(a, 128, 256);
        assert_eq!(s.addr, m.whole(a).addr + 128);
        assert_eq!(s.bytes, 256);
    }

    #[test]
    #[should_panic]
    fn overrun_panics() {
        let mut m = RegionMap::new();
        let a = m.register("a", 100);
        m.span(a, 50, 51);
    }

    #[test]
    fn metadata() {
        let mut m = RegionMap::new();
        let a = m.register("u", 123);
        assert_eq!(m.name(a), "u");
        assert_eq!(m.size(a), 123);
        assert_eq!(m.len(), 1);
        assert_eq!(m.total_bytes(), 123);
    }
}
