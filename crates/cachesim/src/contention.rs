//! Shared-cache contention accounting.
//!
//! Multicore nodes share their last-level cache between the ranks
//! co-resident on the node.  The classic capacity model (Afzal /
//! Hager / Wellein's overlapping memory-bound kernels, and the ECM
//! model Kerncraft implements) splits the shared level's capacity
//! evenly across the sharers: a rank on a 4-core node with a 4 MiB
//! LLC effectively sees a 1 MiB LLC.  This module derives the
//! *effective* per-rank hierarchy a co-scheduled rank observes, so
//! the timing-free simulator in [`crate::hierarchy`] can stay
//! oblivious to how many neighbours a rank has.
//!
//! The derated capacity is rounded down to the level's placement
//! granule (`line * ways`, the smallest capacity [`SetAssocCache`]
//! accepts with at least one set) and clamped so the hierarchy's
//! strictly-increasing-capacity invariant survives even absurd sharer
//! counts.
//!
//! [`SetAssocCache`]: crate::setassoc::SetAssocCache

use crate::hierarchy::CacheConfig;

/// Effective per-rank hierarchy when `sharers` ranks share the last
/// cache level.
///
/// Private levels (everything but the last) are untouched.  The last
/// level's capacity is divided by `sharers`, rounded **down** to the
/// level's `line * ways` granule, and clamped to the smallest granule
/// multiple strictly above the previous level's capacity (so the
/// result is always a valid [`CacheHierarchy`] input).
///
/// `sharers <= 1` is the uncontended case and returns the input
/// unchanged.
///
/// [`CacheHierarchy`]: crate::hierarchy::CacheHierarchy
pub fn derate_shared_llc(caches: &[CacheConfig], sharers: usize) -> Vec<CacheConfig> {
    let mut out = caches.to_vec();
    if sharers <= 1 || out.is_empty() {
        return out;
    }
    let last = out.len() - 1;
    let llc = out[last];
    let granule = llc.line * llc.ways;
    let split = llc.capacity / sharers / granule * granule;
    let floor = match last {
        0 => granule,
        i => (out[i - 1].capacity / granule + 1) * granule,
    };
    out[last].capacity = split.max(floor);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn sp_like() -> Vec<CacheConfig> {
        vec![
            CacheConfig {
                capacity: 128 * 1024,
                line: 128,
                ways: 4,
            },
            CacheConfig {
                capacity: 4 * 1024 * 1024,
                line: 128,
                ways: 8,
            },
        ]
    }

    #[test]
    fn four_sharers_split_a_4mib_llc_into_1mib() {
        let eff = derate_shared_llc(&sp_like(), 4);
        assert_eq!(eff[0].capacity, 128 * 1024);
        assert_eq!(eff[1].capacity, 1024 * 1024);
    }

    #[test]
    fn one_sharer_is_the_identity() {
        assert_eq!(derate_shared_llc(&sp_like(), 1), sp_like());
        assert_eq!(derate_shared_llc(&sp_like(), 0), sp_like());
    }

    #[test]
    fn derated_capacity_stays_strictly_above_the_previous_level() {
        // 64 sharers would naively give 64 KiB, below the 128 KiB L1;
        // the clamp keeps the hierarchy valid.
        let eff = derate_shared_llc(&sp_like(), 64);
        assert!(eff[1].capacity > eff[0].capacity);
        assert_eq!(eff[1].capacity % (eff[1].line * eff[1].ways), 0);
        // And it must actually build.
        let h = CacheHierarchy::new(eff);
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn single_level_hierarchies_clamp_to_one_granule() {
        let caches = vec![CacheConfig {
            capacity: 8 * 1024,
            line: 64,
            ways: 4,
        }];
        let eff = derate_shared_llc(&caches, 1000);
        assert_eq!(eff[0].capacity, 64 * 4);
        CacheHierarchy::new(eff);
    }

    #[test]
    fn derated_result_is_a_granule_multiple_and_buildable_for_any_sharers() {
        for sharers in 1..=40 {
            let eff = derate_shared_llc(&sp_like(), sharers);
            assert_eq!(eff[1].capacity % (eff[1].line * eff[1].ways), 0);
            assert!(eff[1].capacity <= 4 * 1024 * 1024);
            CacheHierarchy::new(eff);
        }
    }
}
