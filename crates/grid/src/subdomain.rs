//! Per-rank subdomains: the box of cells a rank owns under a 2-D pencil
//! decomposition (x and y split over the process grid, z kept local).

use crate::decomp::{Decomp1d, OwnedRange};
use crate::topology::{ProcCoords, ProcGrid};
use serde::{Deserialize, Serialize};

/// The box of global cells one rank owns, plus global context.
///
/// BT/SP/LU in this workspace all use the pencil scheme: the x and y
/// dimensions are split across the process grid, the z dimension stays
/// local.  Line solves along x and y are therefore pipelined across
/// rank columns/rows, and z solves are rank-local — matching the
/// communication character the paper discusses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subdomain {
    /// This rank's id.
    pub rank: usize,
    /// Position on the process grid.
    pub coords: ProcCoords,
    /// Owned global x range.
    pub xr: OwnedRange,
    /// Owned global y range.
    pub yr: OwnedRange,
    /// Owned global z range (always the full dimension here).
    pub zr: OwnedRange,
    /// Global grid extents.
    pub global: (usize, usize, usize),
}

impl Subdomain {
    /// Build the subdomain of `rank` for a `global`-sized grid over
    /// `grid` processes.
    pub fn pencil(global: (usize, usize, usize), grid: ProcGrid, rank: usize) -> Self {
        let coords = grid.coords(rank);
        let dx = Decomp1d::new(global.0, grid.cols());
        let dy = Decomp1d::new(global.1, grid.rows());
        Subdomain {
            rank,
            coords,
            xr: dx.range(coords.px),
            yr: dy.range(coords.py),
            zr: OwnedRange {
                lo: 0,
                hi: global.2,
            },
            global,
        }
    }

    /// Local extents `(nx, ny, nz)` of the owned box.
    #[inline]
    pub fn local_dims(&self) -> (usize, usize, usize) {
        (self.xr.len(), self.yr.len(), self.zr.len())
    }

    /// Number of cells owned by this rank.
    #[inline]
    pub fn cells(&self) -> usize {
        self.xr.len() * self.yr.len() * self.zr.len()
    }

    /// Whether this rank owns the global west boundary (i = 0).
    #[inline]
    pub fn at_west_boundary(&self) -> bool {
        self.xr.lo == 0
    }

    /// Whether this rank owns the global east boundary.
    #[inline]
    pub fn at_east_boundary(&self) -> bool {
        self.xr.hi == self.global.0
    }

    /// Whether this rank owns the global south boundary (j = 0).
    #[inline]
    pub fn at_south_boundary(&self) -> bool {
        self.yr.lo == 0
    }

    /// Whether this rank owns the global north boundary.
    #[inline]
    pub fn at_north_boundary(&self) -> bool {
        self.yr.hi == self.global.1
    }

    /// Global coordinates of a local cell.
    #[inline]
    pub fn to_global(&self, i: usize, j: usize, k: usize) -> (usize, usize, usize) {
        (self.xr.lo + i, self.yr.lo + j, self.zr.lo + k)
    }
}

/// Build the subdomains of all ranks for a grid and topology; the
/// returned vector is indexed by rank.
pub fn all_subdomains(global: (usize, usize, usize), grid: ProcGrid) -> Vec<Subdomain> {
    (0..grid.size())
        .map(|r| Subdomain::pencil(global, grid, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pencil_covers_grid() {
        let grid = ProcGrid::new(3, 2);
        let subs = all_subdomains((10, 7, 5), grid);
        let total: usize = subs.iter().map(|s| s.cells()).sum();
        assert_eq!(total, 10 * 7 * 5);
    }

    #[test]
    fn z_is_never_decomposed() {
        let grid = ProcGrid::square(9);
        for s in all_subdomains((12, 12, 12), grid) {
            assert_eq!(s.zr.len(), 12);
        }
    }

    #[test]
    fn boundary_flags() {
        let grid = ProcGrid::new(2, 2);
        let subs = all_subdomains((8, 8, 4), grid);
        assert!(subs[0].at_west_boundary() && subs[0].at_south_boundary());
        assert!(!subs[0].at_east_boundary() && !subs[0].at_north_boundary());
        assert!(subs[3].at_east_boundary() && subs[3].at_north_boundary());
    }

    #[test]
    fn to_global_offsets() {
        let grid = ProcGrid::new(2, 1);
        let subs = all_subdomains((10, 4, 4), grid);
        assert_eq!(subs[1].to_global(0, 0, 0), (5, 0, 0));
        assert_eq!(subs[1].to_global(4, 3, 3), (9, 3, 3));
    }

    #[test]
    fn uneven_split_is_balanced() {
        let grid = ProcGrid::new(4, 4);
        let subs = all_subdomains((102, 102, 102), grid);
        let max = subs.iter().map(|s| s.cells()).max().unwrap();
        let min = subs.iter().map(|s| s.cells()).min().unwrap();
        // 102 = 4*25 + 2, so parts are 25 or 26 wide
        assert_eq!(max, 26 * 26 * 102);
        assert_eq!(min, 25 * 25 * 102);
    }
}
