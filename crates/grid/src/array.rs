//! Dense 3-D arrays, scalar ([`Array3`]) and multi-component ([`Field3`]).
//!
//! Layout follows the NPB Fortran convention translated to row-major
//! Rust: for `Array3` the `i` index is fastest; for `Field3` the
//! component index is fastest (`u(1:5, i, j, k)` in the Fortran source
//! becomes `field.at(i, j, k)[0..5]` here), so one grid cell's
//! components are always contiguous — exactly the access unit the 5x5
//! block solvers consume.

/// A dense 3-D array of `f64` with `i`-fastest layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Array3 {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f64>,
}

impl Array3 {
    /// Create a zero-filled array of the given extents.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Create an array filled with `value`.
    pub fn filled(nx: usize, ny: usize, nz: usize, value: f64) -> Self {
        Self {
            nx,
            ny,
            nz,
            data: vec![value; nx * ny * nz],
        }
    }

    /// Extents as `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Read element `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write element `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let n = self.idx(i, j, k);
        self.data[n] = v;
    }

    /// Mutable reference to element `(i, j, k)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut f64 {
        let n = self.idx(i, j, k);
        &mut self.data[n]
    }

    /// The raw backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Sum of squares of all elements (used by residual norms).
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

/// A dense 3-D array of `NC`-component cells (component-fastest layout).
///
/// `NC` is a const generic so the component loop unrolls in the block
/// solvers; the NPB fields all use `NC = 5`.
#[derive(Clone, Debug, PartialEq)]
pub struct Field3<const NC: usize> {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f64>,
}

impl<const NC: usize> Field3<NC> {
    /// Create a zero-filled field of the given cell extents.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz * NC],
        }
    }

    /// Create a zero-filled field of the given cell extents, reusing
    /// `buf`'s allocation (cleared, zeroed and resized to fit).  The
    /// recycling counterpart of [`Field3::zeros`]: pair with
    /// [`Field3::into_vec`] to keep one backing allocation alive
    /// across fields of varying shape.
    pub fn zeros_in(nx: usize, ny: usize, nz: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(nx * ny * nz * NC, 0.0);
        Self {
            nx,
            ny,
            nz,
            data: buf,
        }
    }

    /// Consume the field, returning its backing storage for reuse.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Cell extents as `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of cells (not scalar elements).
    #[inline]
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of components per cell.
    #[inline]
    pub fn components(&self) -> usize {
        NC
    }

    /// Total bytes of the backing storage; used by the performance model
    /// to size region touches.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    #[inline]
    fn base(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(
            i < self.nx && j < self.ny && k < self.nz,
            "index ({i},{j},{k}) out of bounds ({},{},{})",
            self.nx,
            self.ny,
            self.nz
        );
        ((k * self.ny + j) * self.nx + i) * NC
    }

    /// The `NC` components of cell `(i, j, k)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> &[f64; NC] {
        let b = self.base(i, j, k);
        self.data[b..b + NC].try_into().unwrap()
    }

    /// The `NC` components of cell `(i, j, k)`, mutably.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize) -> &mut [f64; NC] {
        let b = self.base(i, j, k);
        (&mut self.data[b..b + NC]).try_into().unwrap()
    }

    /// A single component of a cell.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, c: usize) -> f64 {
        debug_assert!(c < NC);
        self.data[self.base(i, j, k) + c]
    }

    /// Write a single component of a cell.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, c: usize, v: f64) {
        debug_assert!(c < NC);
        let b = self.base(i, j, k) + c;
        self.data[b] = v;
    }

    /// The raw backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every scalar element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Sum over all cells of the squared component values,
    /// reported per component.  This is the residual-norm shape the NPB
    /// verification routines use.
    pub fn norms_sq(&self) -> [f64; NC] {
        let mut acc = [0.0; NC];
        for cell in self.data.chunks_exact(NC) {
            for (a, v) in acc.iter_mut().zip(cell) {
                *a += v * v;
            }
        }
        acc
    }

    /// `self += other`, element-wise.  Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.dims(), other.dims(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Maximum absolute difference to another field of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dims(), other.dims(), "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array3_roundtrip() {
        let mut a = Array3::zeros(3, 4, 5);
        assert_eq!(a.dims(), (3, 4, 5));
        assert_eq!(a.len(), 60);
        a.set(2, 3, 4, 7.5);
        assert_eq!(a.get(2, 3, 4), 7.5);
        *a.get_mut(0, 0, 0) = -1.0;
        assert_eq!(a.get(0, 0, 0), -1.0);
    }

    #[test]
    fn array3_layout_is_i_fastest() {
        let mut a = Array3::zeros(2, 2, 2);
        a.set(1, 0, 0, 1.0);
        assert_eq!(a.as_slice()[1], 1.0);
        a.set(0, 1, 0, 2.0);
        assert_eq!(a.as_slice()[2], 2.0);
        a.set(0, 0, 1, 3.0);
        assert_eq!(a.as_slice()[4], 3.0);
    }

    #[test]
    fn array3_norm_sq() {
        let a = Array3::filled(2, 2, 2, 2.0);
        assert_eq!(a.norm_sq(), 8.0 * 4.0);
    }

    #[test]
    fn field3_components_contiguous() {
        let mut f = Field3::<5>::zeros(2, 2, 2);
        for c in 0..5 {
            f.set(1, 0, 0, c, c as f64);
        }
        // cell (1,0,0) starts at scalar offset 5
        assert_eq!(&f.as_slice()[5..10], &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn field3_at_mut_roundtrip() {
        let mut f = Field3::<3>::zeros(2, 3, 4);
        f.at_mut(1, 2, 3).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.at(1, 2, 3), &[1.0, 2.0, 3.0]);
        assert_eq!(f.get(1, 2, 3, 1), 2.0);
    }

    #[test]
    fn field3_norms_sq_per_component() {
        let mut f = Field3::<2>::zeros(2, 1, 1);
        f.set(0, 0, 0, 0, 3.0);
        f.set(1, 0, 0, 0, 4.0);
        f.set(0, 0, 0, 1, 1.0);
        let n = f.norms_sq();
        assert_eq!(n[0], 25.0);
        assert_eq!(n[1], 1.0);
    }

    #[test]
    fn field3_add_assign_and_diff() {
        let mut a = Field3::<2>::zeros(2, 2, 1);
        let mut b = Field3::<2>::zeros(2, 2, 1);
        a.set(0, 0, 0, 0, 1.0);
        b.set(0, 0, 0, 0, 2.0);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0, 0, 0), 3.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn field3_zeros_in_reuses_and_rezeroes_the_allocation() {
        let mut f = Field3::<5>::zeros(3, 3, 3);
        f.fill(7.0);
        let buf = f.into_vec();
        let cap = buf.capacity();
        // smaller shape: same allocation, fully zeroed
        let g = Field3::<5>::zeros_in(2, 2, 2, buf);
        assert_eq!(g.dims(), (2, 2, 2));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(g.into_vec().capacity(), cap);
        // a fresh (empty) buffer works too
        let h = Field3::<2>::zeros_in(2, 1, 1, Vec::new());
        assert_eq!(h.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn field3_bytes() {
        let f = Field3::<5>::zeros(2, 2, 2);
        assert_eq!(f.bytes(), 2 * 2 * 2 * 5 * 8);
    }

    #[test]
    #[should_panic]
    fn field3_shape_mismatch_panics() {
        let mut a = Field3::<2>::zeros(2, 2, 1);
        let b = Field3::<2>::zeros(2, 1, 1);
        a.add_assign(&b);
    }
}
