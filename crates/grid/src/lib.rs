//! # kc-grid
//!
//! Structured-grid substrate for the kernel-couplings workspace.
//!
//! The NAS Parallel Benchmarks BT, SP and LU all operate on dense 3-D
//! grids carrying five solution components per cell.  This crate provides
//! the array types, block domain decompositions and process-grid
//! topologies those benchmarks are built on:
//!
//! * [`Array3`] / [`Field3`] — contiguous 3-D arrays, scalar and
//!   multi-component, with Fortran-like `(i, j, k)` indexing.
//! * [`Decomp1d`] — balanced block partition of one dimension over a
//!   number of parts, including the remainder handling NPB uses.
//! * [`ProcGrid`] — a 2-D logical process grid with neighbour lookup,
//!   used by the pencil decompositions of BT/SP (square grids) and LU
//!   (power-of-two grids built by repeated halving).
//! * [`Subdomain`] — the box of cells a rank owns plus its halo
//!   bookkeeping and face extraction/injection helpers.
//!
//! Everything here is deterministic and allocation-conscious; the hot
//! paths (`Field3` indexing, face copies) are `#[inline]` and used from
//! the numeric kernels in `kc-npb`.

pub mod array;
pub mod decomp;
pub mod face;
pub mod subdomain;
pub mod topology;

pub use array::{Array3, Field3};
pub use decomp::{Decomp1d, OwnedRange};
pub use face::{Face, FaceBuffer};
pub use subdomain::Subdomain;
pub use topology::{ProcCoords, ProcGrid};
