//! Logical 2-D process grids.
//!
//! BT and SP require a square number of processors (`q x q` grid); LU
//! requires a power of two and builds its grid by halving the domain
//! alternately in x and y.  Both shapes are captured by [`ProcGrid`].

use serde::{Deserialize, Serialize};

/// Coordinates of a rank on a 2-D process grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcCoords {
    /// Column index (x direction of the domain).
    pub px: usize,
    /// Row index (y direction of the domain).
    pub py: usize,
}

/// A `cols x rows` logical process grid with row-major rank numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGrid {
    cols: usize,
    rows: usize,
}

impl ProcGrid {
    /// Create a grid with the given column and row counts.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "process grid must be non-empty");
        Self { cols, rows }
    }

    /// The square grid for `p` processors (BT/SP rule).
    ///
    /// # Panics
    /// If `p` is not a perfect square.
    pub fn square(p: usize) -> Self {
        let q = (p as f64).sqrt().round() as usize;
        assert!(
            q * q == p,
            "BT/SP require a square processor count, got {p}"
        );
        Self::new(q, q)
    }

    /// The LU grid for `p = 2^m` processors: the domain is halved
    /// repeatedly, alternately in x then y, so the grid is either square
    /// (`m` even) or has twice as many columns as rows (`m` odd).
    ///
    /// # Panics
    /// If `p` is not a power of two.
    pub fn power_of_two(p: usize) -> Self {
        assert!(
            p.is_power_of_two(),
            "LU requires a power-of-two processor count, got {p}"
        );
        let m = p.trailing_zeros() as usize;
        let cols = 1usize << m.div_ceil(2);
        let rows = 1usize << (m / 2);
        Self::new(cols, rows)
    }

    /// Number of columns (x-direction parts).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (y-direction parts).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.cols * self.rows
    }

    /// Coordinates of `rank` (row-major numbering).
    #[inline]
    pub fn coords(&self, rank: usize) -> ProcCoords {
        debug_assert!(rank < self.size());
        ProcCoords {
            px: rank % self.cols,
            py: rank / self.cols,
        }
    }

    /// Rank at the given coordinates.
    #[inline]
    pub fn rank(&self, c: ProcCoords) -> usize {
        debug_assert!(c.px < self.cols && c.py < self.rows);
        c.py * self.cols + c.px
    }

    /// Rank of the neighbour in the −x direction, if any.
    pub fn west(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.px > 0).then(|| {
            self.rank(ProcCoords {
                px: c.px - 1,
                py: c.py,
            })
        })
    }

    /// Rank of the neighbour in the +x direction, if any.
    pub fn east(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.px + 1 < self.cols).then(|| {
            self.rank(ProcCoords {
                px: c.px + 1,
                py: c.py,
            })
        })
    }

    /// Rank of the neighbour in the −y direction, if any.
    pub fn south(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.py > 0).then(|| {
            self.rank(ProcCoords {
                px: c.px,
                py: c.py - 1,
            })
        })
    }

    /// Rank of the neighbour in the +y direction, if any.
    pub fn north(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.py + 1 < self.rows).then(|| {
            self.rank(ProcCoords {
                px: c.px,
                py: c.py + 1,
            })
        })
    }

    /// All existing neighbours of `rank` (W, E, S, N order).
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        [
            self.west(rank),
            self.east(rank),
            self.south(rank),
            self.north(rank),
        ]
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids() {
        for p in [1, 4, 9, 16, 25] {
            let g = ProcGrid::square(p);
            assert_eq!(g.size(), p);
            assert_eq!(g.cols(), g.rows());
        }
    }

    #[test]
    #[should_panic]
    fn non_square_panics() {
        ProcGrid::square(8);
    }

    #[test]
    fn power_of_two_grids() {
        assert_eq!(
            (
                ProcGrid::power_of_two(1).cols(),
                ProcGrid::power_of_two(1).rows()
            ),
            (1, 1)
        );
        assert_eq!(
            (
                ProcGrid::power_of_two(2).cols(),
                ProcGrid::power_of_two(2).rows()
            ),
            (2, 1)
        );
        assert_eq!(
            (
                ProcGrid::power_of_two(4).cols(),
                ProcGrid::power_of_two(4).rows()
            ),
            (2, 2)
        );
        assert_eq!(
            (
                ProcGrid::power_of_two(8).cols(),
                ProcGrid::power_of_two(8).rows()
            ),
            (4, 2)
        );
        assert_eq!(
            (
                ProcGrid::power_of_two(16).cols(),
                ProcGrid::power_of_two(16).rows()
            ),
            (4, 4)
        );
        assert_eq!(
            (
                ProcGrid::power_of_two(32).cols(),
                ProcGrid::power_of_two(32).rows()
            ),
            (8, 4)
        );
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        ProcGrid::power_of_two(12);
    }

    #[test]
    fn coords_roundtrip() {
        let g = ProcGrid::new(4, 3);
        for r in 0..g.size() {
            assert_eq!(g.rank(g.coords(r)), r);
        }
    }

    #[test]
    fn neighbors_of_corner_and_interior() {
        let g = ProcGrid::new(3, 3);
        // rank 0 = (0,0): east=1, north=3
        assert_eq!(g.west(0), None);
        assert_eq!(g.south(0), None);
        assert_eq!(g.east(0), Some(1));
        assert_eq!(g.north(0), Some(3));
        // rank 4 = centre
        assert_eq!(g.neighbors(4), vec![3, 5, 1, 7]);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let g = ProcGrid::new(4, 2);
        for r in 0..g.size() {
            if let Some(e) = g.east(r) {
                assert_eq!(g.west(e), Some(r));
            }
            if let Some(n) = g.north(r) {
                assert_eq!(g.south(n), Some(r));
            }
        }
    }
}
