//! Face extraction and injection for halo exchange.
//!
//! The COPY_FACES kernels of BT/SP exchange one-cell-deep faces of the
//! five-component solution field with the four 2-D-grid neighbours.
//! [`FaceBuffer`] packs a face into a contiguous send buffer and unpacks
//! a received buffer into a halo plane.

use crate::array::Field3;
use serde::{Deserialize, Serialize};

/// Which face of a subdomain box (outward normal direction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Face {
    /// −x face (i = 0 plane).
    West,
    /// +x face (i = nx−1 plane).
    East,
    /// −y face (j = 0 plane).
    South,
    /// +y face (j = ny−1 plane).
    North,
}

impl Face {
    /// The face a neighbour must unpack when it receives this face.
    pub fn opposite(self) -> Face {
        match self {
            Face::West => Face::East,
            Face::East => Face::West,
            Face::South => Face::North,
            Face::North => Face::South,
        }
    }

    /// All four faces in a fixed order.
    pub const ALL: [Face; 4] = [Face::West, Face::East, Face::South, Face::North];
}

/// A packed face of an `NC`-component field.
#[derive(Clone, Debug, PartialEq)]
pub struct FaceBuffer<const NC: usize> {
    face: Face,
    /// extent along the first in-face axis (y for W/E faces, x for S/N)
    n1: usize,
    /// extent along the second in-face axis (z)
    n2: usize,
    data: Vec<f64>,
}

impl<const NC: usize> FaceBuffer<NC> {
    /// Pack the boundary plane of `field` facing `face`.
    pub fn pack(field: &Field3<NC>, face: Face) -> Self {
        let (nx, ny, nz) = field.dims();
        let (n1, n2) = match face {
            Face::West | Face::East => (ny, nz),
            Face::South | Face::North => (nx, nz),
        };
        let mut data = Vec::with_capacity(n1 * n2 * NC);
        for k in 0..n2 {
            for t in 0..n1 {
                let (i, j) = match face {
                    Face::West => (0, t),
                    Face::East => (nx - 1, t),
                    Face::South => (t, 0),
                    Face::North => (t, ny - 1),
                };
                data.extend_from_slice(field.at(i, j, k));
            }
        }
        Self { face, n1, n2, data }
    }

    /// Construct a buffer from raw data received over the wire.
    ///
    /// # Panics
    /// If `data.len() != n1 * n2 * NC`.
    pub fn from_raw(face: Face, n1: usize, n2: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n1 * n2 * NC, "face buffer size mismatch");
        Self { face, n1, n2, data }
    }

    /// The face this buffer was packed from.
    pub fn face(&self) -> Face {
        self.face
    }

    /// The raw packed data (cell components contiguous).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the raw packed data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Number of f64 values in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Unpack this buffer into `halo`, a field with the same extents as
    /// the sender's subdomain-adjacent plane.  The buffer must have been
    /// packed from the `face.opposite()` plane of the neighbouring
    /// subdomain; it is written into the `face` boundary plane of
    /// `halo`'s coordinate frame via the provided writer closure, which
    /// receives `(t, k, components)` — the two in-face coordinates and
    /// the `NC` cell values.
    pub fn unpack_with(&self, mut write: impl FnMut(usize, usize, &[f64; NC])) {
        for k in 0..self.n2 {
            for t in 0..self.n1 {
                let b = (k * self.n1 + t) * NC;
                let cell: &[f64; NC] = self.data[b..b + NC].try_into().unwrap();
                write(t, k, cell);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_field() -> Field3<2> {
        let mut f = Field3::<2>::zeros(3, 4, 2);
        let (nx, ny, nz) = f.dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    f.set(i, j, k, 0, (100 * i + 10 * j + k) as f64);
                    f.set(i, j, k, 1, -((100 * i + 10 * j + k) as f64));
                }
            }
        }
        f
    }

    #[test]
    fn opposite_faces() {
        assert_eq!(Face::West.opposite(), Face::East);
        assert_eq!(Face::North.opposite(), Face::South);
        for f in Face::ALL {
            assert_eq!(f.opposite().opposite(), f);
        }
    }

    #[test]
    fn pack_east_face() {
        let f = sample_field();
        let buf = FaceBuffer::pack(&f, Face::East);
        assert_eq!(buf.len(), 4 * 2 * 2);
        // first cell should be (i=2, j=0, k=0)
        assert_eq!(buf.as_slice()[0], 200.0);
        assert_eq!(buf.as_slice()[1], -200.0);
    }

    #[test]
    fn pack_north_face() {
        let f = sample_field();
        let buf = FaceBuffer::pack(&f, Face::North);
        assert_eq!(buf.len(), 3 * 2 * 2);
        // first cell should be (i=0, j=3, k=0)
        assert_eq!(buf.as_slice()[0], 30.0);
    }

    #[test]
    fn unpack_visits_every_cell_once() {
        let f = sample_field();
        let buf = FaceBuffer::pack(&f, Face::West);
        let mut count = 0;
        buf.unpack_with(|t, k, cell| {
            assert_eq!(cell[0], (10 * t + k) as f64);
            count += 1;
        });
        assert_eq!(count, 4 * 2);
    }

    #[test]
    fn from_raw_roundtrip() {
        let f = sample_field();
        let packed = FaceBuffer::pack(&f, Face::South);
        let raw = packed.clone().into_vec();
        let rebuilt = FaceBuffer::<2>::from_raw(Face::South, 3, 2, raw);
        assert_eq!(rebuilt, packed);
    }

    #[test]
    #[should_panic]
    fn from_raw_wrong_size_panics() {
        FaceBuffer::<2>::from_raw(Face::South, 3, 2, vec![0.0; 5]);
    }
}
