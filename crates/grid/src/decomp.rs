//! Balanced 1-D block decompositions.
//!
//! NPB distributes `n` grid points over `p` parts by giving the first
//! `n mod p` parts one extra point.  [`Decomp1d`] implements exactly
//! that rule and is the building block for the 2-D pencil
//! decompositions in [`crate::subdomain`].

use serde::{Deserialize, Serialize};

/// A half-open global index range `[lo, hi)` owned by one part.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OwnedRange {
    /// First owned global index.
    pub lo: usize,
    /// One past the last owned global index.
    pub hi: usize,
}

impl OwnedRange {
    /// Number of owned indices.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Whether global index `g` falls in this range.
    #[inline]
    pub fn contains(&self, g: usize) -> bool {
        g >= self.lo && g < self.hi
    }

    /// Convert a global index to a local offset (caller must ensure
    /// containment; checked in debug builds).
    #[inline]
    pub fn to_local(&self, g: usize) -> usize {
        debug_assert!(self.contains(g));
        g - self.lo
    }
}

/// Balanced block partition of `n` indices over `parts` parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomp1d {
    n: usize,
    parts: usize,
}

impl Decomp1d {
    /// Create a decomposition of `n` indices over `parts` parts.
    ///
    /// # Panics
    /// If `parts == 0` or `parts > n` (NPB requires at least one grid
    /// point per processor in every decomposed dimension).
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "decomposition needs at least one part");
        assert!(
            parts <= n,
            "cannot split {n} indices over {parts} parts: empty parts are not supported"
        );
        Self { n, parts }
    }

    /// Total number of indices being partitioned.
    #[inline]
    pub fn total(&self) -> usize {
        self.n
    }

    /// Number of parts.
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The range owned by `part`.
    ///
    /// The first `n mod parts` parts receive `ceil(n / parts)` indices,
    /// the rest `floor(n / parts)`.
    pub fn range(&self, part: usize) -> OwnedRange {
        assert!(part < self.parts, "part {part} out of {}", self.parts);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let lo = part * base + part.min(extra);
        let len = base + usize::from(part < extra);
        OwnedRange { lo, hi: lo + len }
    }

    /// Which part owns global index `g`.
    pub fn owner(&self, g: usize) -> usize {
        assert!(g < self.n, "index {g} out of {}", self.n);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let boundary = extra * (base + 1);
        if g < boundary {
            g / (base + 1)
        } else {
            extra + (g - boundary) / base
        }
    }

    /// The largest part size; the load-imbalance model keys off this.
    pub fn max_part(&self) -> usize {
        self.n / self.parts + usize::from(!self.n.is_multiple_of(self.parts))
    }

    /// The smallest part size.
    pub fn min_part(&self) -> usize {
        self.n / self.parts
    }

    /// Iterator over all ranges in part order.
    pub fn ranges(&self) -> impl Iterator<Item = OwnedRange> + '_ {
        (0..self.parts).map(|p| self.range(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let d = Decomp1d::new(12, 4);
        let r: Vec<_> = d.ranges().collect();
        assert_eq!(r[0], OwnedRange { lo: 0, hi: 3 });
        assert_eq!(r[3], OwnedRange { lo: 9, hi: 12 });
        assert!(r.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn remainder_goes_to_leading_parts() {
        let d = Decomp1d::new(10, 3);
        let r: Vec<_> = d.ranges().collect();
        assert_eq!(r[0].len(), 4);
        assert_eq!(r[1].len(), 3);
        assert_eq!(r[2].len(), 3);
        assert_eq!(d.max_part(), 4);
        assert_eq!(d.min_part(), 3);
    }

    #[test]
    fn ranges_cover_and_do_not_overlap() {
        let d = Decomp1d::new(33, 7);
        let mut next = 0;
        for r in d.ranges() {
            assert_eq!(r.lo, next);
            next = r.hi;
        }
        assert_eq!(next, 33);
    }

    #[test]
    fn owner_matches_range() {
        for (n, p) in [(12, 4), (10, 3), (33, 8), (102, 5), (7, 7)] {
            let d = Decomp1d::new(n, p);
            for g in 0..n {
                let o = d.owner(g);
                assert!(d.range(o).contains(g), "n={n} p={p} g={g} owner={o}");
            }
        }
    }

    #[test]
    fn to_local_roundtrip() {
        let d = Decomp1d::new(10, 3);
        let r = d.range(1);
        assert_eq!(r.to_local(r.lo), 0);
        assert_eq!(r.to_local(r.hi - 1), r.len() - 1);
    }

    #[test]
    #[should_panic]
    fn more_parts_than_points_panics() {
        Decomp1d::new(3, 4);
    }

    #[test]
    #[should_panic]
    fn zero_parts_panics() {
        Decomp1d::new(3, 0);
    }
}
