//! Virtual-time message passing between simulated ranks.
//!
//! Transport is a crossbeam channel per rank; *timing* is carried on
//! the messages themselves.  A send stamps the message with its arrival
//! time under the LogGP model (sender overhead + NIC serialization +
//! switch latency + wire transfer); the matching receive advances the
//! receiver's clock to no earlier than that arrival.  Because matching
//! is always by `(source, tag)`, the virtual timeline is deterministic
//! regardless of OS thread scheduling.

use crate::config::NetModel;
use crate::perf::PerfContext;
use crossbeam::channel::{Receiver, Sender};

/// A message in flight between two simulated ranks.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Virtual time at which the message is available at the receiver.
    pub arrival: f64,
    /// Size the message would have on a real machine, in bytes.  In
    /// profile mode kernels send empty payloads but declare the
    /// logical size, so the network model still sees the real traffic.
    pub logical_bytes: usize,
    /// Payload (may be empty in profile mode).
    pub data: Vec<f64>,
}

/// One entry of a rank's communication trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommEvent {
    /// A message left this rank.
    Send {
        /// Virtual time the send completed locally.
        time: f64,
        /// Destination rank.
        dest: usize,
        /// Application tag.
        tag: u32,
        /// Logical wire bytes.
        bytes: usize,
    },
    /// A message was consumed by this rank.
    Recv {
        /// Virtual time the receive completed locally.
        time: f64,
        /// Source rank.
        src: usize,
        /// Application tag.
        tag: u32,
        /// How long the rank idled waiting for the message (0 when it
        /// had already arrived — the overlap case).
        waited: f64,
    },
}

/// Per-rank communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub sent_messages: u64,
    /// Logical bytes sent by this rank.
    pub sent_bytes: u64,
    /// Messages received by this rank.
    pub recv_messages: u64,
}

/// One rank's endpoint: senders to every rank plus its own receiver.
pub struct CommEndpoint {
    rank: usize,
    size: usize,
    net: NetModel,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages that arrived before anyone asked for them.
    pending: Vec<Message>,
    /// Virtual time until which this rank's NIC is busy serializing
    /// earlier messages.
    nic_free_at: f64,
    stats: CommStats,
    trace: Option<Vec<CommEvent>>,
}

impl CommEndpoint {
    /// Assemble an endpoint (called by the cluster runner).
    pub(crate) fn new(
        rank: usize,
        size: usize,
        net: NetModel,
        senders: Vec<Sender<Message>>,
        receiver: Receiver<Message>,
    ) -> Self {
        Self {
            rank,
            size,
            net,
            senders,
            receiver,
            pending: Vec::new(),
            nic_free_at: 0.0,
            stats: CommStats::default(),
            trace: None,
        }
    }

    /// Enable event tracing on this endpoint.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace (empty if tracing was disabled).
    pub fn take_trace(&mut self) -> Vec<CommEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Send `data` to `dest` with `tag`, declaring `logical_bytes` on
    /// the wire.  Advances the sender's clock by the send overhead and
    /// any NIC queueing delay.
    pub fn send_sized(
        &mut self,
        perf: &mut PerfContext,
        dest: usize,
        tag: u32,
        logical_bytes: usize,
        data: Vec<f64>,
    ) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        assert_ne!(dest, self.rank, "self-sends are not supported");
        // queue behind earlier messages still being injected
        let start = perf.now().max(self.nic_free_at);
        perf.advance_to(start);
        perf.advance(self.net.send_overhead);
        let serialize = logical_bytes as f64 / self.net.injection_bandwidth;
        self.nic_free_at = perf.now() + serialize;
        let arrival = perf.now()
            + serialize
            + self.net.effective_latency(self.size)
            + self.net.transfer_time(logical_bytes);
        self.stats.sent_messages += 1;
        self.stats.sent_bytes += logical_bytes as u64;
        if let Some(t) = &mut self.trace {
            t.push(CommEvent::Send {
                time: perf.now(),
                dest,
                tag,
                bytes: logical_bytes,
            });
        }
        let msg = Message {
            src: self.rank,
            tag,
            arrival,
            logical_bytes,
            data,
        };
        self.senders[dest]
            .send(msg)
            .expect("receiver endpoint dropped");
    }

    /// Receive the next message from `src` with `tag`, blocking the OS
    /// thread until it exists and advancing the virtual clock to its
    /// arrival plus the receive overhead.
    pub fn recv(&mut self, perf: &mut PerfContext, src: usize, tag: u32) -> Message {
        let before = perf.now();
        let msg = self.take_matching(src, tag);
        perf.advance_to(msg.arrival);
        let waited = perf.now() - before;
        perf.advance(self.net.recv_overhead);
        self.stats.recv_messages += 1;
        if let Some(t) = &mut self.trace {
            t.push(CommEvent::Recv {
                time: perf.now(),
                src,
                tag,
                waited,
            });
        }
        msg
    }

    fn take_matching(&mut self, src: usize, tag: u32) -> Message {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.remove(pos);
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("all sender endpoints dropped while waiting for a message");
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    /// Whether any unconsumed messages remain (checked at teardown to
    /// catch protocol bugs).
    pub fn has_unconsumed(&self) -> bool {
        !self.pending.is_empty() || !self.receiver.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crossbeam::channel::unbounded;

    fn pair() -> (CommEndpoint, CommEndpoint, NetModel) {
        let net = MachineConfig::test_tiny().net;
        let (s0, r0) = unbounded();
        let (s1, r1) = unbounded();
        let e0 = CommEndpoint::new(0, 2, net, vec![s0.clone(), s1.clone()], r0);
        let e1 = CommEndpoint::new(1, 2, net, vec![s0, s1], r1);
        (e0, e1, net)
    }

    #[test]
    fn send_recv_carries_data_and_time() {
        let (mut e0, mut e1, net) = pair();
        let cfg = MachineConfig::test_tiny();
        let mut p0 = PerfContext::new(cfg.clone());
        let mut p1 = PerfContext::new(cfg);
        e0.send_sized(&mut p0, 1, 42, 800, vec![1.0, 2.0]);
        let m = e1.recv(&mut p1, 0, 42);
        assert_eq!(m.data, vec![1.0, 2.0]);
        assert_eq!(m.logical_bytes, 800);
        // receiver clock >= send overhead + latency + transfer
        let min_t = net.send_overhead + net.effective_latency(2) + net.transfer_time(800);
        assert!(p1.now() >= min_t);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (mut e0, mut e1, _) = pair();
        let cfg = MachineConfig::test_tiny();
        let mut p0 = PerfContext::new(cfg.clone());
        let mut p1 = PerfContext::new(cfg);
        e0.send_sized(&mut p0, 1, 1, 8, vec![1.0]);
        e0.send_sized(&mut p0, 1, 2, 8, vec![2.0]);
        let m2 = e1.recv(&mut p1, 0, 2);
        let m1 = e1.recv(&mut p1, 0, 1);
        assert_eq!(m2.data, vec![2.0]);
        assert_eq!(m1.data, vec![1.0]);
        assert!(!e1.has_unconsumed());
    }

    #[test]
    fn nic_serialization_delays_bursts() {
        let (mut e0, _e1, net) = pair();
        let cfg = MachineConfig::test_tiny();
        let mut p0 = PerfContext::new(cfg);
        // two large back-to-back messages: second must wait for the
        // first to finish injecting
        e0.send_sized(&mut p0, 1, 1, 2_000_000, vec![]);
        let t_after_first = p0.now();
        e0.send_sized(&mut p0, 1, 2, 8, vec![]);
        let serialize = 2_000_000.0 / net.injection_bandwidth;
        assert!(p0.now() >= t_after_first + serialize);
    }

    #[test]
    fn stats_accumulate() {
        let (mut e0, mut e1, _) = pair();
        let cfg = MachineConfig::test_tiny();
        let mut p0 = PerfContext::new(cfg.clone());
        let mut p1 = PerfContext::new(cfg);
        e0.send_sized(&mut p0, 1, 1, 100, vec![]);
        e0.send_sized(&mut p0, 1, 1, 100, vec![]);
        e1.recv(&mut p1, 0, 1);
        assert_eq!(e0.stats().sent_messages, 2);
        assert_eq!(e0.stats().sent_bytes, 200);
        assert_eq!(e1.stats().recv_messages, 1);
        assert!(e1.has_unconsumed());
    }

    #[test]
    #[should_panic]
    fn self_send_panics() {
        let (mut e0, _e1, _) = pair();
        let mut p0 = PerfContext::new(MachineConfig::test_tiny());
        e0.send_sized(&mut p0, 0, 1, 8, vec![]);
    }
}
