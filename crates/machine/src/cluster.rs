//! The cluster runner: executes one program closure per simulated
//! rank — on pooled worker threads by default (see [`crate::pool`]),
//! or on freshly spawned scoped threads — and collects per-rank
//! virtual times and results.

use crate::comm::{CommEndpoint, CommEvent, CommStats, Message};
use crate::config::MachineConfig;
use crate::perf::PerfContext;
use crate::pool::{self, RankPool};
use crossbeam::channel::{unbounded, Receiver, Sender};
use kc_cachesim::{AccessCounts, RegionId};
use parking_lot::Mutex;
use std::sync::Barrier;

/// Shared state backing the collectives (barrier / allreduce).
///
/// Reused across pooled runs: `exchange` deposits before it folds, so
/// every slot is overwritten before it is read, and `std::sync::Barrier`
/// resets itself after each wait.
pub(crate) struct CollectiveState {
    slots: Vec<Mutex<f64>>,
    gate: Barrier,
}

impl CollectiveState {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| Mutex::new(0.0)).collect(),
            gate: Barrier::new(n),
        }
    }

    /// Two-phase exchange: deposit `value`, wait, fold everyone's
    /// values with `fold`, wait again so slots can be reused.
    fn exchange(&self, rank: usize, value: f64, fold: impl Fn(f64, f64) -> f64) -> f64 {
        *self.slots[rank].lock() = value;
        self.gate.wait();
        let mut acc = *self.slots[0].lock();
        for s in &self.slots[1..] {
            acc = fold(acc, *s.lock());
        }
        self.gate.wait();
        acc
    }
}

/// Everything one rank's code needs: identity, virtual clock,
/// performance model and communication.
pub struct RankCtx<'a> {
    perf: PerfContext,
    comm: CommEndpoint,
    coll: &'a CollectiveState,
}

impl<'a> RankCtx<'a> {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of ranks in the job.
    #[inline]
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// Current virtual time (seconds).
    #[inline]
    pub fn now(&self) -> f64 {
        self.perf.now()
    }

    /// Charge `n` floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.perf.flops(n);
    }

    /// Advance the clock by raw `seconds` (non-model costs).
    #[inline]
    pub fn advance(&mut self, seconds: f64) {
        self.perf.advance(seconds);
    }

    /// Register a memory region for the cache model.
    pub fn register_region(&mut self, name: &str, size: usize) -> RegionId {
        self.perf.register_region(name, size)
    }

    /// Charge a contiguous memory touch.
    pub fn touch(&mut self, id: RegionId, offset: usize, bytes: usize) -> AccessCounts {
        self.perf.touch(id, offset, bytes)
    }

    /// Charge a strided memory touch.
    pub fn touch_strided(
        &mut self,
        id: RegionId,
        offset: usize,
        stride: usize,
        elem: usize,
        count: usize,
    ) -> AccessCounts {
        self.perf.touch_strided(id, offset, stride, elem, count)
    }

    /// Invalidate this rank's caches (cold-cache protocol support).
    pub fn flush_caches(&mut self) {
        self.perf.flush_caches();
    }

    /// Send `data` to `dest` with `tag`; the logical wire size is the
    /// payload size.
    pub fn send(&mut self, dest: usize, tag: u32, data: Vec<f64>) {
        let bytes = data.len() * std::mem::size_of::<f64>();
        self.comm.send_sized(&mut self.perf, dest, tag, bytes, data);
    }

    /// Send with an explicit logical wire size (profile mode sends
    /// empty payloads but real sizes).
    pub fn send_sized(&mut self, dest: usize, tag: u32, logical_bytes: usize, data: Vec<f64>) {
        self.comm
            .send_sized(&mut self.perf, dest, tag, logical_bytes, data);
    }

    /// Receive the next message from `src` with `tag`.
    pub fn recv(&mut self, src: usize, tag: u32) -> Message {
        self.comm.recv(&mut self.perf, src, tag)
    }

    /// Synchronize all ranks; afterwards every clock reads the maximum
    /// clock plus a log-tree collective cost.
    pub fn barrier(&mut self) {
        let t = self.coll.exchange(self.rank(), self.now(), f64::max);
        self.perf.advance_to(t);
        self.perf.advance(self.collective_cost());
    }

    /// All-reduce `value` with max; synchronizes clocks like a barrier.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        let clock = self.coll.exchange(self.rank(), self.now(), f64::max);
        let v = self.coll.exchange(self.rank(), value, f64::max);
        self.perf.advance_to(clock);
        self.perf.advance(self.collective_cost());
        v
    }

    /// All-reduce `value` with sum; synchronizes clocks like a barrier.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        let clock = self.coll.exchange(self.rank(), self.now(), f64::max);
        let v = self.coll.exchange(self.rank(), value, |a, b| a + b);
        self.perf.advance_to(clock);
        self.perf.advance(self.collective_cost());
        v
    }

    /// Direct access to the performance context.
    pub fn perf(&mut self) -> &mut PerfContext {
        &mut self.perf
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.perf.config()
    }

    fn collective_cost(&self) -> f64 {
        let p = self.size();
        if p <= 1 {
            return 0.0;
        }
        let net = &self.perf.config().net;
        let stages = (p as f64).log2().ceil();
        stages * (net.send_overhead + net.recv_overhead + net.effective_latency(p))
    }
}

/// Per-rank outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// Final virtual time.
    pub time: f64,
    /// Communication statistics.
    pub comm: CommStats,
    /// Cache access totals.
    pub cache: AccessCounts,
    /// Total flops charged.
    pub flops: u64,
    /// Communication event trace (empty unless the machine config has
    /// `trace_comm` set).
    pub comm_trace: Vec<CommEvent>,
}

/// Result of running a program on the simulated cluster.
#[derive(Clone, Debug)]
pub struct RunOutcome<T> {
    /// Per-rank final reports, indexed by rank.
    pub reports: Vec<RankReport>,
    /// Per-rank return values of the program closure.
    pub results: Vec<T>,
}

impl<T> RunOutcome<T> {
    /// The job's virtual execution time: the maximum rank time.
    pub fn elapsed(&self) -> f64 {
        self.reports.iter().map(|r| r.time).fold(0.0, f64::max)
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.reports.iter().map(|r| r.comm.sent_messages).sum()
    }

    /// Total logical bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.reports.iter().map(|r| r.comm.sent_bytes).sum()
    }

    /// Total flops charged across all ranks.
    pub fn total_flops(&self) -> u64 {
        self.reports.iter().map(|r| r.flops).sum()
    }
}

/// A simulated cluster of a given machine type.
#[derive(Clone, Debug)]
pub struct Cluster {
    config: MachineConfig,
}

impl Cluster {
    /// A cluster of the given machine.
    pub fn new(config: MachineConfig) -> Self {
        Self { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Run `program` on `p` ranks and collect the per-rank outcomes.
    /// Panics in any rank propagate.
    ///
    /// By default this is a thin wrapper over [`Cluster::run_on`] with
    /// the calling thread's persistent [`RankPool`], so consecutive
    /// cells executed by the same scheduler worker reuse the same `p`
    /// parked rank threads instead of paying spawn + join per cell.
    /// With pooling disabled (`KC_RANK_POOL=0` or
    /// [`pool::set_rank_pooling`]) it falls back to
    /// [`Cluster::run_spawned`].  The virtual timeline is a pure
    /// function of the program and machine config either way, so the
    /// two paths produce identical outcomes.
    pub fn run<T, F>(&self, p: usize, program: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        if pool::rank_pooling_enabled() {
            pool::with_local_pool(|local| self.run_on(local, p, &program))
        } else {
            self.run_spawned(p, program)
        }
    }

    /// Run `program` on `p` ranks drawn from `pool`'s parked workers
    /// (building them on first use).  See [`crate::pool`] for the rig
    /// lifecycle: keying, reset between runs, and poisoning.
    pub fn run_on<T, F>(&self, rank_pool: &RankPool, p: usize, program: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        pool::run_on(self, rank_pool, p, &program)
    }

    /// Run `program` on `p` freshly spawned scoped threads (the cold
    /// path: one spawn + join per rank per run).  Kept public as the
    /// baseline the pooled path is benchmarked and byte-compared
    /// against.
    pub fn run_spawned<T, F>(&self, p: usize, program: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        assert!(p > 0, "need at least one rank");
        let coll = CollectiveState::new(p);
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded::<Message>();
            senders.push(s);
            receivers.push(r);
        }

        let mut outcomes: Vec<Option<(RankReport, T)>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let coll = &coll;
                let config = &self.config;
                let program = &program;
                handles.push(scope.spawn(move || {
                    execute_rank(config, p, rank, senders, receiver, coll, program)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                outcomes[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });

        let mut reports = Vec::with_capacity(p);
        let mut results = Vec::with_capacity(p);
        for o in outcomes {
            let (rep, res) = o.expect("rank produced no outcome");
            reports.push(rep);
            results.push(res);
        }
        RunOutcome { reports, results }
    }
}

/// Execute one rank's program against fresh per-run contexts (perf
/// clock, comm endpoint) over the given channels and collective state.
/// Shared by the spawned and pooled paths so their virtual timelines
/// are computed by literally the same code.
pub(crate) fn execute_rank<T, F>(
    config: &MachineConfig,
    p: usize,
    rank: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    coll: &CollectiveState,
    program: &F,
) -> (RankReport, T)
where
    F: Fn(&mut RankCtx) -> T,
{
    // A rank of a multicore machine sees its *effective* share of the
    // node's shared cache (uniprocessor configs return themselves
    // unchanged).  Cell keys still fingerprint the declared config.
    let perf = PerfContext::new(config.effective_for_ranks(p));
    let mut comm = CommEndpoint::new(rank, p, config.net, senders, receiver);
    if config.trace_comm {
        comm.enable_trace();
    }
    let mut ctx = RankCtx { perf, comm, coll };
    let result = program(&mut ctx);
    let report = RankReport {
        time: ctx.perf.now(),
        comm: ctx.comm.stats(),
        cache: ctx.perf.cache_totals(),
        flops: ctx.perf.flops_total(),
        comm_trace: ctx.comm.take_trace(),
    };
    (report, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(MachineConfig::test_tiny())
    }

    #[test]
    fn single_rank_compute_only() {
        let out = cluster().run(1, |ctx| {
            ctx.flops(1_000_000_000);
            ctx.rank()
        });
        assert!((out.elapsed() - 1.0).abs() < 1e-9);
        assert_eq!(out.results, vec![0]);
    }

    #[test]
    fn ring_is_deterministic_across_runs() {
        let run = || {
            cluster().run(4, |ctx| {
                let right = (ctx.rank() + 1) % ctx.size();
                let left = (ctx.rank() + 3) % ctx.size();
                ctx.flops((ctx.rank() as u64 + 1) * 100_000);
                ctx.send(right, 0, vec![ctx.rank() as f64]);
                let m = ctx.recv(left, 0);
                ctx.now() + m.data[0]
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.elapsed(), b.elapsed());
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = cluster().run(4, |ctx| {
            ctx.flops(ctx.rank() as u64 * 1_000_000);
            ctx.barrier();
            ctx.now()
        });
        let times = out.results;
        for t in &times {
            assert!(
                (t - times[0]).abs() < 1e-12,
                "clocks differ after barrier: {times:?}"
            );
        }
        // everyone is at least as late as the slowest rank's compute
        assert!(times[0] >= 3_000_000.0 / 1.0e9);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = cluster().run(3, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64 + 1.0);
            let m = ctx.allreduce_max(ctx.rank() as f64);
            (s, m)
        });
        for (s, m) in out.results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 2.0);
        }
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let out = cluster().run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.flops(1_000_000_000); // 1 second of work before sending
                ctx.send(1, 0, vec![1.0]);
            } else {
                let _ = ctx.recv(0, 0);
            }
            ctx.now()
        });
        assert!(
            out.results[1] >= 1.0,
            "receiver finished at {} < sender's 1s",
            out.results[1]
        );
    }

    #[test]
    fn pipeline_slack_absorbs_waits() {
        // rank 1 has local work to do; the message from rank 0 arrives
        // while it computes, so the receive costs (almost) nothing.
        let out = cluster().run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0.0; 8]);
            } else {
                ctx.flops(100_000_000); // 0.1 s local work
                let _ = ctx.recv(0, 0);
            }
            ctx.now()
        });
        let net = MachineConfig::test_tiny().net;
        assert!(out.results[1] < 0.1 + 2.0 * (net.recv_overhead + net.latency));
    }

    #[test]
    fn reports_capture_traffic() {
        let out = cluster().run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0.0; 100]);
            } else {
                let _ = ctx.recv(0, 0);
            }
        });
        assert_eq!(out.total_messages(), 1);
        assert_eq!(out.total_bytes(), 800);
    }

    #[test]
    fn comm_trace_records_ordered_events_with_waits() {
        let cfg = MachineConfig::test_tiny().with_comm_trace();
        let out = Cluster::new(cfg).run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.flops(100_000_000); // 0.1 s before sending
                ctx.send(1, 7, vec![1.0]);
            } else {
                let _ = ctx.recv(0, 7);
            }
        });
        let t0 = &out.reports[0].comm_trace;
        let t1 = &out.reports[1].comm_trace;
        assert_eq!(t0.len(), 1);
        assert_eq!(t1.len(), 1);
        match t1[0] {
            CommEvent::Recv {
                src, tag, waited, ..
            } => {
                assert_eq!((src, tag), (0, 7));
                assert!(
                    waited >= 0.1,
                    "receiver should have idled ~0.1 s, waited {waited}"
                );
            }
            other => panic!("expected a Recv event, got {other:?}"),
        }
        // times are monotone within a rank
        let times: Vec<f64> = t0
            .iter()
            .map(|e| match e {
                CommEvent::Send { time, .. } | CommEvent::Recv { time, .. } => *time,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let out = Cluster::new(MachineConfig::test_tiny()).run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![1.0]);
            } else {
                let _ = ctx.recv(0, 0);
            }
        });
        assert!(out.reports.iter().all(|r| r.comm_trace.is_empty()));
    }

    #[test]
    fn cache_reports_flow_through() {
        let out = cluster().run(1, |ctx| {
            let r = ctx.register_region("a", 64 * 8);
            ctx.touch(r, 0, 64 * 8);
        });
        assert_eq!(out.reports[0].cache.total(), 8);
    }
}
