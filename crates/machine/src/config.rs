//! Machine model configuration and presets.

use kc_cachesim::counts::MAX_LEVELS;
use kc_cachesim::{derate_shared_llc, CacheConfig};
use serde::{DeError, Deserialize, Serialize, Value};

/// Processor compute model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Sustained floating-point rate (flop/s) for cache-resident work.
    pub flops_per_sec: f64,
}

impl CpuModel {
    /// Seconds for `n` floating-point operations.
    #[inline]
    pub fn flop_time(&self, n: u64) -> f64 {
        n as f64 / self.flops_per_sec
    }
}

/// Per-line service latencies of the memory hierarchy.
///
/// Lines served by L1 are considered covered by the sustained flop
/// rate (latency 0 by convention in the presets); deeper levels add
/// stall time per line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemTiming {
    /// Seconds per line served at cache level i (0-based).
    pub hit_time: [f64; MAX_LEVELS],
    /// Seconds per line served by main memory.
    pub memory_time: f64,
}

/// LogGP-style network model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Sender CPU overhead per message (seconds).
    pub send_overhead: f64,
    /// Receiver CPU overhead per message (seconds).
    pub recv_overhead: f64,
    /// Wire latency (seconds).
    pub latency: f64,
    /// Wire bandwidth (bytes/second).
    pub bandwidth: f64,
    /// NIC injection bandwidth (bytes/second): consecutive sends from
    /// one rank serialize at this rate, so bursts of messages queue.
    pub injection_bandwidth: f64,
    /// Switch contention: effective latency is
    /// `latency * (1 + contention * (p - 1))` for a `p`-rank job,
    /// modelling the shared SP switch fabric.
    pub contention: f64,
}

impl NetModel {
    /// Effective wire latency for a job of `p` ranks.
    #[inline]
    pub fn effective_latency(&self, p: usize) -> f64 {
        self.latency * (1.0 + self.contention * (p.saturating_sub(1)) as f64)
    }

    /// Wire transfer time for a message of `bytes`.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth
    }
}

/// Measurement-noise model for the simulated timers.
///
/// The paper's class-S predictions are poor because "the predicted
/// execution time is so small, that measuring errors get magnified
/// quickly"; this model reproduces that: a sampled time is the true
/// time plus a fixed noise floor plus a proportional term, both drawn
/// from a seeded deterministic generator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimerModel {
    /// Standard deviation of the absolute noise floor (seconds) —
    /// timer granularity, interrupt jitter, daemon activity.
    pub noise_floor: f64,
    /// Standard deviation of the proportional noise (fraction of the
    /// true time).
    pub noise_frac: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
}

/// Node-level topology: how many ranks share a node (and therefore
/// its last-level cache).
///
/// The uniprocessor-per-rank machines of the paper's era have no node
/// model; multicore configs set one and the runtime derates the
/// shared LLC via [`MachineConfig::effective_for_ranks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeModel {
    /// Cores per node; ranks are packed densely, so up to this many
    /// ranks contend for the node's last cache level.
    pub cores_per_node: usize,
}

/// Full machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Compute model.
    pub cpu: CpuModel,
    /// Cache levels, L1 first.
    pub caches: Vec<CacheConfig>,
    /// Memory timing.
    pub mem: MemTiming,
    /// Network model.
    pub net: NetModel,
    /// Timer noise model.
    pub timer: TimerModel,
    /// Record a per-rank communication event trace during runs
    /// (sends, receives and their wait times).  Off by default; useful
    /// for debugging pipeline schedules and for the trace-based
    /// examples.
    pub trace_comm: bool,
    /// Node topology for multicore machines (`None` = one rank per
    /// node, the paper-era default).
    pub node: Option<NodeModel>,
}

// Hand-written (de)serialization: the `node` field is emitted only
// when set.  `fingerprint()` hashes the canonical JSON form, and
// every cell in every persisted store embeds that fingerprint — so
// the legacy single-core configs must keep producing byte-identical
// JSON (a derive would emit `"node":null` and silently invalidate
// every golden cell store).
impl Serialize for MachineConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("cpu".to_string(), self.cpu.to_value()),
            ("caches".to_string(), self.caches.to_value()),
            ("mem".to_string(), self.mem.to_value()),
            ("net".to_string(), self.net.to_value()),
            ("timer".to_string(), self.timer.to_value()),
            ("trace_comm".to_string(), self.trace_comm.to_value()),
        ];
        if let Some(node) = &self.node {
            fields.push(("node".to_string(), node.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for MachineConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = serde::__private::expect_object(v, "MachineConfig")?;
        Ok(MachineConfig {
            name: serde::__private::field(obj, "name")?,
            cpu: serde::__private::field(obj, "cpu")?,
            caches: serde::__private::field(obj, "caches")?,
            mem: serde::__private::field(obj, "mem")?,
            net: serde::__private::field(obj, "net")?,
            timer: serde::__private::field(obj, "timer")?,
            trace_comm: serde::__private::field_or_default(obj, "trace_comm")?,
            node: serde::__private::field_or_default(obj, "node")?,
        })
    }
}

impl MachineConfig {
    /// The calibrated stand-in for the paper's IBM SP: 120 MHz P2SC
    /// nodes (sustained ~120 Mflop/s here), 128 KiB L1, a 4 MiB
    /// second-level cache, and an SP-switch-like network (~30 us
    /// latency, ~90 MB/s).
    ///
    /// Capacities are chosen so the per-processor working sets of the
    /// paper's benchmark classes land in the same cache regimes the
    /// paper reports: BT class S fits in L1, class W spills L1 but fits
    /// L2, class A at small processor counts exceeds L2.
    pub fn ibm_sp_p2sc() -> Self {
        MachineConfig {
            name: "ibm-sp-p2sc".to_string(),
            cpu: CpuModel {
                flops_per_sec: 120.0e6,
            },
            caches: vec![
                CacheConfig {
                    capacity: 128 * 1024,
                    line: 128,
                    ways: 4,
                },
                CacheConfig {
                    capacity: 4 * 1024 * 1024,
                    line: 128,
                    ways: 8,
                },
            ],
            mem: MemTiming {
                hit_time: [0.0, 100.0e-9, 0.0, 0.0],
                memory_time: 600.0e-9,
            },
            net: NetModel {
                send_overhead: 12.0e-6,
                recv_overhead: 12.0e-6,
                latency: 30.0e-6,
                bandwidth: 90.0e6,
                injection_bandwidth: 120.0e6,
                contention: 0.02,
            },
            timer: TimerModel {
                noise_floor: 0.3e-3,
                noise_frac: 0.004,
                seed: 0x5eed_c0de,
            },
            trace_comm: false,
            node: None,
        }
    }

    /// A commodity Beowulf-style cluster of the same era: faster
    /// commodity CPUs, a smaller L2, and Fast-Ethernet-class
    /// networking (two orders of magnitude worse latency and an order
    /// less bandwidth than the SP switch).  Used by the cross-machine
    /// experiments: the coupling methodology predicts *relative*
    /// performance of different systems (paper §1), and the regimes
    /// move because the memory subsystem differs.
    pub fn ethernet_cluster() -> Self {
        MachineConfig {
            name: "ethernet-cluster".to_string(),
            cpu: CpuModel {
                flops_per_sec: 250.0e6,
            },
            caches: vec![
                CacheConfig {
                    capacity: 32 * 1024,
                    line: 128,
                    ways: 4,
                },
                CacheConfig {
                    capacity: 512 * 1024,
                    line: 128,
                    ways: 8,
                },
            ],
            mem: MemTiming {
                hit_time: [0.0, 80.0e-9, 0.0, 0.0],
                memory_time: 400.0e-9,
            },
            net: NetModel {
                send_overhead: 50.0e-6,
                recv_overhead: 50.0e-6,
                latency: 120.0e-6,
                bandwidth: 12.0e6,
                injection_bandwidth: 12.0e6,
                contention: 0.05,
            },
            timer: TimerModel {
                noise_floor: 0.3e-3,
                noise_frac: 0.004,
                seed: 0x5eed_c0de,
            },
            trace_comm: false,
            node: None,
        }
    }

    /// A tiny, fast machine for unit tests: single small cache level,
    /// cheap network, no timer noise.
    pub fn test_tiny() -> Self {
        MachineConfig {
            name: "test-tiny".to_string(),
            cpu: CpuModel {
                flops_per_sec: 1.0e9,
            },
            caches: vec![CacheConfig {
                capacity: 8 * 1024,
                line: 64,
                ways: 4,
            }],
            mem: MemTiming {
                hit_time: [0.0; MAX_LEVELS],
                memory_time: 100.0e-9,
            },
            net: NetModel {
                send_overhead: 1.0e-6,
                recv_overhead: 1.0e-6,
                latency: 5.0e-6,
                bandwidth: 100.0e6,
                injection_bandwidth: 200.0e6,
                contention: 0.0,
            },
            timer: TimerModel {
                noise_floor: 0.0,
                noise_frac: 0.0,
                seed: 1,
            },
            trace_comm: false,
            node: None,
        }
    }

    /// A 4-way multicore SMP node built from the same P2SC-class
    /// memory subsystem: private 128 KiB L1s, a **shared** 4 MiB LLC,
    /// and a slightly better interconnect (intra-node traffic rides
    /// shared memory).  With four ranks packed per node each rank's
    /// effective LLC share is 1 MiB (see
    /// [`MachineConfig::effective_for_ranks`]), which moves the
    /// working-set cache crossings — and therefore the coupling
    /// regimes — relative to the uniprocessor SP at the same problem
    /// sizes.
    pub fn multicore_smp() -> Self {
        MachineConfig {
            name: "multicore-smp".to_string(),
            cpu: CpuModel {
                flops_per_sec: 120.0e6,
            },
            caches: vec![
                CacheConfig {
                    capacity: 128 * 1024,
                    line: 128,
                    ways: 4,
                },
                CacheConfig {
                    capacity: 4 * 1024 * 1024,
                    line: 128,
                    ways: 8,
                },
            ],
            mem: MemTiming {
                hit_time: [0.0, 100.0e-9, 0.0, 0.0],
                memory_time: 600.0e-9,
            },
            net: NetModel {
                send_overhead: 8.0e-6,
                recv_overhead: 8.0e-6,
                latency: 20.0e-6,
                bandwidth: 150.0e6,
                injection_bandwidth: 200.0e6,
                contention: 0.015,
            },
            timer: TimerModel {
                noise_floor: 0.3e-3,
                noise_frac: 0.004,
                seed: 0x5eed_c0de,
            },
            trace_comm: false,
            node: Some(NodeModel { cores_per_node: 4 }),
        }
    }

    /// How many ranks of a `p`-rank job contend for one node's shared
    /// cache: ranks pack densely, so a node holds
    /// `min(p, cores_per_node)` of them (1 for machines without a node
    /// model).
    pub fn co_resident_ranks(&self, p: usize) -> usize {
        match &self.node {
            Some(node) => p.clamp(1, node.cores_per_node.max(1)),
            None => 1,
        }
    }

    /// The machine one rank of a `p`-rank job *effectively* runs on:
    /// identical to `self` except that the last cache level's capacity
    /// is split across the ranks co-resident on a node
    /// ([`kc_cachesim::derate_shared_llc`]).  Machines without a node
    /// model (or jobs with a single rank) are returned unchanged.
    ///
    /// Note this derates only the *performance model*; fingerprints
    /// and cell keys are always computed from the declared config, so
    /// the same cell never aliases across different `p` (the key
    /// already includes `p`).
    pub fn effective_for_ranks(&self, p: usize) -> Self {
        let sharers = self.co_resident_ranks(p);
        let mut eff = self.clone();
        if sharers > 1 {
            eff.caches = derate_shared_llc(&eff.caches, sharers);
        }
        eff
    }

    /// A copy with a node model (`cores_per_node` ranks share the
    /// last cache level).
    pub fn with_node(mut self, cores_per_node: usize) -> Self {
        self.node = Some(NodeModel { cores_per_node });
        self
    }

    /// A copy of this machine with all timer noise disabled; useful for
    /// tests that need exact times.
    pub fn without_noise(mut self) -> Self {
        self.timer.noise_floor = 0.0;
        self.timer.noise_frac = 0.0;
        self
    }

    /// A copy with a different noise seed (for repeated-measurement
    /// experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.timer.seed = seed;
        self
    }

    /// A copy with communication-event tracing enabled.
    pub fn with_comm_trace(mut self) -> Self {
        self.trace_comm = true;
        self
    }

    /// A content fingerprint of the full configuration: an FNV-1a hash
    /// of its canonical JSON form, as 16 hex digits.
    ///
    /// Any change anywhere in the config — a cache capacity, the
    /// network contention coefficient, the timer noise model or its
    /// seed — yields a different fingerprint, which is what lets
    /// measurement caches key cells on the machine they ran on and
    /// never serve a cell measured under different hardware.
    pub fn fingerprint(&self) -> String {
        let json = serde_json::to_string(self).expect("machine config serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometry_is_valid() {
        // constructing the hierarchy validates capacities/lines
        let cfg = MachineConfig::ibm_sp_p2sc();
        let h = kc_cachesim::CacheHierarchy::new(cfg.caches.clone());
        assert_eq!(h.depth(), 2);
        assert_eq!(h.capacity(0), 128 * 1024);
    }

    #[test]
    fn flop_time_scales() {
        let cpu = CpuModel {
            flops_per_sec: 100.0e6,
        };
        assert!((cpu.flop_time(100_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_grows_with_ranks() {
        let net = MachineConfig::ibm_sp_p2sc().net;
        assert!(net.effective_latency(25) > net.effective_latency(4));
        assert_eq!(net.effective_latency(1), net.latency);
    }

    #[test]
    fn without_noise_zeroes_timer() {
        let cfg = MachineConfig::ibm_sp_p2sc().without_noise();
        assert_eq!(cfg.timer.noise_floor, 0.0);
        assert_eq!(cfg.timer.noise_frac, 0.0);
    }

    #[test]
    fn fingerprint_tracks_configuration_content() {
        let base = MachineConfig::ibm_sp_p2sc();
        assert_eq!(base.fingerprint(), base.clone().fingerprint(), "stable");
        assert_eq!(base.fingerprint().len(), 16);
        assert_ne!(
            base.fingerprint(),
            MachineConfig::ethernet_cluster().fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().without_noise().fingerprint()
        );
        assert_ne!(base.fingerprint(), base.clone().with_seed(99).fingerprint());
        let mut bigger_l2 = base.clone();
        bigger_l2.caches[1].capacity *= 2;
        assert_ne!(base.fingerprint(), bigger_l2.fingerprint());
    }

    #[test]
    fn single_core_configs_serialize_without_a_node_key() {
        // Fingerprints hash the JSON form; legacy configs must keep
        // producing the exact bytes they did before `node` existed.
        for cfg in [
            MachineConfig::ibm_sp_p2sc(),
            MachineConfig::ethernet_cluster(),
            MachineConfig::test_tiny(),
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            assert!(!json.contains("node"), "unexpected node key in {json}");
        }
        let multi = MachineConfig::multicore_smp();
        let json = serde_json::to_string(&multi).unwrap();
        assert!(json.contains("\"node\""));
        assert!(json.contains("\"cores_per_node\""));
    }

    #[test]
    fn machine_config_roundtrips_with_and_without_node() {
        for cfg in [MachineConfig::ibm_sp_p2sc(), MachineConfig::multicore_smp()] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: MachineConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn legacy_json_without_node_deserializes() {
        let json = serde_json::to_string(&MachineConfig::ibm_sp_p2sc()).unwrap();
        assert!(!json.contains("node"));
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node, None);
    }

    #[test]
    fn node_model_changes_the_fingerprint() {
        let base = MachineConfig::ibm_sp_p2sc();
        assert_ne!(base.fingerprint(), base.clone().with_node(4).fingerprint());
        assert_ne!(
            base.clone().with_node(2).fingerprint(),
            base.with_node(4).fingerprint()
        );
    }

    #[test]
    fn effective_for_ranks_derates_only_the_shared_llc() {
        let smp = MachineConfig::multicore_smp();
        // one rank: uncontended
        assert_eq!(smp.effective_for_ranks(1), smp);
        // two ranks: LLC halves
        let eff2 = smp.effective_for_ranks(2);
        assert_eq!(eff2.caches[1].capacity, 2 * 1024 * 1024);
        // four or more ranks: a node is full at 4 sharers
        for p in [4, 9, 16, 25] {
            let eff = smp.effective_for_ranks(p);
            assert_eq!(eff.caches[0], smp.caches[0], "L1 is private");
            assert_eq!(eff.caches[1].capacity, 1024 * 1024, "p={p}");
            assert_eq!(eff.net, smp.net, "network model untouched");
        }
        // machines without a node model never derate
        let sp = MachineConfig::ibm_sp_p2sc();
        assert_eq!(sp.effective_for_ranks(25), sp);
    }
}
