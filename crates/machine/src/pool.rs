//! Persistent rank pools: keep `p` worker threads alive across cell
//! executions so the hot measurement loop pays thread spawn + join
//! once per scheduler worker, not once per cell.
//!
//! # Rig lifecycle
//!
//! A [`RankPool`] owns *rigs*, keyed by rank count.  A rig is one set
//! of `p` parked OS threads (`kc-rank-<r>`) plus the per-size state
//! that is reset rather than reallocated between runs:
//!
//! * the message channels — cloned `Sender`/`Receiver` halves are
//!   handed to each run's fresh `CommEndpoint`s; any frames a
//!   misbehaving program left behind are drained at the start of the
//!   next run so every run still begins from empty queues;
//! * the `CollectiveState` — its `exchange` deposits before it
//!   folds, so every slot is overwritten before it is read, and the
//!   barrier resets itself after each wait.
//!
//! Everything whose content is per-run (the perf clock, the comm
//! endpoint with its pending list, NIC serialization horizon, stats
//! and trace buffer) is rebuilt each run by the same
//! `cluster::execute_rank` the spawned path uses, so the two paths
//! produce byte-identical virtual timelines — only *where* the
//! closures execute changes, and the timeline never depended on that.
//!
//! `run_on` checks a rig *out* of the pool for the duration of one
//! run, so concurrent runs at the same rank count get distinct rigs
//! (and distinct channels/barriers) instead of colliding.
//!
//! # Poisoning
//!
//! If any rank's program panics, the rig is *not* checked back in:
//! its channels may hold partial frames and its barrier may be out of
//! step.  The rig is dropped — disconnecting the job channels lets
//! idle workers exit on their own — and the caller observes the same
//! `"rank thread panicked"` panic the spawned path raises.  The next
//! run at that rank count builds a fresh rig; a poisoned pool is
//! rebuilt, never deadlocked.

use crate::cluster::{execute_rank, Cluster, CollectiveState, RankCtx, RankReport, RunOutcome};
use crate::comm::Message;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Type-erased body of one run, called once per rank on that rank's
/// parked worker.
type Task = dyn Fn(usize) + Sync;

/// One unit of work for a parked worker: a borrowed task whose
/// referent [`run_on`] keeps alive until every worker acknowledged.
struct Job {
    task: *const Task,
}

// SAFETY: the pointee is `Sync`, and `run_on` does not return (or
// unwind) before every worker has acknowledged completion, so the
// borrow outlives every dereference.
unsafe impl Send for Job {}

/// One set of `p` parked worker threads with their reusable message
/// channels and collective state.
struct Rig {
    job_txs: Vec<Sender<Job>>,
    done_rx: Receiver<bool>,
    coll: CollectiveState,
    msg_senders: Vec<Sender<Message>>,
    msg_receivers: Vec<Receiver<Message>>,
}

impl Rig {
    fn build(p: usize) -> Self {
        let mut msg_senders = Vec::with_capacity(p);
        let mut msg_receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded::<Message>();
            msg_senders.push(s);
            msg_receivers.push(r);
        }
        let (done_tx, done_rx) = unbounded::<bool>();
        let mut job_txs = Vec::with_capacity(p);
        for rank in 0..p {
            let (tx, rx) = unbounded::<Job>();
            job_txs.push(tx);
            let done = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("kc-rank-{rank}"))
                .spawn(move || worker_loop(rx, done))
                .expect("failed to spawn rank-pool worker");
        }
        Self {
            job_txs,
            done_rx,
            coll: CollectiveState::new(p),
            msg_senders,
            msg_receivers,
        }
    }
}

/// A parked worker: block on the job channel, run each task under
/// `catch_unwind`, acknowledge with a success flag.  Exits when its
/// rig is dropped (the job channel disconnects).
fn worker_loop(jobs: Receiver<Job>, done: Sender<bool>) {
    let rank = rank_of_current_thread();
    while let Ok(job) = jobs.recv() {
        // SAFETY: `run_on` keeps the task alive until our ack below.
        let task = unsafe { &*job.task };
        let ok = catch_unwind(AssertUnwindSafe(|| task(rank))).is_ok();
        if done.send(ok).is_err() {
            break;
        }
    }
}

/// Recover this worker's rank from its `kc-rank-<r>` thread name.
fn rank_of_current_thread() -> usize {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("kc-rank-"))
        .and_then(|r| r.parse().ok())
        .expect("rank-pool worker thread must be named kc-rank-<r>")
}

/// A pool of parked rank-worker rigs, keyed by rank count.
///
/// Every thread gets one implicitly through [`Cluster::run`]; hold one
/// explicitly (e.g. in a bench) to control reuse with
/// [`Cluster::run_on`].
#[derive(Default)]
pub struct RankPool {
    rigs: Mutex<HashMap<usize, Vec<Rig>>>,
}

impl RankPool {
    /// An empty pool; rigs are built on first use per rank count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take an idle rig for `p` ranks out of the pool, building one if
    /// none is parked.
    fn checkout(&self, p: usize) -> Rig {
        let parked = self
            .rigs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&p)
            .and_then(Vec::pop);
        parked.unwrap_or_else(|| Rig::build(p))
    }

    /// Park a healthy rig for reuse.
    fn checkin(&self, p: usize, rig: Rig) {
        self.rigs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(p)
            .or_default()
            .push(rig);
    }
}

/// Run `program` on `p` ranks drawn from `pool` (see module docs for
/// the rig lifecycle).  Implements [`Cluster::run_on`].
pub(crate) fn run_on<T, F>(
    cluster: &Cluster,
    pool: &RankPool,
    p: usize,
    program: &F,
) -> RunOutcome<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    assert!(p > 0, "need at least one rank");
    let rig = pool.checkout(p);
    // reset point: a previous run on this rig may have left frames
    // behind (a program that exited with unconsumed messages); drain
    // *before* dispatching any work — no rank is sending yet, so this
    // cannot race with the run's own traffic — and every run starts
    // from empty queues exactly like a freshly spawned one.
    for receiver in &rig.msg_receivers {
        while receiver.try_recv().is_ok() {}
    }
    let config = cluster.config();
    let outcomes: Vec<Mutex<Option<(RankReport, T)>>> = (0..p).map(|_| Mutex::new(None)).collect();
    {
        let rig = &rig;
        let outcomes = &outcomes;
        let task = move |rank: usize| {
            let receiver = rig.msg_receivers[rank].clone();
            let out = execute_rank(
                config,
                p,
                rank,
                rig.msg_senders.clone(),
                receiver,
                &rig.coll,
                program,
            );
            *outcomes[rank].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        };
        let erased: *const (dyn Fn(usize) + Sync + '_) = &task;
        // SAFETY: lifetime erasure only — the ack loop below does not
        // finish until every worker is done with the task, and it runs
        // before `task` is dropped even on the panic path.
        let job_ptr: *const Task = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const Task>(erased)
        };
        for tx in &rig.job_txs {
            if tx.send(Job { task: job_ptr }).is_err() {
                unreachable!("rank-pool worker channel closed while the rig was checked out");
            }
        }
        let mut panicked = false;
        for _ in 0..p {
            panicked |= !rig.done_rx.recv().expect("rank-pool worker died");
        }
        if panicked {
            // poison: panicking past `checkin` drops the rig instead
            // of parking it; the next run at this rank count builds a
            // fresh one.
            panic!("rank thread panicked");
        }
    }
    pool.checkin(p, rig);

    let mut reports = Vec::with_capacity(p);
    let mut results = Vec::with_capacity(p);
    for slot in outcomes {
        let (rep, res) = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("rank produced no outcome");
        reports.push(rep);
        results.push(res);
    }
    RunOutcome { reports, results }
}

thread_local! {
    static LOCAL_POOL: RankPool = RankPool::new();
}

/// Run `f` with this thread's persistent pool (built on first use;
/// its parked workers exit when the thread does).
pub(crate) fn with_local_pool<R>(f: impl FnOnce(&RankPool) -> R) -> R {
    LOCAL_POOL.with(f)
}

/// Process-wide pooling override: 0 = follow `KC_RANK_POOL` (default
/// on), 1 = forced off, 2 = forced on.
static POOLING_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether [`Cluster::run`] routes through the thread's persistent
/// pool (default) or spawns fresh rank threads per run.
pub fn rank_pooling_enabled() -> bool {
    match POOLING_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                !matches!(
                    std::env::var("KC_RANK_POOL").as_deref(),
                    Ok("0") | Ok("off") | Ok("false")
                )
            })
        }
    }
}

/// Force pooling on or off process-wide, overriding `KC_RANK_POOL`.
/// Outcomes are identical either way; this exists for byte-identity
/// gates and benches that compare the two paths.
pub fn set_rank_pooling(enabled: bool) {
    POOLING_OVERRIDE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use std::thread::ThreadId;

    fn cluster() -> Cluster {
        Cluster::new(MachineConfig::test_tiny())
    }

    fn ring(ctx: &mut RankCtx) -> (f64, ThreadId) {
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.flops((ctx.rank() as u64 + 1) * 100_000);
        ctx.send(right, 0, vec![ctx.rank() as f64]);
        let m = ctx.recv(left, 0);
        ctx.barrier();
        (ctx.now() + m.data[0], std::thread::current().id())
    }

    #[test]
    fn pooled_run_matches_spawned_run() {
        let pool = RankPool::new();
        let pooled = cluster().run_on(&pool, 4, ring);
        let spawned = cluster().run_spawned(4, ring);
        let times = |out: &RunOutcome<(f64, ThreadId)>| {
            out.results.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        };
        assert_eq!(times(&pooled), times(&spawned));
        assert_eq!(pooled.elapsed(), spawned.elapsed());
        assert_eq!(pooled.total_messages(), spawned.total_messages());
        assert_eq!(pooled.total_bytes(), spawned.total_bytes());
    }

    #[test]
    fn pool_reuses_the_same_worker_threads_across_runs() {
        let pool = RankPool::new();
        let first = cluster().run_on(&pool, 3, ring);
        let second = cluster().run_on(&pool, 3, ring);
        let ids = |out: &RunOutcome<(f64, ThreadId)>| {
            out.results.iter().map(|(_, id)| *id).collect::<Vec<_>>()
        };
        assert_eq!(
            ids(&first),
            ids(&second),
            "a parked rig must be reused, not respawned"
        );
        // a different rank count gets its own rig
        let other = cluster().run_on(&pool, 2, ring);
        assert!(ids(&other).iter().all(|id| !ids(&first).contains(id)));
    }

    #[test]
    fn poisoned_rig_is_rebuilt_not_deadlocked() {
        let pool = RankPool::new();
        let healthy = cluster().run_on(&pool, 4, ring);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            cluster().run_on(&pool, 4, |ctx: &mut RankCtx| {
                // rank 2 dies before any collective, so every worker
                // still acknowledges and nothing blocks
                assert!(ctx.rank() != 2, "injected rank failure");
                std::thread::current().id()
            })
        }));
        assert!(panicked.is_err(), "rank panics must propagate");

        // the next run at the same rank count succeeds on a fresh rig
        let rebuilt = cluster().run_on(&pool, 4, ring);
        let times = |out: &RunOutcome<(f64, ThreadId)>| {
            out.results.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        };
        assert_eq!(times(&rebuilt), times(&healthy));
        let healthy_ids: Vec<ThreadId> = healthy.results.iter().map(|(_, id)| *id).collect();
        let rebuilt_ids: Vec<ThreadId> = rebuilt.results.iter().map(|(_, id)| *id).collect();
        assert!(
            rebuilt_ids.iter().all(|id| !healthy_ids.contains(id)),
            "a poisoned rig must be dropped and rebuilt with fresh workers"
        );
    }

    #[test]
    fn run_respects_the_pooling_toggle() {
        // both paths compute the same timeline; this only proves the
        // toggle routes without breaking either path
        let reference = cluster().run_spawned(2, |ctx: &mut RankCtx| {
            ctx.flops(1_000_000);
            ctx.barrier();
            ctx.now()
        });
        set_rank_pooling(false);
        let cold = cluster().run(2, |ctx| {
            ctx.flops(1_000_000);
            ctx.barrier();
            ctx.now()
        });
        set_rank_pooling(true);
        let pooled = cluster().run(2, |ctx| {
            ctx.flops(1_000_000);
            ctx.barrier();
            ctx.now()
        });
        POOLING_OVERRIDE.store(0, Ordering::Relaxed);
        assert_eq!(cold.results, reference.results);
        assert_eq!(pooled.results, reference.results);
    }
}
