//! # kc-machine
//!
//! A deterministic simulated message-passing cluster.
//!
//! The HPDC 2002 kernel-coupling study ran the NAS Parallel Benchmarks
//! on an 80-processor IBM SP (120 MHz P2SC nodes).  This crate is the
//! stand-in for that machine: every simulated rank runs as a real OS
//! thread executing real (or profiled) kernel code, but *time* is
//! virtual — each rank carries its own clock that advances according to
//! a calibrated performance model:
//!
//! * **Compute** — a flop-rate model ([`config::CpuModel`]).
//! * **Memory** — a per-rank two-level cache simulator
//!   (`kc-cachesim`); kernels describe their traffic as region touches
//!   and pay per-line service latencies depending on which level
//!   supplies the line ([`perf::PerfContext`]).
//! * **Communication** — a LogGP-style model with sender/receiver
//!   overheads, wire latency, bandwidth and NIC serialization
//!   ([`comm`]); message *causality* is exact: a receive completes no
//!   earlier than the matching send's arrival timestamp, so pipeline
//!   fill/drain and wait times compose exactly as they would on a real
//!   machine.
//! * **Measurement noise** — a seeded timer model ([`timer`])
//!   reproducing the paper's observation that tiny class-S timings are
//!   dominated by measurement error.
//!
//! Determinism: receives are always matched by `(source, tag)`, never
//! by wildcard, and collectives reduce over all ranks, so the virtual
//! clocks are a pure function of the program and the machine config —
//! independent of OS scheduling.
//!
//! ```
//! use kc_machine::{Cluster, MachineConfig};
//!
//! let cfg = MachineConfig::test_tiny();
//! let out = Cluster::new(cfg).run(4, |ctx| {
//!     // a toy ring: everyone passes a token to the right
//!     let right = (ctx.rank() + 1) % ctx.size();
//!     let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
//!     ctx.send(right, 7, vec![ctx.rank() as f64]);
//!     let msg = ctx.recv(left, 7);
//!     ctx.flops(1000);
//!     msg.data[0]
//! });
//! assert_eq!(out.results[2], 1.0);
//! assert!(out.elapsed() > 0.0);
//! ```

pub mod cluster;
pub mod comm;
pub mod config;
pub mod perf;
pub mod pool;
pub mod timer;

pub use cluster::{Cluster, RankCtx, RunOutcome};
pub use comm::{CommEvent, Message};
pub use config::{CpuModel, MachineConfig, MemTiming, NetModel, NodeModel, TimerModel};
pub use perf::PerfContext;
pub use pool::{rank_pooling_enabled, set_rank_pooling, RankPool};
pub use timer::NoisyTimer;
