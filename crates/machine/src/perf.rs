//! Per-rank performance context: converts kernel-reported work into
//! virtual time.

use crate::config::MachineConfig;
use kc_cachesim::{AccessCounts, CacheHierarchy, RegionId, RegionMap, Span};

/// The per-rank performance model: a virtual clock, a private cache
/// hierarchy and a region map.
///
/// Kernels report their work through three channels:
///
/// * [`PerfContext::flops`] — floating-point operations, charged at the
///   machine's sustained rate;
/// * [`PerfContext::touch`] / [`PerfContext::touch_strided`] — memory
///   traffic against registered regions, charged per line according to
///   which cache level serves it;
/// * raw [`PerfContext::advance`] — anything else (used by the
///   communication layer for overheads).
#[derive(Debug)]
pub struct PerfContext {
    clock: f64,
    hierarchy: CacheHierarchy,
    regions: RegionMap,
    cfg: MachineConfig,
    flops_total: u64,
}

impl PerfContext {
    /// Build the context for one rank of a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            clock: 0.0,
            hierarchy: CacheHierarchy::new(cfg.caches.clone()),
            regions: RegionMap::new(),
            cfg,
            flops_total: 0,
        }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advance the clock by `seconds` (must be non-negative).
    #[inline]
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance clock backwards");
        self.clock += seconds;
    }

    /// Jump the clock forward to `t` if `t` is later (used when a
    /// receive waits on a message that has not arrived yet).
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Charge `n` floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.flops_total += n;
        self.clock += self.cfg.cpu.flop_time(n);
    }

    /// Total flops charged so far.
    #[inline]
    pub fn flops_total(&self) -> u64 {
        self.flops_total
    }

    /// Register a memory region of `size` bytes under `name`.
    pub fn register_region(&mut self, name: &str, size: usize) -> RegionId {
        self.regions.register(name, size)
    }

    /// Charge a contiguous touch of `bytes` bytes at `offset` into
    /// region `id`.
    pub fn touch(&mut self, id: RegionId, offset: usize, bytes: usize) -> AccessCounts {
        let span = self.regions.span(id, offset, bytes);
        let counts = self.hierarchy.touch(span);
        self.clock += self.stall_time(&counts);
        counts
    }

    /// Charge a strided touch: `count` elements of `elem` bytes,
    /// `stride` bytes apart, starting at `offset` into region `id`.
    pub fn touch_strided(
        &mut self,
        id: RegionId,
        offset: usize,
        stride: usize,
        elem: usize,
        count: usize,
    ) -> AccessCounts {
        let base = self.regions.span(id, offset, elem).addr;
        let counts = self
            .hierarchy
            .touch_strided(base, stride as u64, elem as u64, count as u64);
        self.clock += self.stall_time(&counts);
        counts
    }

    /// Stall seconds implied by a set of access counts.
    pub fn stall_time(&self, counts: &AccessCounts) -> f64 {
        let mut t = counts.memory as f64 * self.cfg.mem.memory_time;
        for (level, &hits) in counts.hits.iter().enumerate() {
            t += hits as f64 * self.cfg.mem.hit_time[level];
        }
        t
    }

    /// Running cache totals for this rank.
    pub fn cache_totals(&self) -> AccessCounts {
        self.hierarchy.totals()
    }

    /// Invalidate the caches (cold restart) without resetting the
    /// clock; used between measurement repetitions when a cold-cache
    /// protocol is wanted.
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush();
    }

    /// The machine configuration this context was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Direct access to a whole-region span (for code that needs the
    /// raw addresses, e.g. custom access patterns).
    pub fn region_span(&self, id: RegionId, offset: usize, bytes: usize) -> Span {
        self.regions.span(id, offset, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn ctx() -> PerfContext {
        PerfContext::new(MachineConfig::test_tiny())
    }

    #[test]
    fn flops_advance_clock() {
        let mut c = ctx();
        c.flops(1_000_000); // 1e6 flops at 1e9 flop/s = 1 ms
        assert!((c.now() - 1.0e-3).abs() < 1e-12);
        assert_eq!(c.flops_total(), 1_000_000);
    }

    #[test]
    fn cold_touch_costs_memory_time() {
        let mut c = ctx();
        let r = c.register_region("a", 64 * 10);
        let counts = c.touch(r, 0, 64 * 10);
        assert_eq!(counts.misses_to_memory(), 10);
        assert!((c.now() - 10.0 * 100.0e-9).abs() < 1e-15);
    }

    #[test]
    fn warm_touch_is_free_on_tiny_machine() {
        // test_tiny charges nothing for L1 hits
        let mut c = ctx();
        let r = c.register_region("a", 64 * 4);
        c.touch(r, 0, 64 * 4);
        let t = c.now();
        c.touch(r, 0, 64 * 4);
        assert_eq!(c.now(), t);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut c = ctx();
        c.advance(1.0);
        c.advance_to(0.5);
        assert_eq!(c.now(), 1.0);
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn flush_caches_forces_cold_misses_again() {
        let mut c = ctx();
        let r = c.register_region("a", 64 * 4);
        c.touch(r, 0, 64 * 4);
        c.flush_caches();
        let counts = c.touch(r, 0, 64 * 4);
        assert_eq!(counts.misses_to_memory(), 4);
    }

    #[test]
    fn strided_touch_charges_distinct_lines() {
        let mut c = ctx();
        let r = c.register_region("a", 4096);
        let counts = c.touch_strided(r, 0, 256, 8, 4);
        assert_eq!(counts.total(), 4);
    }
}
