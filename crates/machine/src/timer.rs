//! Deterministic measurement-noise model.
//!
//! Real performance measurements carry error from timer granularity,
//! interrupts and system daemons.  The paper's class-S experiments are
//! dominated by exactly this effect.  [`NoisyTimer`] adds a seeded,
//! reproducible perturbation to a true virtual time: an absolute floor
//! term plus a proportional term, both approximately Gaussian.

use crate::config::TimerModel;

/// A deterministic noisy timer.
///
/// Each call to [`NoisyTimer::sample`] consumes one position in the
/// noise stream, so repeated measurements of the same quantity differ
/// — exactly like back-to-back stopwatch readings on a real system —
/// while whole experiments replay bit-identically for a fixed seed.
#[derive(Clone, Debug)]
pub struct NoisyTimer {
    model: TimerModel,
    counter: u64,
}

impl NoisyTimer {
    /// A timer using the given noise model.
    pub fn new(model: TimerModel) -> Self {
        Self { model, counter: 0 }
    }

    /// Perturb `true_time` (seconds).  Results are clamped to be
    /// non-negative; a disabled model (all-zero noise) returns the
    /// input exactly.
    pub fn sample(&mut self, true_time: f64) -> f64 {
        self.counter += 1;
        if self.model.noise_floor == 0.0 && self.model.noise_frac == 0.0 {
            return true_time;
        }
        let g1 = gaussian(self.model.seed, self.counter, 0);
        let g2 = gaussian(self.model.seed, self.counter, 1);
        let noisy =
            true_time * (1.0 + self.model.noise_frac * g1) + self.model.noise_floor * g2.abs();
        noisy.max(0.0)
    }

    /// Number of samples drawn so far.
    pub fn samples_drawn(&self) -> u64 {
        self.counter
    }

    /// Reset the stream to its beginning.
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Approximately standard-normal deviate from `(seed, counter, lane)`,
/// via the sum of four uniforms (Irwin–Hall, variance-corrected).
fn gaussian(seed: u64, counter: u64, lane: u64) -> f64 {
    let mut acc = 0.0;
    for i in 0..4u64 {
        let h = splitmix64(seed ^ counter.wrapping_mul(0x100_0000_01b3) ^ (lane << 32) ^ i);
        acc += (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0,1)
    }
    // sum of 4 uniforms: mean 2, variance 4/12; normalize
    (acc - 2.0) / (4.0f64 / 12.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(floor: f64, frac: f64) -> TimerModel {
        TimerModel {
            noise_floor: floor,
            noise_frac: frac,
            seed: 42,
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut t = NoisyTimer::new(model(0.0, 0.0));
        assert_eq!(t.sample(1.5), 1.5);
        assert_eq!(t.sample(0.0), 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = NoisyTimer::new(model(1e-3, 0.01));
        let mut b = NoisyTimer::new(model(1e-3, 0.01));
        for _ in 0..10 {
            assert_eq!(a.sample(2.0), b.sample(2.0));
        }
    }

    #[test]
    fn consecutive_samples_differ() {
        let mut t = NoisyTimer::new(model(1e-3, 0.01));
        let s1 = t.sample(2.0);
        let s2 = t.sample(2.0);
        assert_ne!(s1, s2);
    }

    #[test]
    fn samples_never_negative() {
        let mut t = NoisyTimer::new(model(1.0, 0.5));
        for _ in 0..100 {
            assert!(t.sample(1e-9) >= 0.0);
        }
    }

    #[test]
    fn relative_error_grows_as_times_shrink() {
        // the class-S effect: with a fixed noise floor, small true
        // times have much larger relative error
        let m = model(1e-3, 0.002);
        let mut t = NoisyTimer::new(m);
        let mut rel = |true_t: f64| {
            let mut worst: f64 = 0.0;
            for _ in 0..50 {
                let s = t.sample(true_t);
                worst = worst.max(((s - true_t) / true_t).abs());
            }
            worst
        };
        let small = rel(5e-3);
        let large = rel(50.0);
        assert!(small > 10.0 * large, "small={small} large={large}");
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let n = 10_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let g = gaussian(7, i, 0);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reset_replays_stream() {
        let mut t = NoisyTimer::new(model(1e-3, 0.01));
        let first = t.sample(1.0);
        t.reset();
        assert_eq!(t.sample(1.0), first);
    }
}
