//! The run-history sidecar: persistent per-run aggregates next to a
//! cell store.
//!
//! A campaign's observability dies with its process: `RunSummary`
//! aggregates and the cell store's backend counters are computed,
//! printed and forgotten.  This module gives them a durable home — a
//! JSON-lines sidecar file (by convention `STORE.history.jsonl`, see
//! `kc_prophesy::history_sidecar`) holding one [`HistoryRecord`] per
//! campaign run:
//!
//! * the end-of-run [`RunSummary`] (cache hit rate, per-benchmark cell
//!   counts, parallel efficiency, slowest cells),
//! * the persistent backend's traffic counters ([`BackendCounters`],
//!   the serializable mirror of `kc_prophesy::BackendStats`),
//! * every measured `CellExecuted` duration, keyed by canonical cell
//!   key — the raw material for measured-cost scheduling
//!   (`kc_experiments::MeasuredCost`) on the *next* run.
//!
//! Appends are a single `O_APPEND` write of one line, so repeated
//! campaigns accumulate records without rewriting the file.  Loading
//! is **corrupt-line tolerant**: a truncated trailing line (the
//! process died mid-append) or a damaged middle line is skipped and
//! counted, never fatal — history is advisory data, and losing one
//! run's record must not take the other runs down with it.

use crate::telemetry::{RunSummary, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Serializable backend traffic counters (one campaign run's worth),
/// mirroring `kc_prophesy::BackendStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendCounters {
    /// `load` calls (cache misses that consulted the store).
    pub loads: u64,
    /// `load` calls answered from stored samples.
    pub load_hits: u64,
    /// `store` calls (fresh executions written back).
    pub stores: u64,
    /// `load` calls that failed with an I/O error and were answered
    /// as misses; absent (0) on records from before the counter
    /// existed.
    #[serde(default)]
    pub read_errors: u64,
}

/// One campaign run's durable record: the end-of-run aggregates plus
/// the measured per-cell execution durations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// End-of-run aggregates (the same `RunSummary` the `--metrics`
    /// printer shows).
    pub summary: RunSummary,
    /// Persistent-backend counters, when the run had a backend.
    pub backend: Option<BackendCounters>,
    /// Measured `CellExecuted` wall-clock seconds per canonical cell
    /// key — the measured cost model for subsequent runs.
    pub cell_durations: BTreeMap<String, f64>,
    /// Bounded-scheduler worker-pool size the run executed under
    /// (`--jobs`), so recorded durations compare like-for-like across
    /// runs; `0` for records written before the bounded scheduler
    /// existed.
    #[serde(default)]
    pub jobs: u64,
}

impl HistoryRecord {
    /// Build a record from a run's summary and its raw event stream,
    /// harvesting every `CellExecuted` duration.
    pub fn from_events(summary: RunSummary, events: &[TelemetryEvent]) -> Self {
        let jobs = summary.scheduler_jobs;
        Self {
            summary,
            backend: None,
            cell_durations: executed_durations(events),
            jobs,
        }
    }

    /// Attach the persistent backend's counters.
    pub fn with_backend(mut self, counters: BackendCounters) -> Self {
        self.backend = Some(counters);
        self
    }

    /// Record the scheduler worker-pool size the run executed under.
    pub fn with_jobs(mut self, jobs: u64) -> Self {
        self.jobs = jobs;
        self
    }
}

/// The measured execution duration of every `CellExecuted` event,
/// keyed by canonical cell key (later executions of the same cell —
/// which deduplicating campaigns do not produce — overwrite earlier
/// ones).
pub fn executed_durations(events: &[TelemetryEvent]) -> BTreeMap<String, f64> {
    let mut durations = BTreeMap::new();
    for e in events {
        if let TelemetryEvent::CellExecuted {
            key, duration_secs, ..
        } = e
        {
            durations.insert(key.clone(), *duration_secs);
        }
    }
    durations
}

/// The loaded contents of one run-history sidecar file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunHistory {
    records: Vec<HistoryRecord>,
    skipped: usize,
}

impl RunHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a sidecar file.  A missing file is an empty history;
    /// undecodable lines (truncated trailing appends, damaged middle
    /// lines) are skipped and counted, never fatal.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = match std::fs::read_to_string(path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::new()),
            Err(e) => return Err(e),
        };
        let mut history = Self::new();
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<HistoryRecord>(line) {
                Ok(record) => history.records.push(record),
                Err(_) => history.skipped += 1,
            }
        }
        Ok(history)
    }

    /// Append one record as a single JSON line (creating the file and
    /// its parent directories on first use).  If the existing file
    /// does not end in a newline — a previous writer died mid-append —
    /// the record starts on a fresh line, so only the truncated stub
    /// is lost, never the new record.
    pub fn append(path: &Path, record: &HistoryRecord) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let unterminated = std::fs::File::open(path)
            .and_then(|mut f| {
                use std::io::{Read, Seek, SeekFrom};
                if f.seek(SeekFrom::End(0))? == 0 {
                    return Ok(false);
                }
                f.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                f.read_exact(&mut last)?;
                Ok(last[0] != b'\n')
            })
            .unwrap_or(false);
        // serialize before touching the file so an unencodable record
        // cannot leave a partial line behind
        let line = serde_json::to_string(record).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("history record: {e}"),
            )
        })?;
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut w = std::io::BufWriter::new(f);
        if unterminated {
            writeln!(w)?;
        }
        writeln!(w, "{line}")?;
        // the record is durable only past this point; a writer that
        // dies before the flush loses at most this buffered line
        w.flush()
    }

    /// The loaded records, in append (run) order.
    pub fn records(&self) -> &[HistoryRecord] {
        &self.records
    }

    /// Iterate over the loaded records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &HistoryRecord> {
        self.records.iter()
    }

    /// Number of loaded records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no record was loaded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of lines that failed to decode and were skipped.
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// The cache hit rate of each run, oldest first — a warming store
    /// makes this trend upward.
    pub fn hit_rates(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.summary.cache_hit_rate)
            .collect()
    }

    /// Every recorded cell duration, merged across runs (the most
    /// recent run's measurement wins).
    pub fn cell_durations(&self) -> BTreeMap<String, f64> {
        let mut merged = BTreeMap::new();
        for r in &self.records {
            for (key, secs) in &r.cell_durations {
                merged.insert(key.clone(), *secs);
            }
        }
        merged
    }
}

impl<'a> IntoIterator for &'a RunHistory {
    type Item = &'a HistoryRecord;
    type IntoIter = std::slice::Iter<'a, HistoryRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(hit_rate: f64, cells: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            summary: RunSummary {
                requests: 10,
                cache_hit_rate: hit_rate,
                ..RunSummary::default()
            },
            backend: Some(BackendCounters {
                loads: 4,
                load_hits: 2,
                stores: 2,
                read_errors: 0,
            }),
            cell_durations: cells.iter().map(|(k, d)| (k.to_string(), *d)).collect(),
            jobs: 4,
        }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kc_history_{name}/h.history.jsonl"))
    }

    #[test]
    fn append_accumulates_records_across_runs() {
        let path = temp("append");
        let _ = std::fs::remove_file(&path);
        RunHistory::append(&path, &record(0.0, &[("a", 1.0)])).unwrap();
        RunHistory::append(&path, &record(0.8, &[("b", 2.0)])).unwrap();
        let h = RunHistory::load(&path).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.skipped_lines(), 0);
        assert_eq!(h.hit_rates(), vec![0.0, 0.8]);
        assert_eq!(h.records()[1].backend.unwrap().load_hits, 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_an_empty_history() {
        let h = RunHistory::load(Path::new("/nonexistent/kc/history.jsonl")).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn truncated_trailing_line_is_skipped_not_fatal() {
        let path = temp("truncated");
        let _ = std::fs::remove_file(&path);
        RunHistory::append(&path, &record(0.5, &[("a", 1.0)])).unwrap();
        // simulate a run that died mid-append
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"summary\":{{\"requests\":").unwrap();
        }
        let h = RunHistory::load(&path).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.skipped_lines(), 1);
        // the next append starts a fresh line: the new record decodes,
        // only the truncated stub stays skipped
        RunHistory::append(&path, &record(0.9, &[("c", 3.0)])).unwrap();
        let h = RunHistory::load(&path).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.skipped_lines(), 1);
        assert_eq!(h.hit_rates(), vec![0.5, 0.9]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn damaged_middle_line_keeps_surrounding_records() {
        let path = temp("middle");
        let _ = std::fs::remove_file(&path);
        let a = record(0.1, &[("a", 1.0)]);
        let b = record(0.9, &[("b", 2.0)]);
        let text = format!(
            "{}\nnot json at all\n\n{}\n",
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
        );
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        let h = RunHistory::load(&path).unwrap();
        assert_eq!(h.records(), &[a, b]);
        assert_eq!(h.skipped_lines(), 1, "blank lines are not counted");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn merged_durations_prefer_the_latest_run() {
        let path = temp("merge");
        let _ = std::fs::remove_file(&path);
        RunHistory::append(&path, &record(0.0, &[("a", 1.0), ("b", 5.0)])).unwrap();
        RunHistory::append(&path, &record(0.5, &[("a", 3.0)])).unwrap();
        let merged = RunHistory::load(&path).unwrap().cell_durations();
        assert_eq!(merged.get("a"), Some(&3.0));
        assert_eq!(merged.get("b"), Some(&5.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn from_events_harvests_executed_durations() {
        let events = vec![
            TelemetryEvent::CellExecuted {
                key: "k1".into(),
                duration_secs: 0.25,
                worker: "w".into(),
            },
            TelemetryEvent::CellStarted {
                key: "k2".into(),
                worker: "w".into(),
            },
            TelemetryEvent::CellExecuted {
                key: "k2".into(),
                duration_secs: 1.5,
                worker: "w".into(),
            },
        ];
        let r = HistoryRecord::from_events(RunSummary::default(), &events)
            .with_backend(BackendCounters::default());
        assert_eq!(r.cell_durations.len(), 2);
        assert_eq!(r.cell_durations.get("k2"), Some(&1.5));
        assert!(r.backend.is_some());
    }

    #[test]
    fn jobs_round_trip_and_default_for_old_records() {
        let path = temp("jobs");
        let _ = std::fs::remove_file(&path);
        // a pre-scheduler record: no "jobs" field on the line at all
        let line = serde_json::to_string(&record(0.5, &[("a", 1.0)])).unwrap();
        let mut value: serde::Value = serde_json::from_str(&line).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "jobs");
        }
        let legacy = serde_json::to_string(&value).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{legacy}\n")).unwrap();
        RunHistory::append(&path, &record(0.5, &[("a", 1.0)]).with_jobs(8)).unwrap();
        let h = RunHistory::load(&path).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[0].jobs, 0, "legacy records default to 0");
        assert_eq!(h.records()[1].jobs, 8);
        // from_events lifts the summary's scheduler_jobs into the record
        let summary = RunSummary {
            scheduler_jobs: 6,
            ..RunSummary::default()
        };
        assert_eq!(HistoryRecord::from_events(summary, &[]).jobs, 6);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
