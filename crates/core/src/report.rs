//! Paper-style result tables.
//!
//! The evaluation section of the paper is built from two table shapes:
//! *coupling tables* (chain label × processor count → coupling value,
//! e.g. Tables 2a/3a/4a) and *prediction tables* (predictor ×
//! processor count → execution time with relative error, e.g. Tables
//! 2b/3b/4b/6/8).  These types hold the data and render it in the
//! same layout.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of a coupling table: a chain and its coupling value per
/// configuration column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CouplingRow {
    /// Chain label, e.g. `{copy_faces, x_solve}`.
    pub label: String,
    /// Coupling value per configuration column.
    pub values: Vec<f64>,
}

/// A coupling-values table (paper Tables 2a, 3a, 4a).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CouplingTable {
    /// Table caption.
    pub title: String,
    /// Configuration column labels, e.g. `4 processors`.
    pub columns: Vec<String>,
    /// One row per measured chain.
    pub rows: Vec<CouplingRow>,
}

impl CouplingTable {
    /// Validate internal consistency (every row has one value per
    /// column).
    pub fn check(&self) {
        for r in &self.rows {
            assert_eq!(
                r.values.len(),
                self.columns.len(),
                "row '{}' has wrong arity",
                r.label
            );
        }
    }
}

impl fmt::Display for CouplingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("chain".len()))
            .max()
            .unwrap_or(8);
        write!(f, "  {:label_w$}", "chain")?;
        for c in &self.columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "  {:label_w$}", r.label)?;
            for v in &r.values {
                write!(f, "  {v:>14.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One predicted (or measured) time with an optional relative error.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableCell {
    /// Execution time, seconds.
    pub time: f64,
    /// Relative error vs. the actual row, percent (absent for the
    /// actual row itself).
    pub rel_err_pct: Option<f64>,
}

/// One row of a prediction table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Predictor label (`Actual`, `Summation`, `Coupling: 3 kernels`).
    pub label: String,
    /// One cell per configuration column.
    pub cells: Vec<TableCell>,
}

impl PredictionRow {
    /// Average relative error across the row's columns (the paper's
    /// per-table summary number); `None` for the actual row.
    pub fn avg_rel_err_pct(&self) -> Option<f64> {
        let errs: Vec<f64> = self.cells.iter().filter_map(|c| c.rel_err_pct).collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }
}

/// An execution-time comparison table (paper Tables 2b, 3b, 4b, 6, 8).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictionTable {
    /// Table caption.
    pub title: String,
    /// Configuration column labels.
    pub columns: Vec<String>,
    /// First row: measured times; following rows: predictors.
    pub rows: Vec<PredictionRow>,
}

impl PredictionTable {
    /// Validate internal consistency.
    pub fn check(&self) {
        for r in &self.rows {
            assert_eq!(
                r.cells.len(),
                self.columns.len(),
                "row '{}' has wrong arity",
                r.label
            );
        }
    }

    /// The row with a given label, if present.
    pub fn row(&self, label: &str) -> Option<&PredictionRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for PredictionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8);
        write!(f, "  {:label_w$}", "method")?;
        for c in &self.columns {
            write!(f, "  {c:>22}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "  {:label_w$}", r.label)?;
            for cell in &r.cells {
                match cell.rel_err_pct {
                    Some(e) => write!(f, "  {:>11.3} ({:>6.2}%)", cell.time, e)?,
                    None => write!(f, "  {:>11.3}          ", cell.time)?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coupling_table() -> CouplingTable {
        CouplingTable {
            title: "Coupling values".into(),
            columns: vec!["4 procs".into(), "9 procs".into()],
            rows: vec![
                CouplingRow {
                    label: "{a, b}".into(),
                    values: vec![0.95, 1.02],
                },
                CouplingRow {
                    label: "{b, c}".into(),
                    values: vec![0.80, 0.85],
                },
            ],
        }
    }

    #[test]
    fn coupling_table_renders() {
        let t = coupling_table();
        t.check();
        let s = t.to_string();
        assert!(s.contains("{a, b}"));
        assert!(s.contains("0.9500"));
        assert!(s.contains("9 procs"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_fails_check() {
        let mut t = coupling_table();
        t.rows[0].values.pop();
        t.check();
    }

    #[test]
    fn prediction_table_renders_and_summarizes() {
        let t = PredictionTable {
            title: "Execution times".into(),
            columns: vec!["4 procs".into()],
            rows: vec![
                PredictionRow {
                    label: "Actual".into(),
                    cells: vec![TableCell {
                        time: 100.0,
                        rel_err_pct: None,
                    }],
                },
                PredictionRow {
                    label: "Summation".into(),
                    cells: vec![TableCell {
                        time: 120.0,
                        rel_err_pct: Some(20.0),
                    }],
                },
            ],
        };
        t.check();
        let s = t.to_string();
        assert!(s.contains("Actual"));
        assert!(s.contains("20.00%"));
        assert_eq!(t.row("Actual").unwrap().avg_rel_err_pct(), None);
        assert_eq!(t.row("Summation").unwrap().avg_rel_err_pct(), Some(20.0));
        assert!(t.row("missing").is_none());
    }
}
