//! # kc-core
//!
//! The kernel-coupling performance model of Taylor, Wu, Geisler and
//! Stevens, *"Using Kernel Couplings to Predict Parallel Application
//! Performance"* (HPDC 2002).
//!
//! ## The model
//!
//! An application is decomposed into **kernels** — loops, procedures or
//! files, whatever granularity the analyst wants.  The application's
//! main loop executes some subsequence of them in a fixed control-flow
//! order.  Three kinds of measurements are taken, each with the
//! *loop protocol*: place the kernel (or chain of kernels) in a loop
//! that dominates execution time, subtract everything else, and divide
//! by the iteration count:
//!
//! * `P_k` — each kernel in isolation,
//! * `P_S` — each **chain** `S` of `L` consecutive kernels (cyclic
//!   windows over the loop body),
//! * the full application, as ground truth.
//!
//! The **coupling value** of a chain (paper Eq. 2) is
//!
//! ```text
//! C_S = P_S / Σ_{k ∈ S} P_k
//! ```
//!
//! `C_S = 1` means the kernels do not interact; `C_S < 1` is
//! *constructive* coupling (shared resources — e.g. one kernel's data
//! still resident in cache when the next runs); `C_S > 1` is
//! *destructive* coupling (interference — evictions, message
//! contention, compounded load imbalance).
//!
//! The **composition coefficients** turn coupling values into a
//! predictor: for each kernel `k`, `α_k` is the average of the coupling
//! values of every window containing `k`, weighted by the window's
//! measured time (paper Section 3):
//!
//! ```text
//! α_k = Σ_{W ∋ k} C_W · P_W / Σ_{W ∋ k} P_W
//! ```
//!
//! and the predicted loop time per iteration is `Σ_k α_k · E_k`, where
//! `E_k` is a per-kernel model — the measured `P_k` by default, or an
//! analytic model supplied by the caller.  The traditional baseline is
//! the **summation** predictor `Σ_k P_k` (all `α_k = 1`).
//!
//! ## Using the crate
//!
//! Implement [`ChainExecutor`] for your platform (the `kc-npb` crate
//! does this for the NAS benchmarks on the simulated cluster), then:
//!
//! ```
//! use kc_core::{ChainExecutor, CouplingAnalysis, Predictor, SyntheticExecutor};
//!
//! // a toy application whose kernels interact pairwise
//! let mut exec = SyntheticExecutor::builder()
//!     .kernel("a", 1.0)
//!     .kernel("b", 2.0)
//!     .kernel("c", 1.5)
//!     .interaction("a", "b", -0.3)   // constructive: b reuses a's data
//!     .interaction("b", "c", 0.2)    // destructive
//!     .loop_iterations(100)
//!     .build();
//!
//! let analysis = CouplingAnalysis::collect(&mut exec, 2, 50).unwrap();
//! let actual = exec.measure_application().mean();
//! let coupled = analysis.predict(Predictor::coupling(2)).unwrap();
//! let summed = analysis.predict(Predictor::Summation).unwrap();
//! assert!((coupled - actual).abs() < (summed - actual).abs());
//! ```

pub mod analysis;
pub mod coefficients;
pub mod error;
pub mod executor;
pub mod history;
pub mod kernel;
pub mod measurement;
pub mod predict;
pub mod provider;
pub mod report;
pub mod reuse;
pub mod synthetic;
pub mod telemetry;
pub mod windows;

pub use analysis::CouplingAnalysis;
pub use coefficients::Coefficients;
pub use error::{CouplingError, KcError, KcResult};
pub use executor::ChainExecutor;
pub use history::{executed_durations, BackendCounters, HistoryRecord, RunHistory};
pub use kernel::{KernelId, KernelSet};
pub use measurement::Measurement;
pub use predict::{Prediction, PredictionSet, Predictor};
pub use provider::{
    analysis_cells, assemble_analysis, CacheStats, CachedProvider, CellContext, CellKind,
    MeasurementBackend, MeasurementKey, MeasurementProvider,
};
pub use report::{CouplingRow, CouplingTable, PredictionRow, PredictionTable};
pub use reuse::{predict_with_reused_coefficients, ReuseCell, ReuseStudy};
pub use synthetic::SyntheticExecutor;
pub use telemetry::{
    canonicalize, quantile, read_jsonl, summarize, worker_label, write_jsonl, Disposition,
    FanoutSink, JsonLinesSink, MemorySink, RunSummary, SlowCell, TelemetryEvent, TelemetrySink,
};
pub use windows::ChainWindow;
