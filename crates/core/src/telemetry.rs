//! Campaign telemetry: structured spans from the measurement layers.
//!
//! PR 1 made every paper table flow through one deduplicating parallel
//! campaign, but the engine was a black box: `CacheStats` counted hits
//! while nothing recorded *which* cells ran, how long they took, or on
//! which worker.  This module is the observability layer:
//!
//! * [`TelemetryEvent`] — the schema-stable event vocabulary: cell
//!   request started/finished (with canonical key, wall-clock duration,
//!   worker thread and hit/backend-hit/executed disposition), raw
//!   provider executions, campaign phases (enumerate, dedupe, execute,
//!   assemble) and an end-of-run [`RunSummary`].
//! * [`TelemetrySink`] — anything that accepts events; emitters
//!   (`CachedProvider`, `NpbProvider`, `Campaign`) hold an
//!   `Arc<dyn TelemetrySink>` and record into it from any thread.
//! * Collectors: [`MemorySink`] (in-memory ring, the campaign's
//!   always-on collector), [`JsonLinesSink`] (buffers, then writes a
//!   canonical JSON-lines trace) and [`FanoutSink`] (broadcast, with
//!   runtime attachment).
//!
//! ## Determinism contract
//!
//! A campaign's event stream is **deterministic in content** across
//! thread counts: the same cells, dispositions and phases appear no
//! matter how execution was scheduled — only durations and worker
//! labels vary.  Two functions make that testable:
//!
//! * [`canonicalize`] reorders concurrent runs of cell events into a
//!   stable order (phase markers are serial and keep their positions);
//! * [`TelemetryEvent::redacted`] zeroes the fields that legitimately
//!   vary (durations, workers, summary timings).
//!
//! `canonicalize(a).map(redacted) == canonicalize(b).map(redacted)`
//! therefore holds for any two runs of the same campaign, and the
//! golden/regression tests assert exactly that.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How the cache satisfied one cell request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Disposition {
    /// Answered from the in-memory cache.
    Hit,
    /// Answered from the persistent backend.
    BackendHit,
    /// Executed by the inner provider.
    Executed,
}

/// One structured telemetry event.
///
/// The variants and their fields are the trace **schema**: tests and
/// external tooling parse them back, so changes must stay
/// backward-readable (add variants or fields, do not repurpose).
/// Cell keys are the canonical `MeasurementKey` text (its `Display`
/// form), which is itself part of the cache-identity contract.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A campaign phase began (`enumerate`, `dedupe`, `execute`,
    /// `assemble`).
    PhaseStarted {
        /// Phase name.
        phase: String,
    },
    /// A campaign phase completed.
    PhaseFinished {
        /// Phase name.
        phase: String,
        /// Wall-clock seconds the phase took.
        duration_secs: f64,
    },
    /// A cell request entered the caching measurement layer.
    CellStarted {
        /// Canonical cell key.
        key: String,
        /// Label of the requesting worker thread.
        worker: String,
    },
    /// A cell request completed.
    CellFinished {
        /// Canonical cell key.
        key: String,
        /// How the request was satisfied.
        disposition: Disposition,
        /// Wall-clock seconds from request to answer.
        duration_secs: f64,
        /// Label of the requesting worker thread.
        worker: String,
    },
    /// The provider ran one cell on a fresh simulated cluster (the
    /// raw execution inside a [`Disposition::Executed`] request).
    CellExecuted {
        /// Canonical cell key.
        key: String,
        /// Wall-clock seconds of the simulation itself.
        duration_secs: f64,
        /// Label of the executing worker thread.
        worker: String,
    },
    /// One prefetch's drain through the campaign's bounded cell
    /// scheduler: how many cells it pushed through the shared queue,
    /// how many were already queued or running for another prefetch,
    /// the queue depth it saw, and the worker-pool size.  Emitted
    /// exactly once per prefetch (even when nothing was scheduled),
    /// so trace content stays deterministic; every field is
    /// schedule-dependent and zeroed by [`TelemetryEvent::redacted`].
    SchedulerDrain {
        /// Cells this drain enqueued on the shared queue.
        enqueued: u64,
        /// Cells already queued or running on behalf of a concurrent
        /// prefetch (collapsed at the queue, not re-enqueued).
        shared: u64,
        /// Pending-queue depth right after this drain's submit — the
        /// drain's peak contribution to scheduler backlog.
        queue_depth: u64,
        /// Fixed worker-pool size (`--jobs`) the queue drains into.
        jobs: u64,
    },
    /// One prediction request answered by the serving layer
    /// (`kc_serve`): which request it was, how it resolved, how many
    /// requests shared its batch and how long it waited end-to-end.
    /// Not a cell event — cell work the request triggered is reported
    /// separately through the usual cell events.  `batch_size`,
    /// `duration_secs` and `deadline_slack_secs` are
    /// schedule-dependent and zeroed by [`TelemetryEvent::redacted`].
    RequestServed {
        /// Compact request descriptor (e.g. `bt/W/p9/len3`).
        request: String,
        /// Terminal status: `ok`, `error`, `overloaded` or `deadline`.
        status: String,
        /// Number of requests resolved in the same engine batch.
        batch_size: u64,
        /// Wall-clock seconds from admission to response.
        duration_secs: f64,
        /// Seconds of deadline budget left when the response landed
        /// (negative: the deadline was missed).  0 for requests
        /// without a deadline.
        #[serde(default)]
        deadline_slack_secs: f64,
    },
    /// A persistent-store read failed with an I/O error and the
    /// lookup was answered as a miss (the campaign will re-execute the
    /// cell).  The error text is environment-dependent and blanked by
    /// [`TelemetryEvent::redacted`]; the count also lands in
    /// [`RunSummary::store_read_errors`].
    StoreReadError {
        /// Canonical cell key whose read failed.
        key: String,
        /// The I/O error's display text.
        error: String,
    },
    /// End-of-run aggregates (normally the last trace line).
    RunSummary(RunSummary),
}

impl TelemetryEvent {
    /// Whether this is a per-cell event (as opposed to a phase marker
    /// or summary).
    pub fn is_cell_event(&self) -> bool {
        matches!(
            self,
            TelemetryEvent::CellStarted { .. }
                | TelemetryEvent::CellFinished { .. }
                | TelemetryEvent::CellExecuted { .. }
        )
    }

    /// The canonical cell key, for cell events.
    pub fn cell_key(&self) -> Option<&str> {
        match self {
            TelemetryEvent::CellStarted { key, .. }
            | TelemetryEvent::CellFinished { key, .. }
            | TelemetryEvent::CellExecuted { key, .. } => Some(key),
            _ => None,
        }
    }

    /// A copy with every legitimately schedule-dependent field zeroed:
    /// durations become `0.0`, worker labels become `""`, and the
    /// summary drops its timing block.  Two runs of the same campaign
    /// compare equal after [`canonicalize`] + `redacted`.
    pub fn redacted(&self) -> TelemetryEvent {
        match self {
            TelemetryEvent::PhaseStarted { phase } => TelemetryEvent::PhaseStarted {
                phase: phase.clone(),
            },
            TelemetryEvent::PhaseFinished { phase, .. } => TelemetryEvent::PhaseFinished {
                phase: phase.clone(),
                duration_secs: 0.0,
            },
            TelemetryEvent::CellStarted { key, .. } => TelemetryEvent::CellStarted {
                key: key.clone(),
                worker: String::new(),
            },
            TelemetryEvent::CellFinished {
                key, disposition, ..
            } => TelemetryEvent::CellFinished {
                key: key.clone(),
                disposition: *disposition,
                duration_secs: 0.0,
                worker: String::new(),
            },
            TelemetryEvent::CellExecuted { key, .. } => TelemetryEvent::CellExecuted {
                key: key.clone(),
                duration_secs: 0.0,
                worker: String::new(),
            },
            TelemetryEvent::SchedulerDrain { .. } => TelemetryEvent::SchedulerDrain {
                enqueued: 0,
                shared: 0,
                queue_depth: 0,
                jobs: 0,
            },
            TelemetryEvent::RequestServed {
                request, status, ..
            } => TelemetryEvent::RequestServed {
                request: request.clone(),
                status: status.clone(),
                batch_size: 0,
                duration_secs: 0.0,
                deadline_slack_secs: 0.0,
            },
            TelemetryEvent::StoreReadError { key, .. } => TelemetryEvent::StoreReadError {
                key: key.clone(),
                error: String::new(),
            },
            TelemetryEvent::RunSummary(s) => TelemetryEvent::RunSummary(s.redacted()),
        }
    }

    /// Stable ordering rank among cell events sharing a key: started,
    /// then executed, then finished.
    fn variant_rank(&self) -> u8 {
        match self {
            TelemetryEvent::CellStarted { .. } => 0,
            TelemetryEvent::CellExecuted { .. } => 1,
            TelemetryEvent::CellFinished { .. } => 2,
            _ => 3,
        }
    }
}

/// One slow cell in the end-of-run aggregates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlowCell {
    /// Canonical cell key.
    pub key: String,
    /// Wall-clock seconds the execution took.
    pub duration_secs: f64,
}

/// End-of-run aggregates over one campaign's event stream.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Total cell requests (must equal `CacheStats::requests`).
    pub requests: u64,
    /// Requests answered from the in-memory cache.
    pub hits: u64,
    /// Requests answered from the persistent backend.
    pub backend_hits: u64,
    /// Requests that executed a fresh measurement.
    pub executed: u64,
    /// Distinct cells touched.
    pub unique_cells: u64,
    /// `(hits + backend_hits) / requests`, `0` with no requests.
    pub cache_hit_rate: f64,
    /// Distinct cells per benchmark (first segment of the key).
    pub per_benchmark: BTreeMap<String, u64>,
    /// Distinct worker threads that executed cells.
    pub workers: u64,
    /// Sum of executed-cell durations (the serial cost of the run).
    pub serial_cell_secs: f64,
    /// Wall-clock seconds spent in `execute` phases.
    pub execute_wall_secs: f64,
    /// `serial_cell_secs / execute_wall_secs` — how much the parallel
    /// execute phase beat a serial one.
    pub parallel_speedup: f64,
    /// Speedup divided by the worker count.
    pub parallel_efficiency: f64,
    /// The slowest executed cells, longest first.
    pub slowest: Vec<SlowCell>,
    /// Bounded-scheduler worker-pool size (`--jobs`; the max across
    /// drains, `0` when no scheduler ran).
    #[serde(default)]
    pub scheduler_jobs: u64,
    /// Cells pushed through the shared scheduler queue, summed over
    /// drains.
    #[serde(default)]
    pub scheduler_enqueued: u64,
    /// Cells a drain found already queued or running for a concurrent
    /// prefetch (cross-experiment duplicates collapsed at the queue).
    #[serde(default)]
    pub scheduler_shared: u64,
    /// Peak pending-queue depth any drain observed — how saturated
    /// the worker pool was.
    #[serde(default)]
    pub scheduler_peak_queue_depth: u64,
    /// Persistent-store reads that failed with an I/O error and were
    /// answered as misses (each one forced a re-execution).
    #[serde(default)]
    pub store_read_errors: u64,
}

impl RunSummary {
    /// A copy without the schedule-dependent timing block (see
    /// [`TelemetryEvent::redacted`]).
    pub fn redacted(&self) -> RunSummary {
        RunSummary {
            workers: 0,
            serial_cell_secs: 0.0,
            execute_wall_secs: 0.0,
            parallel_speedup: 0.0,
            parallel_efficiency: 0.0,
            slowest: Vec::new(),
            scheduler_jobs: 0,
            scheduler_enqueued: 0,
            scheduler_shared: 0,
            scheduler_peak_queue_depth: 0,
            ..self.clone()
        }
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells      {} requests -> {} unique ({} hits, {} backend, {} executed; hit rate {:.1}%)",
            self.requests,
            self.unique_cells,
            self.hits,
            self.backend_hits,
            self.executed,
            100.0 * self.cache_hit_rate,
        )?;
        write!(f, "benchmarks ")?;
        for (i, (b, n)) in self.per_benchmark.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}: {n}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "execute    {:.2}s wall, {:.2}s serial cell sum -> {:.2}x speedup on {} worker(s) ({:.0}% efficiency)",
            self.execute_wall_secs,
            self.serial_cell_secs,
            self.parallel_speedup,
            self.workers,
            100.0 * self.parallel_efficiency,
        )?;
        if self.scheduler_jobs > 0 {
            writeln!(
                f,
                "scheduler  {} cells queued ({} shared across experiments), peak queue depth {}, {} job slot(s)",
                self.scheduler_enqueued,
                self.scheduler_shared,
                self.scheduler_peak_queue_depth,
                self.scheduler_jobs,
            )?;
        }
        if self.store_read_errors > 0 {
            writeln!(
                f,
                "store      {} read error(s) answered as misses",
                self.store_read_errors,
            )?;
        }
        writeln!(f, "slowest cells")?;
        for s in &self.slowest {
            writeln!(f, "  {:>9.4}s  {}", s.duration_secs, s.key)?;
        }
        Ok(())
    }
}

/// Build the end-of-run aggregates from an event stream, keeping the
/// `top_n` slowest executed cells.
pub fn summarize(events: &[TelemetryEvent], top_n: usize) -> RunSummary {
    let mut s = RunSummary::default();
    let mut unique: BTreeSet<&str> = BTreeSet::new();
    let mut workers: BTreeSet<&str> = BTreeSet::new();
    let mut executed: Vec<(&str, f64)> = Vec::new();
    for e in events {
        match e {
            TelemetryEvent::CellFinished {
                key,
                disposition,
                duration_secs,
                worker,
            } => {
                s.requests += 1;
                unique.insert(key);
                match disposition {
                    Disposition::Hit => s.hits += 1,
                    Disposition::BackendHit => s.backend_hits += 1,
                    Disposition::Executed => {
                        s.executed += 1;
                        s.serial_cell_secs += duration_secs;
                        workers.insert(worker);
                        executed.push((key, *duration_secs));
                    }
                }
            }
            TelemetryEvent::PhaseFinished {
                phase,
                duration_secs,
            } if phase == phases::EXECUTE => {
                s.execute_wall_secs += duration_secs;
            }
            TelemetryEvent::SchedulerDrain {
                enqueued,
                shared,
                queue_depth,
                jobs,
            } => {
                s.scheduler_enqueued += enqueued;
                s.scheduler_shared += shared;
                s.scheduler_peak_queue_depth = s.scheduler_peak_queue_depth.max(*queue_depth);
                s.scheduler_jobs = s.scheduler_jobs.max(*jobs);
            }
            TelemetryEvent::StoreReadError { .. } => {
                s.store_read_errors += 1;
            }
            _ => {}
        }
    }
    s.unique_cells = unique.len() as u64;
    for key in &unique {
        let benchmark = key.split('|').next().unwrap_or("?").to_string();
        *s.per_benchmark.entry(benchmark).or_insert(0) += 1;
    }
    if s.requests > 0 {
        s.cache_hit_rate = (s.hits + s.backend_hits) as f64 / s.requests as f64;
    }
    s.workers = workers.len() as u64;
    if s.execute_wall_secs > 0.0 {
        s.parallel_speedup = s.serial_cell_secs / s.execute_wall_secs;
        if s.workers > 0 {
            s.parallel_efficiency = s.parallel_speedup / s.workers as f64;
        }
    }
    // longest first; ties broken by key so the list is deterministic
    executed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
    s.slowest = executed
        .into_iter()
        .take(top_n)
        .map(|(key, duration_secs)| SlowCell {
            key: key.to_string(),
            duration_secs,
        })
        .collect();
    s
}

/// Linear-interpolation quantile over an ascending-sorted slice
/// (`q` in `[0, 1]`; `q = 0.5` is the median).  Returns `0.0` for an
/// empty slice so metric reports degrade gracefully.  The serving
/// layer uses this for request-latency percentiles.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Canonical event order: phase markers and summaries are emitted
/// serially and keep their positions; each contiguous run of cell
/// events (which parallel workers interleave arbitrarily) is sorted
/// by `(key, started < executed < finished, disposition)`.
///
/// Two runs of the same campaign produce the same canonical sequence
/// up to [`TelemetryEvent::redacted`] fields, regardless of thread
/// count or schedule.
pub fn canonicalize(events: Vec<TelemetryEvent>) -> Vec<TelemetryEvent> {
    let mut out = Vec::with_capacity(events.len());
    let mut run: Vec<TelemetryEvent> = Vec::new();
    let flush = |run: &mut Vec<TelemetryEvent>, out: &mut Vec<TelemetryEvent>| {
        run.sort_by(|a, b| {
            a.cell_key()
                .cmp(&b.cell_key())
                .then_with(|| a.variant_rank().cmp(&b.variant_rank()))
        });
        out.append(run);
    };
    for e in events {
        if e.is_cell_event() {
            run.push(e);
        } else {
            flush(&mut run, &mut out);
            out.push(e);
        }
    }
    flush(&mut run, &mut out);
    out
}

/// The phase names the campaign engine emits.
pub mod phases {
    /// Enumerating requested analyses into cells.
    pub const ENUMERATE: &str = "enumerate";
    /// Deduplicating cells and filtering against the cache.
    pub const DEDUPE: &str = "dedupe";
    /// Executing unique uncached cells (in parallel).
    pub const EXECUTE: &str = "execute";
    /// Assembling an analysis from the warm cache.
    pub const ASSEMBLE: &str = "assemble";
}

/// A label for the current worker thread (name if set, otherwise the
/// OS thread id).
pub fn worker_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) if !name.is_empty() => name.to_string(),
        _ => format!("{:?}", t.id()),
    }
}

/// Accepts telemetry events from any thread.
pub trait TelemetrySink: Send + Sync {
    /// Record one event.
    fn record(&self, event: TelemetryEvent);

    /// Drain any buffered events to their destination.
    ///
    /// Purely in-memory sinks have nothing to drain, so the default is
    /// a no-op; buffered sinks like [`JsonLinesSink`] override this to
    /// write their trace out.  Callers with an explicit lifecycle point
    /// (scheduler drain, SIGTERM, end-of-run summary) call this instead
    /// of downcasting to a concrete sink type.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects events in memory, in emission order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the recorded events, in emission order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// The recorded events in canonical order (see [`canonicalize`]).
    pub fn canonical_events(&self) -> Vec<TelemetryEvent> {
        canonicalize(self.events())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: TelemetryEvent) {
        self.events.lock().push(event);
    }
}

/// Buffers events and writes them as a canonical JSON-lines trace on
/// [`JsonLinesSink::flush`] — one JSON object per line, in
/// [`canonicalize`] order, so traces of the same campaign are
/// line-for-line comparable (modulo durations) across thread counts.
#[derive(Debug)]
pub struct JsonLinesSink {
    path: PathBuf,
    buffer: MemorySink,
}

impl JsonLinesSink {
    /// A sink that will write to `path` on flush.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            buffer: MemorySink::new(),
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Write the canonical trace to the destination path.
    pub fn flush(&self) -> std::io::Result<()> {
        write_jsonl(&self.path, &self.buffer.canonical_events())
    }
}

impl TelemetrySink for JsonLinesSink {
    fn record(&self, event: TelemetryEvent) {
        self.buffer.record(event);
    }

    fn flush(&self) -> std::io::Result<()> {
        JsonLinesSink::flush(self)
    }
}

/// Broadcasts every event to a set of sinks; sinks can attach at any
/// time (events recorded before attachment are not replayed).
#[derive(Default)]
pub struct FanoutSink {
    sinks: Mutex<Vec<Arc<dyn TelemetrySink>>>,
}

impl FanoutSink {
    /// An empty broadcast set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach another sink.
    pub fn add(&self, sink: Arc<dyn TelemetrySink>) {
        self.sinks.lock().push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.lock().len()
    }

    /// Whether no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.lock().is_empty()
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: TelemetryEvent) {
        let sinks = self.sinks.lock().clone();
        for s in &sinks {
            s.record(event.clone());
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        let sinks = self.sinks.lock().clone();
        let mut first_err = None;
        for s in &sinks {
            // keep draining the rest even if one sink fails, so a bad
            // disk path can't strand another sink's buffered events
            if let Err(e) = s.flush() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Write events as JSON lines (one event per line).
pub fn write_jsonl(path: &Path, events: &[TelemetryEvent]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for e in events {
        let line = serde_json::to_string(e).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("trace event: {e}"))
        })?;
        writeln!(f, "{line}")?;
    }
    f.flush()
}

/// Read a JSON-lines trace written by [`write_jsonl`] /
/// [`JsonLinesSink::flush`].
pub fn read_jsonl(path: &Path) -> std::io::Result<Vec<TelemetryEvent>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let data = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let e: TelemetryEvent =
            serde_json::from_str(line).map_err(|e| bad(format!("trace line {}: {e}", i + 1)))?;
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(key: &str, worker: &str) -> TelemetryEvent {
        TelemetryEvent::CellStarted {
            key: key.into(),
            worker: worker.into(),
        }
    }

    fn finished(key: &str, d: Disposition, secs: f64, worker: &str) -> TelemetryEvent {
        TelemetryEvent::CellFinished {
            key: key.into(),
            disposition: d,
            duration_secs: secs,
            worker: worker.into(),
        }
    }

    fn phase_pair(name: &str, secs: f64) -> [TelemetryEvent; 2] {
        [
            TelemetryEvent::PhaseStarted { phase: name.into() },
            TelemetryEvent::PhaseFinished {
                phase: name.into(),
                duration_secs: secs,
            },
        ]
    }

    #[test]
    fn canonicalize_sorts_cell_runs_but_keeps_phase_markers() {
        let mut events = vec![TelemetryEvent::PhaseStarted {
            phase: phases::EXECUTE.into(),
        }];
        // two workers interleaving b before a
        events.push(started("b", "w2"));
        events.push(started("a", "w1"));
        events.push(finished("b", Disposition::Executed, 0.2, "w2"));
        events.push(finished("a", Disposition::Executed, 0.1, "w1"));
        events.push(TelemetryEvent::PhaseFinished {
            phase: phases::EXECUTE.into(),
            duration_secs: 0.3,
        });
        let canon = canonicalize(events);
        assert!(matches!(&canon[0], TelemetryEvent::PhaseStarted { .. }));
        assert_eq!(canon[1].cell_key(), Some("a"));
        assert_eq!(canon[2].cell_key(), Some("a"));
        assert_eq!(canon[3].cell_key(), Some("b"));
        assert_eq!(canon[4].cell_key(), Some("b"));
        assert!(matches!(&canon[5], TelemetryEvent::PhaseFinished { .. }));
        // started sorts before finished for the same key
        assert!(matches!(&canon[1], TelemetryEvent::CellStarted { .. }));
        assert!(matches!(&canon[2], TelemetryEvent::CellFinished { .. }));
    }

    #[test]
    fn two_schedules_redact_to_the_same_canonical_stream() {
        let a = vec![
            started("x", "w1"),
            started("y", "w2"),
            finished("y", Disposition::Executed, 0.5, "w2"),
            finished("x", Disposition::Executed, 0.9, "w1"),
        ];
        let b = vec![
            started("y", "main"),
            finished("y", Disposition::Executed, 0.41, "main"),
            started("x", "main"),
            finished("x", Disposition::Executed, 0.88, "main"),
        ];
        let redact = |v: Vec<TelemetryEvent>| -> Vec<TelemetryEvent> {
            canonicalize(v)
                .iter()
                .map(TelemetryEvent::redacted)
                .collect()
        };
        assert_eq!(redact(a), redact(b));
    }

    #[test]
    fn summary_counts_dispositions_and_ranks_slowest() {
        let mut events = Vec::new();
        events.extend(phase_pair(phases::ENUMERATE, 0.01));
        events.extend(phase_pair(phases::EXECUTE, 2.0));
        events.push(finished(
            "BT|S|p4|chain:0|r5|e|m",
            Disposition::Executed,
            1.5,
            "w1",
        ));
        events.push(finished(
            "BT|S|p4|chain:1|r5|e|m",
            Disposition::Executed,
            0.5,
            "w2",
        ));
        events.push(finished(
            "BT|S|p4|chain:0|r5|e|m",
            Disposition::Hit,
            0.0,
            "w1",
        ));
        events.push(finished(
            "SP|W|p4|overhead|r1|e|m",
            Disposition::BackendHit,
            0.0,
            "w1",
        ));
        let s = summarize(&events, 1);
        assert_eq!(s.requests, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.backend_hits, 1);
        assert_eq!(s.executed, 2);
        assert_eq!(s.unique_cells, 3);
        assert_eq!(s.per_benchmark.get("BT"), Some(&2));
        assert_eq!(s.per_benchmark.get("SP"), Some(&1));
        assert_eq!(s.workers, 2);
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!((s.serial_cell_secs - 2.0).abs() < 1e-12);
        assert!((s.execute_wall_secs - 2.0).abs() < 1e-12);
        assert!((s.parallel_speedup - 1.0).abs() < 1e-12);
        assert!((s.parallel_efficiency - 0.5).abs() < 1e-12);
        assert_eq!(s.slowest.len(), 1);
        assert_eq!(s.slowest[0].key, "BT|S|p4|chain:0|r5|e|m");
        let text = s.to_string();
        assert!(text.contains("4 requests"));
        assert!(text.contains("BT: 2"));
    }

    #[test]
    fn redacted_summary_drops_timing_but_keeps_counts() {
        let events = vec![
            finished("a", Disposition::Executed, 1.0, "w1"),
            finished("a", Disposition::Hit, 0.0, "w2"),
        ];
        let s = summarize(&events, 5);
        let r = s.redacted();
        assert_eq!(r.requests, 2);
        assert_eq!(r.executed, 1);
        assert_eq!(r.workers, 0);
        assert_eq!(r.serial_cell_secs, 0.0);
        assert!(r.slowest.is_empty());
    }

    #[test]
    fn jsonl_roundtrips_every_variant() {
        let mut events = Vec::new();
        events.extend(phase_pair(phases::EXECUTE, 0.25));
        events.push(started("k1", "w1"));
        events.push(TelemetryEvent::CellExecuted {
            key: "k1".into(),
            duration_secs: 0.2,
            worker: "w1".into(),
        });
        events.push(finished("k1", Disposition::Executed, 0.25, "w1"));
        events.push(TelemetryEvent::SchedulerDrain {
            enqueued: 3,
            shared: 1,
            queue_depth: 2,
            jobs: 4,
        });
        events.push(TelemetryEvent::RunSummary(summarize(&events, 3)));
        let path = std::env::temp_dir().join("kc_telemetry_test/trace.jsonl");
        let _ = std::fs::remove_file(&path);
        write_jsonl(&path, &events).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, events);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn read_jsonl_rejects_garbage_lines() {
        let path = std::env::temp_dir().join("kc_telemetry_garbage.jsonl");
        std::fs::write(&path, "{\"PhaseStarted\":{\"phase\":\"x\"}}\nnot json\n").unwrap();
        assert!(read_jsonl(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sinks_collect_and_fan_out() {
        let memory = Arc::new(MemorySink::new());
        let jsonl = Arc::new(JsonLinesSink::new(
            std::env::temp_dir().join("kc_telemetry_fanout/trace.jsonl"),
        ));
        let fanout = FanoutSink::new();
        assert!(fanout.is_empty());
        fanout.add(memory.clone());
        fanout.add(jsonl.clone());
        assert_eq!(fanout.len(), 2);
        fanout.record(started("cell", "w"));
        assert_eq!(memory.len(), 1);
        assert_eq!(jsonl.len(), 1);
        assert!(!jsonl.is_empty());
        jsonl.flush().unwrap();
        assert_eq!(read_jsonl(jsonl.path()).unwrap().len(), 1);
        memory.clear();
        assert!(memory.is_empty());
        let _ = std::fs::remove_dir_all(jsonl.path().parent().unwrap());
    }

    #[test]
    fn trait_flush_drains_buffered_sinks_through_a_fanout() {
        let jsonl = Arc::new(JsonLinesSink::new(
            std::env::temp_dir().join("kc_telemetry_trait_flush/trace.jsonl"),
        ));
        let fanout = FanoutSink::new();
        fanout.add(Arc::new(MemorySink::new())); // default no-op flush
        fanout.add(jsonl.clone());
        fanout.record(started("cell", "w"));
        TelemetrySink::flush(&fanout).unwrap();
        assert_eq!(read_jsonl(jsonl.path()).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(jsonl.path().parent().unwrap());
    }

    #[test]
    fn crashed_buffered_sink_loses_only_the_unflushed_tail() {
        let path = std::env::temp_dir().join("kc_telemetry_crash/trace.jsonl");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        let jsonl = JsonLinesSink::new(&path);
        jsonl.record(started("flushed", "w"));
        jsonl.flush().unwrap();
        jsonl.record(started("buffered-tail", "w"));
        // simulate the process dying before the next flush point
        drop(jsonl);
        // the on-disk trace still parses and holds exactly the events
        // flushed before the crash — the tail was never half-written
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].cell_key(), Some("flushed"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn worker_label_is_nonempty() {
        assert!(!worker_label().is_empty());
    }

    #[test]
    fn scheduler_drains_aggregate_into_the_summary_and_redact_away() {
        let drain = |enqueued, shared, queue_depth, jobs| TelemetryEvent::SchedulerDrain {
            enqueued,
            shared,
            queue_depth,
            jobs,
        };
        let events = vec![
            drain(5, 0, 5, 4),
            finished("a", Disposition::Executed, 0.5, "kc-worker-0"),
            drain(2, 3, 7, 4),
        ];
        let s = summarize(&events, 3);
        assert_eq!(s.scheduler_enqueued, 7, "enqueued sums across drains");
        assert_eq!(s.scheduler_shared, 3);
        assert_eq!(s.scheduler_peak_queue_depth, 7, "depth keeps the peak");
        assert_eq!(s.scheduler_jobs, 4);
        assert!(s.to_string().contains("7 cells queued"));
        assert!(s.to_string().contains("4 job slot(s)"));

        // every field is schedule-dependent: redaction zeroes them on
        // both the event and the summary, and is not a cell event
        assert!(!events[0].is_cell_event());
        assert_eq!(events[0].cell_key(), None);
        assert_eq!(
            events[2].redacted(),
            drain(0, 0, 0, 0),
            "drain payloads vary with the schedule"
        );
        let r = s.redacted();
        assert_eq!(r.scheduler_jobs, 0);
        assert_eq!(r.scheduler_enqueued, 0);
        assert_eq!(r.scheduler_shared, 0);
        assert_eq!(r.scheduler_peak_queue_depth, 0);
        assert!(!r.to_string().contains("job slot"));
    }

    #[test]
    fn request_served_redacts_schedule_dependent_fields() {
        let e = TelemetryEvent::RequestServed {
            request: "bt/W/p9/len3".into(),
            status: "ok".into(),
            batch_size: 7,
            duration_secs: 0.42,
            deadline_slack_secs: 0.08,
        };
        assert!(!e.is_cell_event(), "requests are not cell events");
        assert_eq!(e.cell_key(), None);
        assert_eq!(
            e.redacted(),
            TelemetryEvent::RequestServed {
                request: "bt/W/p9/len3".into(),
                status: "ok".into(),
                batch_size: 0,
                duration_secs: 0.0,
                deadline_slack_secs: 0.0,
            },
            "batch size, latency and slack vary with the schedule"
        );
        // schema round-trip, like every other variant
        let line = serde_json::to_string(&e).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn quantile_interpolates_and_handles_edges() {
        assert_eq!(quantile(&[], 0.5), 0.0, "empty slice degrades to 0");
        assert_eq!(quantile(&[3.0], 0.99), 3.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!(
            (quantile(&v, 0.5) - 2.5).abs() < 1e-12,
            "median interpolates"
        );
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
        // out-of-range q clamps instead of panicking
        assert_eq!(quantile(&v, -1.0), 1.0);
        assert_eq!(quantile(&v, 2.0), 4.0);
    }

    #[test]
    fn summary_without_scheduler_fields_still_decodes() {
        // a PR-3-era trace line: RunSummary without the scheduler
        // block (round-trip a current summary, strip the new fields)
        let modern = TelemetryEvent::RunSummary(RunSummary {
            requests: 2,
            scheduler_jobs: 8,
            ..RunSummary::default()
        });
        let line = serde_json::to_string(&modern).unwrap();
        let mut value: serde::Value = serde_json::from_str(&line).unwrap();
        if let serde::Value::Object(event) = &mut value {
            for (_, payload) in event.iter_mut() {
                if let serde::Value::Object(fields) = payload {
                    fields.retain(|(k, _)| !k.starts_with("scheduler_"));
                }
            }
        }
        let legacy = serde_json::to_string(&value).unwrap();
        assert!(!legacy.contains("scheduler_"), "fields really stripped");
        let e: TelemetryEvent = serde_json::from_str(&legacy).unwrap();
        let TelemetryEvent::RunSummary(s) = e else {
            panic!("expected a RunSummary");
        };
        assert_eq!(s.requests, 2);
        assert_eq!(s.scheduler_jobs, 0, "missing fields default to zero");
    }
}
