//! Kernel identities and ordered kernel sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a kernel within a [`KernelSet`] (its position in the
/// application's loop control flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelId(pub u32);

impl KernelId {
    /// The position as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The ordered set of kernels forming an application's main loop.
///
/// Order matters: chains are windows over this order, and the order is
/// the application's control flow (paper: "for each unique application
/// control path that has N kernels, only (N−1) pair-wise interactions
/// are measured" — plus the wrap-around pair, since the loop repeats).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSet {
    names: Vec<String>,
}

impl KernelSet {
    /// Build from kernel names in control-flow order.
    ///
    /// # Panics
    /// If empty or if names are not unique.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "a kernel set cannot be empty");
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate kernel name '{n}' in kernel set"
            );
        }
        Self { names }
    }

    /// Number of kernels in the loop.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a kernel.
    pub fn name(&self, id: KernelId) -> &str {
        &self.names[id.index()]
    }

    /// Look up a kernel by name.
    pub fn id_of(&self, name: &str) -> Option<KernelId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| KernelId(i as u32))
    }

    /// All kernel ids in loop order.
    pub fn ids(&self) -> impl Iterator<Item = KernelId> + '_ {
        (0..self.names.len() as u32).map(KernelId)
    }

    /// All kernel names in loop order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The kernel following `id` in the (cyclic) loop.
    pub fn next(&self, id: KernelId) -> KernelId {
        KernelId(((id.index() + 1) % self.len()) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_order() {
        let ks = KernelSet::new(vec!["copy_faces", "x_solve", "y_solve"]);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks.id_of("x_solve"), Some(KernelId(1)));
        assert_eq!(ks.name(KernelId(2)), "y_solve");
        assert_eq!(ks.id_of("nope"), None);
    }

    #[test]
    fn cyclic_next() {
        let ks = KernelSet::new(vec!["a", "b", "c"]);
        assert_eq!(ks.next(KernelId(0)), KernelId(1));
        assert_eq!(ks.next(KernelId(2)), KernelId(0));
    }

    #[test]
    fn ids_iterate_in_order() {
        let ks = KernelSet::new(vec!["a", "b"]);
        let ids: Vec<_> = ks.ids().collect();
        assert_eq!(ids, vec![KernelId(0), KernelId(1)]);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_panic() {
        KernelSet::new(vec!["a", "a"]);
    }

    #[test]
    #[should_panic]
    fn empty_set_panics() {
        KernelSet::new(Vec::<String>::new());
    }

    #[test]
    fn display_of_id() {
        assert_eq!(KernelId(3).to_string(), "k3");
    }
}
