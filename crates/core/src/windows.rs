//! Cyclic chain windows over a kernel loop.

use crate::kernel::{KernelId, KernelSet};
use serde::{Deserialize, Serialize};

/// A chain of `L` consecutive kernels in the application's loop,
/// wrapping cyclically (the loop repeats, so the kernel after the last
/// is the first — the paper's BT tables include the `{Add, Copy
/// Faces}` wrap-around pair).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainWindow {
    kernels: Vec<KernelId>,
}

impl ChainWindow {
    /// The window of length `len` starting at loop position `start`.
    pub fn at(set: &KernelSet, start: usize, len: usize) -> Self {
        assert!(len >= 1 && len <= set.len(), "window length out of range");
        assert!(start < set.len(), "window start out of range");
        let n = set.len();
        let kernels = (0..len)
            .map(|o| KernelId(((start + o) % n) as u32))
            .collect();
        Self { kernels }
    }

    /// The kernels of the window in execution order.
    pub fn kernels(&self) -> &[KernelId] {
        &self.kernels
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the window is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Whether the window contains kernel `id`.
    pub fn contains(&self, id: KernelId) -> bool {
        self.kernels.contains(&id)
    }

    /// Human-readable label like `{copy_faces, x_solve}`.
    pub fn label(&self, set: &KernelSet) -> String {
        let names: Vec<&str> = self.kernels.iter().map(|&k| set.name(k)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// All cyclic windows of length `len` over the loop: one starting at
/// each of the `N` loop positions.
///
/// For `len == N` every window is a rotation of the whole loop; the
/// coupling predictor built from them reproduces the measured loop
/// time exactly (see `CouplingAnalysis` tests).
pub fn cyclic_windows(set: &KernelSet, len: usize) -> Vec<ChainWindow> {
    (0..set.len())
        .map(|s| ChainWindow::at(set, s, len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> KernelSet {
        KernelSet::new(vec!["a", "b", "c", "d"])
    }

    #[test]
    fn window_wraps_cyclically() {
        let s = set();
        let w = ChainWindow::at(&s, 3, 2);
        assert_eq!(w.kernels(), &[KernelId(3), KernelId(0)]);
        assert_eq!(w.label(&s), "{d, a}");
    }

    #[test]
    fn all_windows_cover_each_kernel_len_times() {
        let s = set();
        for len in 1..=4 {
            let ws = cyclic_windows(&s, len);
            assert_eq!(ws.len(), 4);
            for k in s.ids() {
                let containing = ws.iter().filter(|w| w.contains(k)).count();
                assert_eq!(containing, len, "len={len} kernel={k}");
            }
        }
    }

    #[test]
    fn full_length_windows_are_rotations() {
        let s = set();
        let ws = cyclic_windows(&s, 4);
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.kernels()[0], KernelId(i as u32));
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn pairwise_windows_match_paper_bt_structure() {
        // BT loop: copy_faces, x_solve, y_solve, z_solve, add
        let s = KernelSet::new(vec!["copy_faces", "x_solve", "y_solve", "z_solve", "add"]);
        let ws = cyclic_windows(&s, 2);
        let labels: Vec<_> = ws.iter().map(|w| w.label(&s)).collect();
        assert_eq!(
            labels,
            vec![
                "{copy_faces, x_solve}",
                "{x_solve, y_solve}",
                "{y_solve, z_solve}",
                "{z_solve, add}",
                "{add, copy_faces}",
            ]
        );
    }

    #[test]
    #[should_panic]
    fn oversized_window_panics() {
        ChainWindow::at(&set(), 0, 5);
    }
}
