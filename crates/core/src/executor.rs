//! The platform abstraction the coupling framework measures against.

use crate::kernel::{KernelId, KernelSet};
use crate::measurement::Measurement;

/// A platform that can execute chains of an application's loop kernels
/// under the paper's measurement protocol.
///
/// Implementations:
///
/// * `kc-npb` provides executors that run the BT/SP/LU kernels on the
///   simulated cluster;
/// * [`crate::synthetic::SyntheticExecutor`] is an analytic stand-in
///   for tests, property tests and the quickstart example.
///
/// All times are **per loop iteration** seconds unless stated
/// otherwise; [`ChainExecutor::measure_application`] is the exception,
/// returning the whole-application time (serial overhead plus
/// `loop_iterations()` loop bodies).
pub trait ChainExecutor {
    /// The loop kernels in control-flow order.
    fn kernel_set(&self) -> &KernelSet;

    /// Number of loop iterations the full application performs (e.g.
    /// 60 for BT class S, 200 for classes W and A).
    fn loop_iterations(&self) -> u32;

    /// Measure a loop whose body is exactly `chain`, repeated enough
    /// to dominate, and return the per-iteration time.  `reps` is the
    /// number of timing repetitions to take (the paper uses 50 for
    /// kernels).
    fn measure_chain(&mut self, chain: &[KernelId], reps: u32) -> Measurement;

    /// Measure the one-off parts of the application outside the main
    /// loop (INITIALIZATION + FINAL in the NPB decompositions), total
    /// seconds.
    fn measure_serial_overhead(&mut self) -> Measurement;

    /// Measure the full application (ground truth), total seconds.
    fn measure_application(&mut self) -> Measurement;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticExecutor;

    #[test]
    fn trait_is_object_safe() {
        let mut exec = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 1.0)
            .loop_iterations(10)
            .build();
        let dyn_exec: &mut dyn ChainExecutor = &mut exec;
        assert_eq!(dyn_exec.kernel_set().len(), 2);
        let ids: Vec<KernelId> = dyn_exec.kernel_set().ids().collect();
        let m = dyn_exec.measure_chain(&ids, 3);
        assert!(m.mean() > 0.0);
    }
}
