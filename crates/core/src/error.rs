//! Error type for coupling analysis.

use std::fmt;

/// Errors from coupling collection and prediction.
#[derive(Clone, Debug, PartialEq)]
pub enum CouplingError {
    /// Requested chain length does not fit the kernel set.
    BadChainLength {
        /// Requested window length.
        requested: usize,
        /// Number of kernels in the loop.
        kernels: usize,
    },
    /// A chain's isolated-time denominator is zero, so its coupling
    /// value is undefined.
    ZeroDenominator {
        /// Description of the offending chain.
        chain: String,
    },
    /// A kernel has no containing window with positive measured time,
    /// so its coefficient is undefined.
    UndefinedCoefficient {
        /// Name of the kernel.
        kernel: String,
    },
    /// The number of supplied per-kernel models does not match the
    /// kernel set.
    ModelCountMismatch {
        /// Models supplied.
        supplied: usize,
        /// Kernels expected.
        expected: usize,
    },
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingError::BadChainLength { requested, kernels } => write!(
                f,
                "chain length {requested} is invalid for a loop of {kernels} kernels \
                 (must be 1..={kernels})"
            ),
            CouplingError::ZeroDenominator { chain } => {
                write!(
                    f,
                    "chain {chain} has zero total isolated time; coupling undefined"
                )
            }
            CouplingError::UndefinedCoefficient { kernel } => {
                write!(
                    f,
                    "kernel '{kernel}' has no weighted window; coefficient undefined"
                )
            }
            CouplingError::ModelCountMismatch { supplied, expected } => {
                write!(f, "got {supplied} kernel models, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CouplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CouplingError::BadChainLength {
            requested: 9,
            kernels: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        let e = CouplingError::ZeroDenominator {
            chain: "{a,b}".into(),
        };
        assert!(e.to_string().contains("{a,b}"));
    }
}
