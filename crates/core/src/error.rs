//! Error type for coupling analysis.

use std::fmt;

/// Errors from coupling collection and prediction.
#[derive(Clone, Debug, PartialEq)]
pub enum CouplingError {
    /// Requested chain length does not fit the kernel set.
    BadChainLength {
        /// Requested window length.
        requested: usize,
        /// Number of kernels in the loop.
        kernels: usize,
    },
    /// A chain's isolated-time denominator is zero, so its coupling
    /// value is undefined.
    ZeroDenominator {
        /// Description of the offending chain.
        chain: String,
    },
    /// A kernel has no containing window with positive measured time,
    /// so its coefficient is undefined.
    UndefinedCoefficient {
        /// Name of the kernel.
        kernel: String,
    },
    /// The number of supplied per-kernel models does not match the
    /// kernel set.
    ModelCountMismatch {
        /// Models supplied.
        supplied: usize,
        /// Kernels expected.
        expected: usize,
    },
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingError::BadChainLength { requested, kernels } => write!(
                f,
                "chain length {requested} is invalid for a loop of {kernels} kernels \
                 (must be 1..={kernels})"
            ),
            CouplingError::ZeroDenominator { chain } => {
                write!(
                    f,
                    "chain {chain} has zero total isolated time; coupling undefined"
                )
            }
            CouplingError::UndefinedCoefficient { kernel } => {
                write!(
                    f,
                    "kernel '{kernel}' has no weighted window; coefficient undefined"
                )
            }
            CouplingError::ModelCountMismatch { supplied, expected } => {
                write!(f, "got {supplied} kernel models, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CouplingError {}

/// Result alias for the measurement path.
pub type KcResult<T> = Result<T, KcError>;

/// Errors from the measurement-provider path (cell resolution,
/// cache/backend access, analysis assembly).  Wraps [`CouplingError`]
/// so the whole measurement pipeline reports failures instead of
/// panicking.
#[derive(Clone, Debug, PartialEq)]
pub enum KcError {
    /// The coupling algebra rejected the assembled measurements.
    Coupling(CouplingError),
    /// A measurement key names a benchmark the provider cannot build.
    UnknownBenchmark(String),
    /// A measurement key names a problem class the provider cannot
    /// build.
    UnknownClass(String),
    /// A measurement key carries a machine fingerprint that was never
    /// registered with the provider.
    UnknownMachine {
        /// The unresolvable fingerprint.
        fingerprint: String,
    },
    /// A measurement key carries an execution-config digest that was
    /// never registered with the provider.
    UnknownExecConfig {
        /// The unresolvable digest.
        digest: String,
    },
    /// A measurement key is structurally invalid for its target (e.g.
    /// a chain referencing kernels outside the loop).
    BadCell {
        /// Canonical form of the offending key.
        key: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Persistence (store/backend) failure.
    Io(String),
}

impl From<CouplingError> for KcError {
    fn from(e: CouplingError) -> Self {
        KcError::Coupling(e)
    }
}

impl fmt::Display for KcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KcError::Coupling(e) => write!(f, "coupling error: {e}"),
            KcError::UnknownBenchmark(b) => write!(f, "unknown benchmark '{b}'"),
            KcError::UnknownClass(c) => write!(f, "unknown problem class '{c}'"),
            KcError::UnknownMachine { fingerprint } => {
                write!(f, "no machine registered for fingerprint {fingerprint}")
            }
            KcError::UnknownExecConfig { digest } => {
                write!(f, "no exec config registered for digest {digest}")
            }
            KcError::BadCell { key, reason } => {
                write!(f, "invalid measurement cell {key}: {reason}")
            }
            KcError::Io(msg) => write!(f, "measurement store error: {msg}"),
        }
    }
}

impl std::error::Error for KcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KcError::Coupling(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CouplingError::BadChainLength {
            requested: 9,
            kernels: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        let e = CouplingError::ZeroDenominator {
            chain: "{a,b}".into(),
        };
        assert!(e.to_string().contains("{a,b}"));
    }

    #[test]
    fn kc_error_wraps_and_displays() {
        let inner = CouplingError::BadChainLength {
            requested: 9,
            kernels: 5,
        };
        let e: KcError = inner.clone().into();
        assert_eq!(e, KcError::Coupling(inner));
        assert!(e.to_string().contains("chain length 9"));
        let e = KcError::UnknownMachine {
            fingerprint: "deadbeef".into(),
        };
        assert!(e.to_string().contains("deadbeef"));
        let e = KcError::BadCell {
            key: "k".into(),
            reason: "out of range".into(),
        };
        assert!(e.to_string().contains("out of range"));
    }
}
