//! Coupling reuse across configurations — the paper's future work.
//!
//! §6: "Future work is focused on determining which coupling values
//! must be obtained and which values can be reused, thereby reducing
//! the number of needed experiments."
//!
//! The expensive part of a coupling campaign is measuring every cyclic
//! window at every configuration (processor count × class × machine).
//! The coefficients `α_k`, however, are *ratios* — and the paper's own
//! scaling study shows they move through a small number of regimes.
//! Within a regime they should transfer: coefficients measured at one
//! configuration, combined with the cheap isolated kernel times of
//! another, should still beat summation there.
//!
//! [`predict_with_reused_coefficients`] implements that transfer, and
//! [`ReuseStudy`] quantifies it over a whole configuration grid (the
//! `kc-experiments` crate builds the paper-style table from it).

use crate::analysis::CouplingAnalysis;
use crate::error::CouplingError;
use serde::{Deserialize, Serialize};

/// Predict a *target* configuration's total time using coefficients
/// from a coupling analysis of a *source* configuration:
///
/// ```text
/// T_target ≈ overhead_target + iters_target · Σ_k α_k(source) · P_k(target)
/// ```
///
/// `target_isolated` are the per-iteration isolated kernel times at
/// the target (one per kernel, loop order) — the only measurements the
/// target configuration needs.
pub fn predict_with_reused_coefficients(
    source: &CouplingAnalysis,
    target_isolated: &[f64],
    target_iterations: u32,
    target_overhead: f64,
) -> Result<f64, CouplingError> {
    if target_isolated.len() != source.kernel_set().len() {
        return Err(CouplingError::ModelCountMismatch {
            supplied: target_isolated.len(),
            expected: source.kernel_set().len(),
        });
    }
    let coeff = source.coefficients()?;
    let per_iter = coeff.compose(target_isolated);
    Ok(target_overhead + per_iter * target_iterations as f64)
}

/// One cell of a reuse study: coefficients from `source`, applied at
/// `target`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReuseCell {
    /// Label of the configuration the coefficients came from.
    pub source: String,
    /// Label of the configuration being predicted.
    pub target: String,
    /// The reused-coefficient prediction (total seconds).
    pub predicted: f64,
    /// Ground truth at the target.
    pub actual: f64,
    /// The summation prediction at the target, for reference.
    pub summation: f64,
}

impl ReuseCell {
    /// Relative error of the reused prediction.
    pub fn rel_err(&self) -> f64 {
        (self.predicted - self.actual).abs() / self.actual
    }

    /// Relative error of summation at the same target.
    pub fn summation_rel_err(&self) -> f64 {
        (self.summation - self.actual).abs() / self.actual
    }

    /// Whether reuse still beats summation at this target.
    pub fn beats_summation(&self) -> bool {
        self.rel_err() < self.summation_rel_err()
    }
}

/// A full source × target transfer study.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseStudy {
    /// All evaluated transfer cells (including the native diagonal).
    pub cells: Vec<ReuseCell>,
}

impl ReuseStudy {
    /// An empty study.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate one transfer and record it.
    pub fn record(
        &mut self,
        source: &CouplingAnalysis,
        source_label: &str,
        target: &CouplingAnalysis,
        target_label: &str,
    ) -> Result<&ReuseCell, CouplingError> {
        let target_isolated: Vec<f64> = target
            .kernel_set()
            .ids()
            .map(|k| target.isolated(k).mean())
            .collect();
        let predicted = predict_with_reused_coefficients(
            source,
            &target_isolated,
            target.loop_iterations(),
            target.overhead().mean(),
        )?;
        let summation = target.predict(crate::predict::Predictor::Summation)?;
        self.cells.push(ReuseCell {
            source: source_label.to_string(),
            target: target_label.to_string(),
            predicted,
            actual: target.actual().mean(),
            summation,
        });
        Ok(self.cells.last().unwrap())
    }

    /// The cell for a given source/target pair.
    pub fn cell(&self, source: &str, target: &str) -> Option<&ReuseCell> {
        self.cells
            .iter()
            .find(|c| c.source == source && c.target == target)
    }

    /// Mean relative error over the off-diagonal (true transfer)
    /// cells.
    pub fn mean_transfer_err(&self) -> f64 {
        let off: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.source != c.target)
            .map(ReuseCell::rel_err)
            .collect();
        assert!(!off.is_empty(), "no transfer cells recorded");
        off.iter().sum::<f64>() / off.len() as f64
    }

    /// Fraction of transfer cells where reuse still beats summation.
    pub fn transfer_win_rate(&self) -> f64 {
        let off: Vec<&ReuseCell> = self.cells.iter().filter(|c| c.source != c.target).collect();
        assert!(!off.is_empty(), "no transfer cells recorded");
        off.iter().filter(|c| c.beats_summation()).count() as f64 / off.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::Predictor;
    use crate::synthetic::SyntheticExecutor;

    /// Two synthetic "configurations" with the same interaction
    /// *structure* but scaled base times — the regime-transfer setting.
    fn config(scale: f64, iters: u32) -> SyntheticExecutor {
        SyntheticExecutor::builder()
            .kernel("a", 1.0 * scale)
            .kernel("b", 2.0 * scale)
            .kernel("c", 1.5 * scale)
            .interaction("a", "b", -0.2 * scale)
            .interaction("b", "c", -0.3 * scale)
            .interaction("c", "a", -0.1 * scale)
            .overheads(1.0, 0.5)
            .loop_iterations(iters)
            .build()
    }

    #[test]
    fn reuse_has_zero_transfer_penalty_under_proportional_scaling() {
        // when the target's base times AND interactions are a scaled
        // copy of the source's, the coupling ratios are identical, so
        // the transferred prediction equals the native coupling
        // predictor at the target — reuse costs nothing
        let mut src = config(1.0, 100);
        let mut tgt = config(0.25, 400);
        let sa = CouplingAnalysis::collect(&mut src, 2, 3).unwrap();
        let ta = CouplingAnalysis::collect(&mut tgt, 2, 3).unwrap();
        let native = ta.predict(Predictor::coupling(2)).unwrap();
        let mut study = ReuseStudy::new();
        let cell = study.record(&sa, "p4", &ta, "p16").unwrap();
        assert!(
            (cell.predicted - native).abs() < 1e-9 * native,
            "transferred {} vs native {native}",
            cell.predicted
        );
        assert!(cell.beats_summation());
    }

    #[test]
    fn reuse_degrades_gracefully_when_regimes_differ() {
        let mut src = config(1.0, 100);
        // a target whose interactions are *relatively* weaker
        let mut tgt = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 1.5)
            .interaction("a", "b", -0.05)
            .overheads(1.0, 0.5)
            .loop_iterations(100)
            .build();
        let sa = CouplingAnalysis::collect(&mut src, 2, 3).unwrap();
        let ta = CouplingAnalysis::collect(&mut tgt, 2, 3).unwrap();
        let mut study = ReuseStudy::new();
        let cell = study.record(&sa, "src", &ta, "tgt").unwrap().clone();
        // the native predictor at the target
        let native = ta.predict(Predictor::coupling(2)).unwrap();
        let native_err = (native - ta.actual().mean()).abs() / ta.actual().mean();
        assert!(
            cell.rel_err() >= native_err - 1e-12,
            "transfer cannot beat native here"
        );
        // the transferred coefficients over-correct so badly that even
        // summation wins — the honest limit of reuse: it works within
        // a coupling regime, not across regime changes
        assert!(!cell.beats_summation());
    }

    #[test]
    fn study_summaries() {
        let mut a = config(1.0, 50);
        let mut b = config(2.0, 50);
        let aa = CouplingAnalysis::collect(&mut a, 2, 3).unwrap();
        let bb = CouplingAnalysis::collect(&mut b, 2, 3).unwrap();
        let mut study = ReuseStudy::new();
        study.record(&aa, "A", &aa, "A").unwrap();
        study.record(&aa, "A", &bb, "B").unwrap();
        study.record(&bb, "B", &aa, "A").unwrap();
        assert_eq!(study.cells.len(), 3);
        assert!(study.cell("A", "B").is_some());
        // proportional configs: each transfer matches the native
        // predictor at its own target, whose residual is the (small)
        // L=2 composition error
        let native_err = |a: &CouplingAnalysis| {
            let native = a.predict(Predictor::coupling(2)).unwrap();
            (native - a.actual().mean()).abs() / a.actual().mean()
        };
        let expected = (native_err(&aa) + native_err(&bb)) / 2.0;
        assert!((study.mean_transfer_err() - expected).abs() < 1e-9);
        assert_eq!(study.transfer_win_rate(), 1.0);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut a = config(1.0, 50);
        let aa = CouplingAnalysis::collect(&mut a, 2, 3).unwrap();
        let err = predict_with_reused_coefficients(&aa, &[1.0], 10, 0.0).unwrap_err();
        assert!(matches!(
            err,
            CouplingError::ModelCountMismatch {
                supplied: 1,
                expected: 3
            }
        ));
    }
}
