//! An analytic, closed-form [`ChainExecutor`] for tests and examples.
//!
//! The synthetic application has per-kernel base times and pairwise
//! adjacency interactions: when kernel `j` immediately follows kernel
//! `i` in a measurement loop (cyclically — the loop repeats, so the
//! last kernel is adjacent to the first), the per-iteration time gains
//! `delta(i, j)` seconds (negative = constructive sharing, positive =
//! destructive interference).  This is the simplest model with a
//! non-trivial coupling structure, and several exact properties of the
//! coupling methodology can be verified against it in closed form.

use crate::executor::ChainExecutor;
use crate::kernel::{KernelId, KernelSet};
use crate::measurement::Measurement;

/// Builder for [`SyntheticExecutor`].
#[derive(Clone, Debug, Default)]
pub struct SyntheticBuilder {
    names: Vec<String>,
    base: Vec<f64>,
    interactions: Vec<(String, String, f64)>,
    init_time: f64,
    final_time: f64,
    loop_iterations: u32,
    noise: Option<(f64, f64, u64)>,
}

impl SyntheticBuilder {
    /// Add a kernel with the given isolated per-iteration time.
    pub fn kernel(mut self, name: &str, base_time: f64) -> Self {
        self.names.push(name.to_string());
        self.base.push(base_time);
        self
    }

    /// Declare that `second` immediately following `first` changes the
    /// per-iteration time by `delta` seconds.
    pub fn interaction(mut self, first: &str, second: &str, delta: f64) -> Self {
        self.interactions
            .push((first.to_string(), second.to_string(), delta));
        self
    }

    /// Set the one-off init and final times.
    pub fn overheads(mut self, init: f64, final_: f64) -> Self {
        self.init_time = init;
        self.final_time = final_;
        self
    }

    /// Set the application's loop iteration count.
    pub fn loop_iterations(mut self, iters: u32) -> Self {
        self.loop_iterations = iters;
        self
    }

    /// Enable deterministic measurement noise (floor seconds,
    /// proportional fraction, seed).
    pub fn noise(mut self, floor: f64, frac: f64, seed: u64) -> Self {
        self.noise = Some((floor, frac, seed));
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// If no kernels were added, iterations is zero, or an interaction
    /// references an unknown kernel.
    pub fn build(self) -> SyntheticExecutor {
        assert!(!self.names.is_empty(), "synthetic app needs kernels");
        assert!(
            self.loop_iterations > 0,
            "synthetic app needs loop iterations"
        );
        let set = KernelSet::new(self.names.clone());
        let n = set.len();
        let mut delta = vec![vec![0.0; n]; n];
        for (a, b, d) in &self.interactions {
            let ia = set
                .id_of(a)
                .unwrap_or_else(|| panic!("unknown kernel '{a}'"))
                .index();
            let ib = set
                .id_of(b)
                .unwrap_or_else(|| panic!("unknown kernel '{b}'"))
                .index();
            delta[ia][ib] += d;
        }
        SyntheticExecutor {
            set,
            base: self.base,
            delta,
            init_time: self.init_time,
            final_time: self.final_time,
            loop_iterations: self.loop_iterations,
            noise: self.noise,
            counter: 0,
        }
    }
}

/// The synthetic analytic executor; see the module docs.
#[derive(Clone, Debug)]
pub struct SyntheticExecutor {
    set: KernelSet,
    base: Vec<f64>,
    delta: Vec<Vec<f64>>,
    init_time: f64,
    final_time: f64,
    loop_iterations: u32,
    noise: Option<(f64, f64, u64)>,
    counter: u64,
}

impl SyntheticExecutor {
    /// Start building a synthetic application.
    pub fn builder() -> SyntheticBuilder {
        SyntheticBuilder::default()
    }

    /// The exact (noise-free) per-iteration time of a loop whose body
    /// is `chain`: base times plus every cyclic adjacency delta.
    pub fn exact_chain_time(&self, chain: &[KernelId]) -> f64 {
        let mut t: f64 = chain.iter().map(|k| self.base[k.index()]).sum();
        let l = chain.len();
        for (pos, &k) in chain.iter().enumerate() {
            let next = chain[(pos + 1) % l];
            // a singleton chain is adjacent only to itself
            t += self.delta[k.index()][next.index()];
        }
        t
    }

    /// The exact (noise-free) total application time.
    pub fn exact_application_time(&self) -> f64 {
        let all: Vec<KernelId> = self.set.ids().collect();
        self.init_time + self.final_time + self.exact_chain_time(&all) * self.loop_iterations as f64
    }

    fn sample(&mut self, true_time: f64) -> f64 {
        let Some((floor, frac, seed)) = self.noise else {
            return true_time;
        };
        self.counter += 1;
        let g1 = gauss(seed, self.counter, 0);
        let g2 = gauss(seed, self.counter, 1);
        (true_time * (1.0 + frac * g1) + floor * g2.abs()).max(0.0)
    }

    fn measure(&mut self, true_time: f64, reps: u32) -> Measurement {
        let samples = (0..reps.max(1)).map(|_| self.sample(true_time)).collect();
        Measurement::from_samples(samples)
    }
}

impl ChainExecutor for SyntheticExecutor {
    fn kernel_set(&self) -> &KernelSet {
        &self.set
    }

    fn loop_iterations(&self) -> u32 {
        self.loop_iterations
    }

    fn measure_chain(&mut self, chain: &[KernelId], reps: u32) -> Measurement {
        let t = self.exact_chain_time(chain);
        self.measure(t, reps)
    }

    fn measure_serial_overhead(&mut self) -> Measurement {
        let t = self.init_time + self.final_time;
        self.measure(t, 1)
    }

    fn measure_application(&mut self) -> Measurement {
        let t = self.exact_application_time();
        self.measure(t, 1)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn gauss(seed: u64, counter: u64, lane: u64) -> f64 {
    let mut acc = 0.0;
    for i in 0..4u64 {
        let h = splitmix64(seed ^ counter.wrapping_mul(0x100_0000_01b3) ^ (lane << 32) ^ i);
        acc += (h >> 11) as f64 / (1u64 << 53) as f64;
    }
    (acc - 2.0) / (1.0f64 / 3.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_time_includes_wraparound_adjacency() {
        let e = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .interaction("a", "b", 0.5)
            .interaction("b", "a", 0.25)
            .loop_iterations(1)
            .build();
        let ids: Vec<KernelId> = e.kernel_set().ids().collect();
        // loop a b a b …: both (a,b) and (b,a) adjacencies occur
        assert!((e.exact_chain_time(&ids) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn singleton_chain_uses_self_adjacency() {
        let e = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .interaction("a", "a", 0.1)
            .loop_iterations(1)
            .build();
        assert!((e.exact_chain_time(&[KernelId(0)]) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn application_time_composes_overheads_and_iterations() {
        let e = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 1.0)
            .overheads(5.0, 3.0)
            .loop_iterations(10)
            .build();
        assert!((e.exact_application_time() - (8.0 + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn noise_free_measurements_are_exact() {
        let mut e = SyntheticExecutor::builder()
            .kernel("a", 2.0)
            .loop_iterations(4)
            .build();
        let m = e.measure_chain(&[KernelId(0)], 5);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.std_dev(), 0.0);
    }

    #[test]
    fn noisy_measurements_vary_but_replay() {
        let make = || {
            SyntheticExecutor::builder()
                .kernel("a", 2.0)
                .loop_iterations(4)
                .noise(0.01, 0.01, 99)
                .build()
        };
        let mut e1 = make();
        let mut e2 = make();
        let m1 = e1.measure_chain(&[KernelId(0)], 10);
        let m2 = e2.measure_chain(&[KernelId(0)], 10);
        assert_eq!(m1, m2, "same seed must replay");
        assert!(m1.std_dev() > 0.0, "noise must vary samples");
    }

    #[test]
    #[should_panic]
    fn unknown_interaction_kernel_panics() {
        SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .interaction("a", "zz", 0.1)
            .loop_iterations(1)
            .build();
    }
}
