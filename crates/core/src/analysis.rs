//! Coupling collection and the resulting analysis object.

use crate::coefficients::Coefficients;
use crate::error::CouplingError;
use crate::executor::ChainExecutor;
use crate::kernel::{KernelId, KernelSet};
use crate::measurement::Measurement;
use crate::predict::Predictor;
use crate::windows::{cyclic_windows, ChainWindow};

/// The complete set of measurements and derived coupling values for
/// one application on one platform configuration, at one chain length.
#[derive(Clone, Debug)]
pub struct CouplingAnalysis {
    kernel_set: KernelSet,
    chain_len: usize,
    loop_iterations: u32,
    /// `P_k` per kernel, per iteration.
    isolated: Vec<Measurement>,
    windows: Vec<ChainWindow>,
    /// `P_W` per window, per iteration.
    window_perf: Vec<Measurement>,
    /// Serial (init + final) overhead, total seconds.
    overhead: Measurement,
    /// Ground-truth application time, total seconds.
    actual: Measurement,
}

impl CouplingAnalysis {
    /// Run the full measurement campaign on `exec` for windows of
    /// length `chain_len`: every kernel in isolation, every cyclic
    /// window, the serial overhead, and the full application.
    ///
    /// `reps` is the number of timing repetitions per measurement.
    pub fn collect(
        exec: &mut dyn ChainExecutor,
        chain_len: usize,
        reps: u32,
    ) -> Result<Self, CouplingError> {
        let kernel_set = exec.kernel_set().clone();
        let n = kernel_set.len();
        if chain_len < 1 || chain_len > n {
            return Err(CouplingError::BadChainLength {
                requested: chain_len,
                kernels: n,
            });
        }
        let isolated: Vec<Measurement> = kernel_set
            .ids()
            .map(|k| exec.measure_chain(&[k], reps))
            .collect();
        let windows = cyclic_windows(&kernel_set, chain_len);
        let window_perf: Vec<Measurement> = windows
            .iter()
            .map(|w| exec.measure_chain(w.kernels(), reps))
            .collect();
        let overhead = exec.measure_serial_overhead();
        let actual = exec.measure_application();
        let loop_iterations = exec.loop_iterations();
        Ok(Self {
            kernel_set,
            chain_len,
            loop_iterations,
            isolated,
            windows,
            window_perf,
            overhead,
            actual,
        })
    }

    /// Assemble an analysis from externally obtained measurements
    /// (e.g. deserialized from a prior campaign).  Windows are the
    /// cyclic windows of `chain_len`; `window_perf` must be in the
    /// same order.
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurements(
        kernel_set: KernelSet,
        chain_len: usize,
        loop_iterations: u32,
        isolated: Vec<Measurement>,
        window_perf: Vec<Measurement>,
        overhead: Measurement,
        actual: Measurement,
    ) -> Result<Self, CouplingError> {
        let n = kernel_set.len();
        if chain_len < 1 || chain_len > n {
            return Err(CouplingError::BadChainLength {
                requested: chain_len,
                kernels: n,
            });
        }
        assert_eq!(
            isolated.len(),
            n,
            "need one isolated measurement per kernel"
        );
        let windows = cyclic_windows(&kernel_set, chain_len);
        assert_eq!(
            window_perf.len(),
            windows.len(),
            "need one measurement per window"
        );
        Ok(Self {
            kernel_set,
            chain_len,
            loop_iterations,
            isolated,
            windows,
            window_perf,
            overhead,
            actual,
        })
    }

    /// The kernel set.
    pub fn kernel_set(&self) -> &KernelSet {
        &self.kernel_set
    }

    /// Window chain length `L`.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Loop iterations of the full application.
    pub fn loop_iterations(&self) -> u32 {
        self.loop_iterations
    }

    /// Isolated per-iteration measurement `P_k`.
    pub fn isolated(&self, k: KernelId) -> &Measurement {
        &self.isolated[k.index()]
    }

    /// The cyclic windows measured.
    pub fn windows(&self) -> &[ChainWindow] {
        &self.windows
    }

    /// Per-iteration measurement `P_W` of window `w` (index into
    /// [`CouplingAnalysis::windows`]).
    pub fn window_perf(&self, w: usize) -> &Measurement {
        &self.window_perf[w]
    }

    /// Serial overhead (init + final), total seconds.
    pub fn overhead(&self) -> &Measurement {
        &self.overhead
    }

    /// Measured full-application time, total seconds.
    pub fn actual(&self) -> &Measurement {
        &self.actual
    }

    /// Coupling value `C_W = P_W / Σ_{k∈W} P_k` of window `w`
    /// (paper Eq. 1/2).
    pub fn coupling(&self, w: usize) -> Result<f64, CouplingError> {
        let window = &self.windows[w];
        let denom: f64 = window
            .kernels()
            .iter()
            .map(|&k| self.isolated[k.index()].mean())
            .sum();
        if denom <= 0.0 {
            return Err(CouplingError::ZeroDenominator {
                chain: window.label(&self.kernel_set),
            });
        }
        Ok(self.window_perf[w].mean() / denom)
    }

    /// All coupling values in window order.
    pub fn couplings(&self) -> Result<Vec<f64>, CouplingError> {
        (0..self.windows.len()).map(|w| self.coupling(w)).collect()
    }

    /// Normal-approximation 95 % confidence interval of window `w`'s
    /// coupling value, propagating measurement spread through the
    /// ratio `C = P_W / Σ P_k` with the delta method:
    /// `(σ_C / C)² ≈ (σ_W / P_W)² + (Σ σ_k²) / (Σ P_k)²`.
    pub fn coupling_interval(&self, w: usize) -> Result<(f64, f64), CouplingError> {
        let c = self.coupling(w)?;
        let window = &self.windows[w];
        let p_w = self.window_perf[w].mean();
        let denom: f64 = window
            .kernels()
            .iter()
            .map(|&k| self.isolated[k.index()].mean())
            .sum();
        let var_num = self.window_perf[w].std_err().powi(2);
        let var_den: f64 = window
            .kernels()
            .iter()
            .map(|&k| self.isolated[k.index()].std_err().powi(2))
            .sum();
        let rel = (var_num / (p_w * p_w).max(f64::MIN_POSITIVE) + var_den / (denom * denom)).sqrt();
        let half = 1.96 * c * rel;
        Ok((c - half, c + half))
    }

    /// The composition coefficients `α_k` (paper Section 3).
    pub fn coefficients(&self) -> Result<Coefficients, CouplingError> {
        let couplings = self.couplings()?;
        let mut alpha = Vec::with_capacity(self.kernel_set.len());
        for k in self.kernel_set.ids() {
            let mut num = 0.0;
            let mut den = 0.0;
            for (w, window) in self.windows.iter().enumerate() {
                if window.contains(k) {
                    let p_w = self.window_perf[w].mean();
                    num += couplings[w] * p_w;
                    den += p_w;
                }
            }
            if den <= 0.0 {
                return Err(CouplingError::UndefinedCoefficient {
                    kernel: self.kernel_set.name(k).to_string(),
                });
            }
            alpha.push(num / den);
        }
        Ok(Coefficients::new(self.kernel_set.clone(), alpha))
    }

    /// Predict the total application time with `predictor`, using the
    /// measured isolated times as the per-kernel models `E_k`.
    pub fn predict(&self, predictor: Predictor) -> Result<f64, CouplingError> {
        let models: Vec<f64> = self.isolated.iter().map(Measurement::mean).collect();
        self.predict_with_models(predictor, &models)
    }

    /// Predict the total application time with `predictor`, supplying
    /// explicit per-kernel per-iteration models `E_k` (paper Eq. 3 —
    /// the models may be analytic rather than measured).
    pub fn predict_with_models(
        &self,
        predictor: Predictor,
        models: &[f64],
    ) -> Result<f64, CouplingError> {
        if models.len() != self.kernel_set.len() {
            return Err(CouplingError::ModelCountMismatch {
                supplied: models.len(),
                expected: self.kernel_set.len(),
            });
        }
        let per_iter = match predictor {
            Predictor::Summation => models.iter().sum::<f64>(),
            Predictor::Coupling { chain_len } => {
                if chain_len != self.chain_len {
                    return Err(CouplingError::BadChainLength {
                        requested: chain_len,
                        kernels: self.chain_len,
                    });
                }
                let coeff = self.coefficients()?;
                self.kernel_set
                    .ids()
                    .map(|k| coeff.alpha(k) * models[k.index()])
                    .sum::<f64>()
            }
        };
        Ok(self.overhead.mean() + per_iter * self.loop_iterations as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticExecutor;

    fn interacting() -> SyntheticExecutor {
        SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 1.5)
            .kernel("d", 0.5)
            .interaction("a", "b", -0.2)
            .interaction("b", "c", 0.3)
            .interaction("c", "d", -0.1)
            .interaction("d", "a", 0.05)
            .overheads(3.0, 1.0)
            .loop_iterations(100)
            .build()
    }

    #[test]
    fn no_interaction_means_unit_coupling() {
        let mut exec = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 0.5)
            .loop_iterations(10)
            .build();
        let a = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        for c in a.couplings().unwrap() {
            assert!((c - 1.0).abs() < 1e-12, "coupling {c} != 1");
        }
        // and then both predictors coincide
        let s = a.predict(Predictor::Summation).unwrap();
        let c = a.predict(Predictor::coupling(2)).unwrap();
        assert!((s - c).abs() < 1e-9);
        // and both are exact
        assert!((s - exec.measure_application().mean()).abs() < 1e-9);
    }

    #[test]
    fn full_length_chain_predicts_exactly() {
        let mut exec = interacting();
        let a = CouplingAnalysis::collect(&mut exec, 4, 5).unwrap();
        let pred = a.predict(Predictor::coupling(4)).unwrap();
        let actual = exec.measure_application().mean();
        assert!(
            (pred - actual).abs() / actual < 1e-12,
            "full-chain prediction {pred} != actual {actual}"
        );
    }

    #[test]
    fn coupling_beats_summation_on_interacting_app() {
        let mut exec = interacting();
        let a = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        let actual = exec.measure_application().mean();
        let coupled = a.predict(Predictor::coupling(2)).unwrap();
        let summed = a.predict(Predictor::Summation).unwrap();
        assert!((coupled - actual).abs() < (summed - actual).abs());
    }

    #[test]
    fn constructive_interactions_lower_coupling_below_one() {
        let mut exec = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 1.0)
            .interaction("a", "b", -0.3)
            .loop_iterations(10)
            .build();
        let a = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        let c = a.couplings().unwrap();
        assert!(c.iter().all(|&c| c < 1.0), "{c:?}");
    }

    #[test]
    fn coupling_intervals_bracket_the_value_and_shrink_without_noise() {
        // noisy executor: interval has width; noise-free: degenerate
        let mut noisy = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .interaction("a", "b", -0.2)
            .loop_iterations(10)
            .noise(0.01, 0.02, 11)
            .build();
        let a = CouplingAnalysis::collect(&mut noisy, 2, 20).unwrap();
        for w in 0..a.windows().len() {
            let c = a.coupling(w).unwrap();
            let (lo, hi) = a.coupling_interval(w).unwrap();
            assert!(lo <= c && c <= hi);
            assert!(hi - lo > 0.0, "noisy interval must have width");
        }
        let mut clean = SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .interaction("a", "b", -0.2)
            .loop_iterations(10)
            .build();
        let a = CouplingAnalysis::collect(&mut clean, 2, 5).unwrap();
        let (lo, hi) = a.coupling_interval(0).unwrap();
        assert!((hi - lo).abs() < 1e-12, "noise-free interval is a point");
    }

    #[test]
    fn bad_chain_length_is_reported() {
        let mut exec = interacting();
        let err = CouplingAnalysis::collect(&mut exec, 9, 5).unwrap_err();
        assert!(matches!(
            err,
            CouplingError::BadChainLength {
                requested: 9,
                kernels: 4
            }
        ));
        assert!(CouplingAnalysis::collect(&mut exec, 0, 5).is_err());
    }

    #[test]
    fn predictor_chain_len_must_match_analysis() {
        let mut exec = interacting();
        let a = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        assert!(a.predict(Predictor::coupling(3)).is_err());
    }

    #[test]
    fn model_count_mismatch_is_reported() {
        let mut exec = interacting();
        let a = CouplingAnalysis::collect(&mut exec, 2, 5).unwrap();
        let err = a
            .predict_with_models(Predictor::Summation, &[1.0])
            .unwrap_err();
        assert!(matches!(
            err,
            CouplingError::ModelCountMismatch {
                supplied: 1,
                expected: 4
            }
        ));
    }

    #[test]
    fn coefficients_are_convex_combinations_of_couplings() {
        let mut exec = interacting();
        let a = CouplingAnalysis::collect(&mut exec, 3, 5).unwrap();
        let cs = a.couplings().unwrap();
        let lo = cs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let coeff = a.coefficients().unwrap();
        for k in a.kernel_set().ids() {
            let al = coeff.alpha(k);
            assert!(
                al >= lo - 1e-12 && al <= hi + 1e-12,
                "alpha {al} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn overhead_is_included_in_predictions() {
        let mut exec = interacting(); // overheads 3 + 1 = 4 s
        let a = CouplingAnalysis::collect(&mut exec, 4, 5).unwrap();
        let zero_models = vec![0.0; 4];
        let pred = a
            .predict_with_models(Predictor::Summation, &zero_models)
            .unwrap();
        assert!((pred - 4.0).abs() < 1e-12);
    }
}
