//! Composition coefficients `α_k`.

use crate::kernel::{KernelId, KernelSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The per-kernel composition coefficients of paper Section 3.
///
/// `α_k` is the weighted average of the coupling values of every
/// measured window containing kernel `k`, weighted by each window's
/// measured time, and multiplies the kernel's model in the predicted
/// loop time `T = Σ_k α_k E_k`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Coefficients {
    kernel_set: KernelSet,
    alpha: Vec<f64>,
}

impl Coefficients {
    /// Assemble from per-kernel values (one per kernel, in loop order).
    pub fn new(kernel_set: KernelSet, alpha: Vec<f64>) -> Self {
        assert_eq!(
            alpha.len(),
            kernel_set.len(),
            "one coefficient per kernel required"
        );
        Self { kernel_set, alpha }
    }

    /// The coefficient of kernel `k`.
    #[inline]
    pub fn alpha(&self, k: KernelId) -> f64 {
        self.alpha[k.index()]
    }

    /// All coefficients in loop order.
    pub fn as_slice(&self) -> &[f64] {
        &self.alpha
    }

    /// The kernel set the coefficients belong to.
    pub fn kernel_set(&self) -> &KernelSet {
        &self.kernel_set
    }

    /// Apply the coefficients to per-kernel models: `Σ_k α_k E_k`.
    pub fn compose(&self, models: &[f64]) -> f64 {
        assert_eq!(
            models.len(),
            self.alpha.len(),
            "one model per kernel required"
        );
        self.alpha.iter().zip(models).map(|(a, e)| a * e).sum()
    }

    /// Mean coefficient (diagnostic: how far from 1 the application's
    /// interactions push the composition on average).
    pub fn mean(&self) -> f64 {
        self.alpha.iter().sum::<f64>() / self.alpha.len() as f64
    }
}

impl fmt::Display for Coefficients {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, a) in self.kernel_set.ids().zip(&self.alpha) {
            writeln!(f, "  alpha[{}] = {:.4}", self.kernel_set.name(k), a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs() -> Coefficients {
        Coefficients::new(KernelSet::new(vec!["a", "b"]), vec![0.8, 1.2])
    }

    #[test]
    fn accessors() {
        let c = coeffs();
        assert_eq!(c.alpha(KernelId(0)), 0.8);
        assert_eq!(c.as_slice(), &[0.8, 1.2]);
        assert!((c.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compose_weights_models() {
        let c = coeffs();
        assert!((c.compose(&[10.0, 5.0]) - (8.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn display_contains_names() {
        let s = coeffs().to_string();
        assert!(s.contains("alpha[a]"));
        assert!(s.contains("0.8000"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        Coefficients::new(KernelSet::new(vec!["a", "b"]), vec![1.0]);
    }
}
