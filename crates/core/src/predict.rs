//! Predictors and prediction records.

use crate::measurement::relative_error;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which prediction methodology to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predictor {
    /// The traditional baseline: sum the isolated kernel times
    /// (equivalently, all composition coefficients are 1).
    Summation,
    /// The paper's contribution: weight each kernel model by the
    /// coupling-derived coefficient computed from chains of
    /// `chain_len` kernels.
    Coupling {
        /// Window length the coupling values were measured at.
        chain_len: usize,
    },
}

impl Predictor {
    /// Convenience constructor for the coupling predictor.
    pub fn coupling(chain_len: usize) -> Self {
        Predictor::Coupling { chain_len }
    }

    /// Short label as it appears in the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Predictor::Summation => "Summation".to_string(),
            Predictor::Coupling { chain_len } => format!("Coupling: {chain_len} kernels"),
        }
    }
}

impl fmt::Display for Predictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One prediction against ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted total execution time (seconds).
    pub predicted: f64,
    /// Measured total execution time (seconds).
    pub actual: f64,
}

impl Prediction {
    /// Relative error `|predicted − actual| / actual` as the paper
    /// reports it.
    pub fn rel_err(&self) -> f64 {
        relative_error(self.predicted, self.actual)
    }

    /// Relative error in percent.
    pub fn rel_err_pct(&self) -> f64 {
        100.0 * self.rel_err()
    }
}

/// A set of predictions for the same predictor across configurations
/// (e.g. one per processor count), supporting the paper's
/// "average relative error" summaries.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionSet {
    predictions: Vec<Prediction>,
}

impl PredictionSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a prediction.
    pub fn push(&mut self, p: Prediction) {
        self.predictions.push(p);
    }

    /// All predictions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Prediction> {
        self.predictions.iter()
    }

    /// Number of predictions.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }

    /// Average relative error across the set (paper's summary metric).
    pub fn avg_rel_err(&self) -> f64 {
        assert!(!self.predictions.is_empty(), "no predictions to average");
        self.predictions
            .iter()
            .map(Prediction::rel_err)
            .sum::<f64>()
            / self.predictions.len() as f64
    }

    /// Worst relative error in the set.
    pub fn worst_rel_err(&self) -> f64 {
        self.predictions
            .iter()
            .map(Prediction::rel_err)
            .fold(0.0, f64::max)
    }

    /// Best relative error in the set.
    pub fn best_rel_err(&self) -> f64 {
        self.predictions
            .iter()
            .map(Prediction::rel_err)
            .fold(f64::INFINITY, f64::min)
    }
}

impl FromIterator<Prediction> for PredictionSet {
    fn from_iter<I: IntoIterator<Item = Prediction>>(iter: I) -> Self {
        Self {
            predictions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(Predictor::Summation.label(), "Summation");
        assert_eq!(Predictor::coupling(3).label(), "Coupling: 3 kernels");
    }

    #[test]
    fn rel_err_is_symmetric_around_actual() {
        let over = Prediction {
            predicted: 110.0,
            actual: 100.0,
        };
        let under = Prediction {
            predicted: 90.0,
            actual: 100.0,
        };
        assert!((over.rel_err() - 0.1).abs() < 1e-12);
        assert!((under.rel_err() - 0.1).abs() < 1e-12);
        assert!((over.rel_err_pct() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn set_summaries() {
        let set: PredictionSet = [
            Prediction {
                predicted: 110.0,
                actual: 100.0,
            },
            Prediction {
                predicted: 100.0,
                actual: 100.0,
            },
            Prediction {
                predicted: 70.0,
                actual: 100.0,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 3);
        assert!((set.avg_rel_err() - (0.1 + 0.0 + 0.3) / 3.0).abs() < 1e-12);
        assert!((set.worst_rel_err() - 0.3).abs() < 1e-12);
        assert_eq!(set.best_rel_err(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_average_panics() {
        PredictionSet::new().avg_rel_err();
    }
}
