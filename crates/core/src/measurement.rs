//! Timed measurements with repetition statistics.

use serde::{Deserialize, Serialize};

/// The result of measuring one quantity several times.
///
/// The paper obtains "the average execution time for each kernel …
/// by running the kernel 50 times"; this type carries the samples so
/// averages, spreads and noise diagnostics stay available downstream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    samples: Vec<f64>,
}

impl Measurement {
    /// From raw samples.
    ///
    /// # Panics
    /// If `samples` is empty or contains a non-finite or negative
    /// value.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(
            !samples.is_empty(),
            "a measurement needs at least one sample"
        );
        for &s in &samples {
            assert!(s.is_finite() && s >= 0.0, "invalid time sample {s}");
        }
        Self { samples }
    }

    /// A single exact observation.
    pub fn exact(value: f64) -> Self {
        Self::from_samples(vec![value])
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of repetitions.
    pub fn reps(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Sample standard deviation (0 for a single sample).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// Coefficient of variation (std dev / mean); 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Scale every sample by `factor` (e.g. per-iteration to total).
    pub fn scaled(&self, factor: f64) -> Measurement {
        Measurement::from_samples(self.samples.iter().map(|s| s * factor).collect())
    }

    /// Standard error of the mean (0 for a single sample).
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.samples.len() as f64).sqrt()
    }

    /// Normal-approximation 95 % confidence interval of the mean,
    /// `(lo, hi)`.  Degenerate (point) for a single sample.
    pub fn confidence_interval95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err();
        (self.mean() - half, self.mean() + half)
    }
}

/// Relative error of a prediction against ground truth, as the paper
/// reports it: `|predicted − actual| / actual`.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    assert!(actual > 0.0, "relative error needs positive actual time");
    (predicted - actual).abs() / actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let m = Measurement::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
        assert!((m.std_dev() - 1.0).abs() < 1e-12);
        assert!((m.cv() - 0.5).abs() < 1e-12);
        assert_eq!(m.reps(), 3);
    }

    #[test]
    fn exact_has_zero_spread() {
        let m = Measurement::exact(5.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.std_dev(), 0.0);
    }

    #[test]
    fn scaled_measurement() {
        let m = Measurement::from_samples(vec![1.0, 3.0]).scaled(10.0);
        assert_eq!(m.mean(), 20.0);
    }

    #[test]
    fn std_err_shrinks_with_sample_count() {
        let few = Measurement::from_samples(vec![1.0, 2.0]);
        let many = Measurement::from_samples(vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert!(many.std_err() < few.std_err());
        assert_eq!(Measurement::exact(3.0).std_err(), 0.0);
    }

    #[test]
    fn confidence_interval_brackets_the_mean() {
        let m = Measurement::from_samples(vec![1.0, 2.0, 3.0, 2.0]);
        let (lo, hi) = m.confidence_interval95();
        assert!(lo < m.mean() && m.mean() < hi);
        let (plo, phi) = Measurement::exact(5.0).confidence_interval95();
        assert_eq!((plo, phi), (5.0, 5.0));
    }

    #[test]
    fn relative_error_matches_paper_definition() {
        assert!((relative_error(120.0, 100.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(80.0, 100.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_samples_panic() {
        Measurement::from_samples(vec![]);
    }

    #[test]
    #[should_panic]
    fn negative_sample_panics() {
        Measurement::from_samples(vec![-1.0]);
    }
}
