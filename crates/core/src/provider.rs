//! The measurement-provider layer: canonical cell identities, a
//! provider abstraction and a thread-safe memoizing cache.
//!
//! A coupling study consumes *measurement cells* — one timed cluster
//! run each: an isolated kernel, a chain window, the serial overhead
//! or the ground-truth application.  Different tables of the paper ask
//! for overlapping cell sets (isolated kernels and the ground truth
//! are shared across chain lengths; the transition study re-measures
//! pairwise chains the main tables already have).  This module gives
//! every cell a canonical identity ([`MeasurementKey`]) so a campaign
//! can deduplicate cells across tables, execute each unique cell
//! exactly once (in parallel, since cells are independent), and
//! assemble every analysis from the shared cache.
//!
//! * [`MeasurementProvider`] — anything that can produce the
//!   [`Measurement`] for a key.  `kc-npb` implements it by building a
//!   fresh executor per cell, which makes providers safe to call from
//!   any thread in any order.
//! * [`CachedProvider`] — memoizes a provider behind a
//!   `parking_lot`-guarded map, with an optional persistent
//!   [`MeasurementBackend`] (the `kc-prophesy` cell store).
//! * [`assemble_analysis`] — rebuilds a [`CouplingAnalysis`] from
//!   provider-fetched cells; [`analysis_cells`] enumerates the cells
//!   it will ask for, so campaigns can prefetch.

use crate::analysis::CouplingAnalysis;
use crate::error::{CouplingError, KcResult};
use crate::kernel::{KernelId, KernelSet};
use crate::measurement::Measurement;
use crate::telemetry::{worker_label, Disposition, TelemetryEvent, TelemetrySink};
use crate::windows::cyclic_windows;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// What one measurement cell times.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// A loop whose body is this kernel chain (isolated kernels are
    /// length-1 chains).
    Chain(Vec<KernelId>),
    /// The one-off init + final kernels.
    SerialOverhead,
    /// The full application (ground truth).
    Application,
}

impl CellKind {
    /// Chain length, if this is a chain cell.
    pub fn chain_len(&self) -> Option<usize> {
        match self {
            CellKind::Chain(ks) => Some(ks.len()),
            _ => None,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Chain(ks) => {
                write!(f, "chain:")?;
                for (i, k) in ks.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{}", k.index())?;
                }
                Ok(())
            }
            CellKind::SerialOverhead => write!(f, "overhead"),
            CellKind::Application => write!(f, "application"),
        }
    }
}

/// Canonical identity of one measurement cell.
///
/// Two keys compare equal exactly when re-measuring would be wasted
/// work: same benchmark instance, same cell, same repetition count,
/// same measurement protocol (`exec_digest`) and the same machine
/// (`machine_fingerprint` — a content hash of the full
/// `MachineConfig`, so *any* change to the simulated hardware or its
/// noise model yields a distinct cell).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MeasurementKey {
    /// Benchmark name (provider-defined, e.g. `BT` or `BT#fine`).
    pub benchmark: String,
    /// Problem-class label (e.g. `W`).
    pub class: String,
    /// Processor count.
    pub procs: usize,
    /// What the cell times.
    pub cell: CellKind,
    /// Timing repetitions (samples) requested; one-shot cells
    /// (overhead, application) use 1.
    pub reps: u32,
    /// Digest of the execution config (warm-up/timed iterations,
    /// mode, bracketing, cold-start policy).
    pub exec_digest: String,
    /// Content fingerprint of the machine configuration.
    pub machine_fingerprint: String,
}

impl fmt::Display for MeasurementKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}|{}|p{}|{}|r{}|{}|{}",
            self.benchmark,
            self.class,
            self.procs,
            self.cell,
            self.reps,
            self.exec_digest,
            self.machine_fingerprint
        )
    }
}

impl MeasurementKey {
    /// Content digest of the canonical key text (FNV-1a, 64 bit).
    /// Two keys have equal digests exactly when they are equal (up to
    /// hash collisions, which the canonicalization property tests
    /// treat as equality-breaking bugs).
    pub fn digest_u64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// [`MeasurementKey::digest_u64`] as fixed-width hex, for logs and
    /// stores.
    pub fn digest(&self) -> String {
        format!("{:016x}", self.digest_u64())
    }
}

/// The key fields shared by every cell of one benchmark instance on
/// one machine under one protocol; stamps out full keys per cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellContext {
    /// Benchmark name.
    pub benchmark: String,
    /// Problem-class label.
    pub class: String,
    /// Processor count.
    pub procs: usize,
    /// Execution-config digest.
    pub exec_digest: String,
    /// Machine fingerprint.
    pub machine_fingerprint: String,
}

impl CellContext {
    /// The full key of one cell in this context.
    pub fn key(&self, cell: CellKind, reps: u32) -> MeasurementKey {
        MeasurementKey {
            benchmark: self.benchmark.clone(),
            class: self.class.clone(),
            procs: self.procs,
            cell,
            reps,
            exec_digest: self.exec_digest.clone(),
            machine_fingerprint: self.machine_fingerprint.clone(),
        }
    }
}

/// Produces the measurement for a canonical cell key.
///
/// Implementations must be deterministic per key (same key, same
/// `Measurement`, regardless of call order or thread) — that is what
/// lets a campaign execute cells in parallel and still produce
/// bit-identical tables.
pub trait MeasurementProvider: Sync {
    /// Measure one cell.
    fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement>;

    /// Rough relative cost of measuring this cell, for largest-first
    /// scheduling.  Only the ordering matters.
    fn cost_estimate(&self, _key: &MeasurementKey) -> f64 {
        1.0
    }
}

/// Persistent storage for measured cells (e.g. the `kc-prophesy` cell
/// store): consulted on cache misses, written after executions.
pub trait MeasurementBackend: Send + Sync {
    /// A previously stored measurement for this key, if any.
    fn load(&self, key: &MeasurementKey) -> Option<Measurement>;
    /// Store a freshly executed measurement.
    fn store(&self, key: &MeasurementKey, m: &Measurement);
}

/// Sharing a backend: the cache takes ownership of a boxed backend,
/// so callers that also need to keep a handle (e.g. to save a cell
/// store to disk at the end of a campaign) can hand the cache an
/// `Arc` of it instead.
impl<B: MeasurementBackend + ?Sized> MeasurementBackend for std::sync::Arc<B> {
    fn load(&self, key: &MeasurementKey) -> Option<Measurement> {
        (**self).load(key)
    }

    fn store(&self, key: &MeasurementKey, m: &Measurement) {
        (**self).store(key, m)
    }
}

/// Counters of a [`CachedProvider`]'s traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total `measure` calls.
    pub requests: u64,
    /// Requests answered from the in-memory cache.
    pub hits: u64,
    /// Requests answered from the persistent backend.
    pub backend_hits: u64,
    /// Cells actually executed by the inner provider.
    pub executed: u64,
}

/// A thread-safe memoizing wrapper around a [`MeasurementProvider`].
///
/// The first request for a key executes it (optionally consulting a
/// persistent [`MeasurementBackend`] first); every later request is a
/// cache hit.  The inner provider is *not* called under the cache
/// lock, so misses for different keys execute concurrently — while
/// concurrent misses for the *same* key are deduplicated through an
/// in-flight table: one requester (the leader) executes, the rest
/// block on the leader's slot and are served its result as hits.
/// That makes overlapping prefetches from independent assembly
/// threads safe: each unique cell still executes exactly once.
pub struct CachedProvider<P> {
    inner: P,
    cache: Mutex<HashMap<MeasurementKey, Measurement>>,
    /// Keys currently executing: followers block on the leader's slot
    /// mutex and read the filled measurement when it releases.
    inflight: Mutex<HashMap<MeasurementKey, Arc<Mutex<Option<Measurement>>>>>,
    backend: Option<Box<dyn MeasurementBackend>>,
    stats: Mutex<CacheStats>,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl<P: MeasurementProvider> CachedProvider<P> {
    /// Wrap a provider with an in-memory cache only.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            cache: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            backend: None,
            stats: Mutex::new(CacheStats::default()),
            sink: None,
        }
    }

    /// Wrap a provider with an in-memory cache and a persistent
    /// backend.
    pub fn with_backend(inner: P, backend: Box<dyn MeasurementBackend>) -> Self {
        Self {
            backend: Some(backend),
            ..Self::new(inner)
        }
    }

    /// Emit a cell-started / cell-finished telemetry span (with the
    /// request's disposition and duration) for every `measure` call.
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Measure through the cache.
    pub fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
        self.measure_classified(key).map(|(m, _)| m)
    }

    /// Measure through the cache, also reporting how the request was
    /// served.  This is what a campaign scheduler uses to attribute a
    /// cell to exactly one disposition counter (executed vs backend
    /// hit vs cache hit) instead of assuming every scheduled cell was
    /// an execution.
    pub fn measure_classified(&self, key: &MeasurementKey) -> KcResult<(Measurement, Disposition)> {
        let Some(sink) = &self.sink else {
            return self.measure_inner(key);
        };
        let worker = worker_label();
        sink.record(TelemetryEvent::CellStarted {
            key: key.to_string(),
            worker: worker.clone(),
        });
        let started = Instant::now();
        let (m, disposition) = self.measure_inner(key)?;
        sink.record(TelemetryEvent::CellFinished {
            key: key.to_string(),
            disposition,
            duration_secs: started.elapsed().as_secs_f64(),
            worker,
        });
        Ok((m, disposition))
    }

    /// The cache lookup chain, reporting how the request was served.
    ///
    /// Concurrent misses for the same key elect one leader through the
    /// in-flight table; followers block on the leader's slot mutex and
    /// read its result as cache hits.  The slot is locked *before* it
    /// is published, so a follower can never observe an empty slot
    /// while the leader is still working — it parks until the leader
    /// releases.  An empty slot after release means the leader failed;
    /// the follower retries (and may become the next leader).
    fn measure_inner(&self, key: &MeasurementKey) -> KcResult<(Measurement, Disposition)> {
        self.stats.lock().requests += 1;
        loop {
            if let Some(m) = self.cache.lock().get(key) {
                self.stats.lock().hits += 1;
                return Ok((m.clone(), Disposition::Hit));
            }
            let slot: Arc<Mutex<Option<Measurement>>> = Arc::new(Mutex::new(None));
            let mut leader_guard = {
                let mut inflight = self.inflight.lock();
                if let Some(existing) = inflight.get(key) {
                    let theirs = existing.clone();
                    drop(inflight);
                    // follower: park until the leader releases its slot
                    let filled = theirs.lock().clone();
                    if let Some(m) = filled {
                        self.stats.lock().hits += 1;
                        return Ok((m, Disposition::Hit));
                    }
                    continue;
                }
                // leader: lock the slot while it is still unpublished
                let guard = slot.lock();
                inflight.insert(key.clone(), slot.clone());
                guard
            };
            let outcome = self.execute_uncached(key);
            if let Ok((m, _)) = &outcome {
                *leader_guard = Some(m.clone());
            }
            // unregister before releasing the slot, so a failed key's
            // next requester becomes a fresh leader, not a follower
            self.inflight.lock().remove(key);
            return outcome;
        }
    }

    /// Serve a miss no other thread is executing: consult the backend,
    /// else run the inner provider and write back.
    fn execute_uncached(&self, key: &MeasurementKey) -> KcResult<(Measurement, Disposition)> {
        if let Some(backend) = &self.backend {
            if let Some(m) = backend.load(key) {
                self.stats.lock().backend_hits += 1;
                self.cache.lock().insert(key.clone(), m.clone());
                return Ok((m, Disposition::BackendHit));
            }
        }
        self.stats.lock().executed += 1;
        let m = self.inner.measure(key)?;
        if let Some(backend) = &self.backend {
            backend.store(key, &m);
        }
        self.cache.lock().insert(key.clone(), m.clone());
        Ok((m, Disposition::Executed))
    }

    /// Insert a precomputed measurement (e.g. from a prior campaign).
    pub fn prime(&self, key: MeasurementKey, m: Measurement) {
        self.cache.lock().insert(key, m);
    }

    /// Whether a cell is already cached in memory.
    pub fn contains(&self, key: &MeasurementKey) -> bool {
        self.cache.lock().contains_key(key)
    }

    /// Number of cells cached in memory.
    pub fn cached_cells(&self) -> usize {
        self.cache.lock().len()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Reset the traffic counters (the cache itself is kept).
    pub fn reset_stats(&self) {
        *self.stats.lock() = CacheStats::default();
    }
}

impl<P: MeasurementProvider> MeasurementProvider for CachedProvider<P> {
    fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
        CachedProvider::measure(self, key)
    }

    fn cost_estimate(&self, key: &MeasurementKey) -> f64 {
        self.inner.cost_estimate(key)
    }
}

/// Every cell [`assemble_analysis`] will request for one analysis, in
/// assembly order: `N` isolated kernels, `N` chain windows, the serial
/// overhead, the application.
pub fn analysis_cells(
    ctx: &CellContext,
    set: &KernelSet,
    chain_len: usize,
    reps: u32,
) -> Result<Vec<MeasurementKey>, CouplingError> {
    let n = set.len();
    if chain_len < 1 || chain_len > n {
        return Err(CouplingError::BadChainLength {
            requested: chain_len,
            kernels: n,
        });
    }
    let mut keys = Vec::with_capacity(2 * n + 2);
    for k in set.ids() {
        keys.push(ctx.key(CellKind::Chain(vec![k]), reps));
    }
    for w in cyclic_windows(set, chain_len) {
        keys.push(ctx.key(CellKind::Chain(w.kernels().to_vec()), reps));
    }
    keys.push(ctx.key(CellKind::SerialOverhead, 1));
    keys.push(ctx.key(CellKind::Application, 1));
    Ok(keys)
}

/// Rebuild a [`CouplingAnalysis`] from provider-fetched cells — the
/// provider-backed equivalent of [`CouplingAnalysis::collect`].
///
/// With a [`CachedProvider`] this is the assembly phase of a campaign:
/// after a prefetch it touches no executor at all.
pub fn assemble_analysis(
    provider: &dyn MeasurementProvider,
    ctx: &CellContext,
    set: &KernelSet,
    chain_len: usize,
    loop_iterations: u32,
    reps: u32,
) -> KcResult<CouplingAnalysis> {
    let n = set.len();
    if chain_len < 1 || chain_len > n {
        return Err(CouplingError::BadChainLength {
            requested: chain_len,
            kernels: n,
        }
        .into());
    }
    let isolated: Vec<Measurement> = set
        .ids()
        .map(|k| provider.measure(&ctx.key(CellKind::Chain(vec![k]), reps)))
        .collect::<KcResult<_>>()?;
    let window_perf: Vec<Measurement> = cyclic_windows(set, chain_len)
        .into_iter()
        .map(|w| provider.measure(&ctx.key(CellKind::Chain(w.kernels().to_vec()), reps)))
        .collect::<KcResult<_>>()?;
    let overhead = provider.measure(&ctx.key(CellKind::SerialOverhead, 1))?;
    let actual = provider.measure(&ctx.key(CellKind::Application, 1))?;
    CouplingAnalysis::from_measurements(
        set.clone(),
        chain_len,
        loop_iterations,
        isolated,
        window_perf,
        overhead,
        actual,
    )
    .map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::KcError;
    use crate::executor::ChainExecutor;
    use crate::synthetic::SyntheticExecutor;

    /// A provider over a noise-free synthetic app: exact times from
    /// the executor's closed forms, call count per key for the tests.
    struct SyntheticProvider {
        exec: Mutex<SyntheticExecutor>,
        calls: Mutex<HashMap<MeasurementKey, u32>>,
    }

    fn synthetic() -> SyntheticExecutor {
        SyntheticExecutor::builder()
            .kernel("a", 1.0)
            .kernel("b", 2.0)
            .kernel("c", 1.5)
            .interaction("a", "b", -0.3)
            .interaction("b", "c", 0.2)
            .overheads(0.5, 0.25)
            .loop_iterations(40)
            .build()
    }

    impl SyntheticProvider {
        fn new() -> Self {
            Self {
                exec: Mutex::new(synthetic()),
                calls: Mutex::new(HashMap::new()),
            }
        }

        fn calls_for(&self, key: &MeasurementKey) -> u32 {
            self.calls.lock().get(key).copied().unwrap_or(0)
        }

        fn total_calls(&self) -> u32 {
            self.calls.lock().values().sum()
        }
    }

    impl MeasurementProvider for SyntheticProvider {
        fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
            *self.calls.lock().entry(key.clone()).or_insert(0) += 1;
            let mut exec = self.exec.lock();
            Ok(match &key.cell {
                CellKind::Chain(ks) => exec.measure_chain(ks, key.reps),
                CellKind::SerialOverhead => exec.measure_serial_overhead(),
                CellKind::Application => exec.measure_application(),
            })
        }
    }

    fn ctx() -> CellContext {
        CellContext {
            benchmark: "synthetic".into(),
            class: "S".into(),
            procs: 1,
            exec_digest: "w1t2".into(),
            machine_fingerprint: "fp0".into(),
        }
    }

    #[test]
    fn keys_are_canonical_and_ordered() {
        let c = ctx();
        let k1 = c.key(CellKind::Chain(vec![KernelId(0), KernelId(1)]), 5);
        let k2 = c.key(CellKind::Chain(vec![KernelId(0), KernelId(1)]), 5);
        assert_eq!(k1, k2);
        assert_eq!(k1.to_string(), "synthetic|S|p1|chain:0+1|r5|w1t2|fp0");
        let k3 = c.key(CellKind::Chain(vec![KernelId(1), KernelId(0)]), 5);
        assert_ne!(k1, k3, "chain order is part of the identity");
        assert_ne!(
            k1,
            c.key(CellKind::Chain(vec![KernelId(0), KernelId(1)]), 6)
        );
        assert_eq!(k1.cell.chain_len(), Some(2));
        assert_eq!(CellKind::Application.chain_len(), None);
        assert!(CellKind::SerialOverhead.to_string().contains("overhead"));
    }

    #[test]
    fn cache_executes_each_cell_once() {
        let p = CachedProvider::new(SyntheticProvider::new());
        let c = ctx();
        let key = c.key(CellKind::Chain(vec![KernelId(0)]), 3);
        let m1 = p.measure(&key).unwrap();
        let m2 = p.measure(&key).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(p.inner().calls_for(&key), 1, "second request must hit");
        let s = p.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.executed, 1);
        assert!(p.contains(&key));
        assert_eq!(p.cached_cells(), 1);
    }

    #[test]
    fn concurrent_same_key_misses_execute_once() {
        /// Widens the execution window so the spawned requests really
        /// do overlap with the leader's in-flight execution.
        struct Slow(SyntheticProvider);
        impl MeasurementProvider for Slow {
            fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
                std::thread::sleep(std::time::Duration::from_millis(25));
                self.0.measure(key)
            }
        }
        let p = CachedProvider::new(Slow(SyntheticProvider::new()));
        let key = ctx().key(CellKind::Application, 1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| p.measure(&key).unwrap());
            }
        });
        assert_eq!(
            p.inner().0.calls_for(&key),
            1,
            "one leader executes; followers are served its result"
        );
        let stats = p.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn follower_blocked_on_a_failing_leader_retries_as_the_next_leader() {
        /// Fails the first execution, succeeds afterwards — the
        /// injected "leader dies mid-flight" scenario.  The sleep
        /// widens the window so other requesters really do block on
        /// the failing leader's slot.
        struct FailsFirst {
            attempts: Mutex<u32>,
        }
        impl MeasurementProvider for FailsFirst {
            fn measure(&self, key: &MeasurementKey) -> KcResult<Measurement> {
                let attempt = {
                    let mut a = self.attempts.lock();
                    *a += 1;
                    *a
                };
                std::thread::sleep(std::time::Duration::from_millis(20));
                if attempt == 1 {
                    return Err(KcError::Io("injected leader failure".into()));
                }
                Ok(Measurement::exact(key.procs as f64))
            }
        }

        let p = CachedProvider::new(FailsFirst {
            attempts: Mutex::new(0),
        });
        let key = ctx().key(CellKind::Application, 1);
        let results: Vec<KcResult<Measurement>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6).map(|_| s.spawn(|| p.measure(&key))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let failures = results.iter().filter(|r| r.is_err()).count();
        let successes: Vec<&Measurement> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        assert_eq!(
            failures, 1,
            "only the failed leader's caller sees the error"
        );
        assert_eq!(successes.len(), 5);
        assert!(successes.iter().all(|m| m.mean() == 1.0));
        assert_eq!(
            *p.inner().attempts.lock(),
            2,
            "the failed leader plus exactly one retry leader"
        );
        let stats = p.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(
            stats.executed, 2,
            "executed counts execution attempts: the failed leader and the retry leader"
        );
        assert_eq!(stats.backend_hits, 0);
        assert_eq!(stats.hits, 4, "the four surviving followers are hits");
        assert_eq!(
            stats.hits + stats.backend_hits + stats.executed,
            stats.requests,
            "every request lands in exactly one disposition, even across a failure"
        );
        assert!(p.contains(&key), "the retry leader's result is cached");
    }

    #[test]
    fn distinct_fingerprints_are_distinct_cells() {
        let p = CachedProvider::new(SyntheticProvider::new());
        let mut other = ctx();
        other.machine_fingerprint = "fp1".into();
        let k0 = ctx().key(CellKind::Application, 1);
        let k1 = other.key(CellKind::Application, 1);
        assert_ne!(k0, k1);
        p.measure(&k0).unwrap();
        p.measure(&k1).unwrap();
        assert_eq!(p.stats().executed, 2, "no cross-machine cache hits");
        assert_eq!(p.cached_cells(), 2);
    }

    #[test]
    fn assembled_analysis_matches_direct_collection() {
        let mut exec = synthetic();
        let direct = CouplingAnalysis::collect(&mut exec, 2, 4).unwrap();

        let p = CachedProvider::new(SyntheticProvider::new());
        let c = ctx();
        let set = exec.kernel_set().clone();
        let assembled = assemble_analysis(&p, &c, &set, 2, exec.loop_iterations(), 4).unwrap();

        assert_eq!(assembled.couplings().unwrap(), direct.couplings().unwrap());
        assert_eq!(assembled.actual(), direct.actual());
        assert_eq!(assembled.overhead(), direct.overhead());
        for k in set.ids() {
            assert_eq!(assembled.isolated(k), direct.isolated(k));
        }
    }

    #[test]
    fn analysis_cells_enumerates_what_assembly_requests() {
        let exec = synthetic();
        let set = exec.kernel_set().clone();
        let c = ctx();
        let keys = analysis_cells(&c, &set, 2, 4).unwrap();
        assert_eq!(keys.len(), 2 * set.len() + 2);

        let p = CachedProvider::new(SyntheticProvider::new());
        for k in &keys {
            p.measure(k).unwrap();
        }
        let executed_after_prefetch = p.inner().total_calls();
        assemble_analysis(&p, &c, &set, 2, exec.loop_iterations(), 4).unwrap();
        assert_eq!(
            p.inner().total_calls(),
            executed_after_prefetch,
            "assembly after a full prefetch must be pure cache hits"
        );
    }

    #[test]
    fn bad_chain_length_is_reported_not_panicked() {
        let exec = synthetic();
        let set = exec.kernel_set().clone();
        let c = ctx();
        assert!(matches!(
            analysis_cells(&c, &set, 9, 1),
            Err(CouplingError::BadChainLength { .. })
        ));
        let p = CachedProvider::new(SyntheticProvider::new());
        assert!(matches!(
            assemble_analysis(&p, &c, &set, 0, 10, 1),
            Err(KcError::Coupling(CouplingError::BadChainLength { .. }))
        ));
    }

    #[test]
    fn priming_skips_execution() {
        let p = CachedProvider::new(SyntheticProvider::new());
        let key = ctx().key(CellKind::SerialOverhead, 1);
        p.prime(key.clone(), Measurement::exact(7.5));
        assert_eq!(p.measure(&key).unwrap().mean(), 7.5);
        assert_eq!(p.inner().calls_for(&key), 0);
    }

    #[test]
    fn backend_feeds_misses_and_receives_executions() {
        #[derive(Default)]
        struct MapBackend {
            cells: Mutex<HashMap<String, Measurement>>,
        }
        impl MeasurementBackend for MapBackend {
            fn load(&self, key: &MeasurementKey) -> Option<Measurement> {
                self.cells.lock().get(&key.to_string()).cloned()
            }
            fn store(&self, key: &MeasurementKey, m: &Measurement) {
                self.cells.lock().insert(key.to_string(), m.clone());
            }
        }

        let backend = Box::<MapBackend>::default();
        let seeded = ctx().key(CellKind::Application, 1);
        backend.store(&seeded, &Measurement::exact(3.25));

        let p = CachedProvider::with_backend(SyntheticProvider::new(), backend);
        // a miss satisfied by the backend executes nothing
        assert_eq!(p.measure(&seeded).unwrap().mean(), 3.25);
        assert_eq!(p.inner().calls_for(&seeded), 0);
        assert_eq!(p.stats().backend_hits, 1);
        // a true miss executes and is written back
        let fresh = ctx().key(CellKind::SerialOverhead, 1);
        let m = p.measure(&fresh).unwrap();
        assert_eq!(p.stats().executed, 1);
        // fresh cache, same backend contents: now a backend hit
        let p2 = CachedProvider::with_backend(
            SyntheticProvider::new(),
            Box::new(MapBackend {
                cells: Mutex::new([(fresh.to_string(), m.clone())].into_iter().collect()),
            }),
        );
        assert_eq!(p2.measure(&fresh).unwrap(), m);
        assert_eq!(p2.inner().calls_for(&fresh), 0);
    }
}
