//! The serving engine: bounded admission, a single batcher thread,
//! ordered response delivery and graceful drain.
//!
//! ## Threading model
//!
//! * **Admission** ([`Server::submit`] / [`Server::submit_line`])
//!   happens on the caller's thread and never blocks: a request is
//!   either enqueued (returning a pending [`Ticket`]) or rejected
//!   immediately (parse error → `error`, queue full or draining →
//!   `overloaded`) with a pre-filled ticket.  At most `max_inflight`
//!   requests are queued or resolving at once — memory is bounded no
//!   matter how fast clients submit.
//! * **Batching**: one batcher thread repeatedly takes up to
//!   `max_batch` queued requests and resolves them through a single
//!   [`PredictionEngine::predict_batch`] call.  Engines resolve a
//!   batch's cell needs through a shared cache/scheduler, so
//!   duplicate cells across in-flight requests execute exactly once
//!   and executor concurrency stays bounded by the engine's `--jobs`
//!   pool — the server itself never spawns per-request work.
//! * **Delivery**: transports wait on tickets **in submission order**,
//!   so the response stream is deterministic for a given input stream
//!   regardless of batch splits or engine parallelism.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] marks the queue draining (new submissions get
//! `overloaded`), lets the batcher finish every queued request, and
//! joins it.  Pipe transports drain naturally at EOF: every submitted
//! ticket is waited and written before [`Server::serve_pipe`] returns.

use crate::metrics::ServeMetrics;
use crate::protocol::{
    encode_response, parse_request, PredictRequest, PredictResponse, PredictionReport, Status,
};
use kc_core::{TelemetryEvent, TelemetrySink};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolves batches of prediction requests.
///
/// One call resolves every request in the batch; implementations
/// should funnel the batch's measurement needs through a shared
/// cache/scheduler so duplicates across requests execute exactly
/// once.  Per-request failures are values, not panics.
pub trait PredictionEngine: Send + Sync {
    /// Resolve `batch`, returning one result per request, in order.
    fn predict_batch(&self, batch: &[PredictRequest]) -> Vec<Result<PredictionReport, String>>;
}

/// Admission and batching limits.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Max requests queued or resolving at once; beyond this,
    /// submissions get `overloaded` responses.
    pub max_inflight: usize,
    /// Max requests resolved per engine call.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight: 256,
            max_batch: 64,
        }
    }
}

/// A claim on one response: filled by the batcher (or pre-filled at
/// admission), waited on by the transport.
#[derive(Clone)]
pub struct Ticket(Arc<TicketState>);

#[derive(Default)]
struct TicketState {
    slot: Mutex<Option<PredictResponse>>,
    ready: Condvar,
}

impl Ticket {
    fn pending() -> Self {
        Self(Arc::default())
    }

    fn filled(response: PredictResponse) -> Self {
        let t = Self::pending();
        t.fill(response);
        t
    }

    fn fill(&self, response: PredictResponse) {
        *self.0.slot.lock().unwrap() = Some(response);
        self.0.ready.notify_all();
    }

    /// Block until the response is available.
    pub fn wait(&self) -> PredictResponse {
        let mut slot = self.0.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.0.ready.wait(slot).unwrap();
        }
        slot.clone().expect("slot filled")
    }
}

struct Pending {
    request: PredictRequest,
    ticket: Ticket,
    admitted: Instant,
    /// Admission sequence number: the FIFO tie-break for batch
    /// formation (and the whole order when no deadlines are present).
    seq: u64,
    /// When the request's deadline passes, if it has one.
    expires_at: Option<Instant>,
}

struct Queue {
    pending: VecDeque<Pending>,
    /// Submitted but not yet answered (queued + resolving).
    inflight: usize,
    next_seq: u64,
    draining: bool,
}

struct Shared {
    engine: Arc<dyn PredictionEngine>,
    config: ServerConfig,
    queue: Mutex<Queue>,
    work: Condvar,
    metrics: Arc<ServeMetrics>,
    sink: Mutex<Option<Arc<dyn TelemetrySink>>>,
}

impl Shared {
    fn emit(
        &self,
        request: &PredictRequest,
        status: &str,
        batch_size: u64,
        duration_secs: f64,
        deadline_slack_secs: f64,
    ) {
        if let Some(sink) = self.sink.lock().unwrap().clone() {
            sink.record(TelemetryEvent::RequestServed {
                request: request.describe(),
                status: status.to_string(),
                batch_size,
                duration_secs,
                deadline_slack_secs,
            });
        }
    }

    /// Answer one admitted request: metrics, telemetry, ticket.
    fn finish(&self, pending: &Pending, response: PredictResponse, batch_size: u64) {
        let latency = pending.admitted.elapsed().as_secs_f64();
        // budget left when the response landed; negative = missed
        let slack = pending
            .request
            .deadline_ms
            .map(|ms| ms / 1e3 - latency)
            .unwrap_or(0.0);
        self.metrics
            .record_request(response.status.as_str(), latency);
        self.emit(
            &pending.request,
            response.status.as_str(),
            batch_size,
            latency,
            slack,
        );
        pending.ticket.fill(response);
        self.queue.lock().unwrap().inflight -= 1;
    }
}

fn batcher_loop(shared: &Shared) {
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().unwrap();
            while q.pending.is_empty() && !q.draining {
                q = shared.work.wait(q).unwrap();
            }
            if q.pending.is_empty() {
                // draining and nothing left: every admitted request
                // has been answered
                return;
            }
            let n = q.pending.len().min(shared.config.max_batch);
            // Earliest-deadline-first batch formation: requests with
            // deadlines sort ahead of deadline-free ones, the
            // admission sequence breaks every tie.  A stream with no
            // deadlines therefore batches strictly FIFO — bit-for-bit
            // the pre-deadline behaviour.
            q.pending
                .make_contiguous()
                .sort_by(|a, b| match (a.expires_at, b.expires_at) {
                    (Some(x), Some(y)) => x.cmp(&y).then(a.seq.cmp(&b.seq)),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => a.seq.cmp(&b.seq),
                });
            q.pending.drain(..n).collect()
        };
        // Shed requests whose deadline already passed in the queue:
        // the client has given up, so answering `deadline` immediately
        // costs nothing, while resolving them would burn engine batch
        // capacity urgent requests are waiting for.
        let now = Instant::now();
        let (expired, batch): (Vec<Pending>, Vec<Pending>) = batch
            .into_iter()
            .partition(|p| p.expires_at.is_some_and(|t| t <= now));
        for pending in &expired {
            let ms = pending.request.deadline_ms.unwrap_or(0.0);
            let response = PredictResponse::new(
                pending.request.id,
                Status::Deadline,
                Err(format!("deadline of {ms} ms expired in queue")),
            );
            shared.finish(pending, response, 0);
        }
        if batch.is_empty() {
            continue;
        }
        let requests: Vec<PredictRequest> = batch.iter().map(|p| p.request.clone()).collect();
        shared.metrics.record_batch(batch.len());
        let results = catch_unwind(AssertUnwindSafe(|| shared.engine.predict_batch(&requests)))
            .unwrap_or_else(|_| {
                batch
                    .iter()
                    .map(|_| Err("engine panicked".to_string()))
                    .collect()
            });
        let batch_size = batch.len() as u64;
        for (i, pending) in batch.iter().enumerate() {
            let id = pending.request.id;
            let response = match results.get(i) {
                Some(Ok(report)) => PredictResponse::new(id, Status::Ok, Ok(report.clone())),
                Some(Err(message)) => PredictResponse::new(id, Status::Error, Err(message.clone())),
                // an engine that returned too few results is a bug;
                // answer rather than hang the ticket
                None => PredictResponse::new(
                    id,
                    Status::Error,
                    Err("engine returned too few results".to_string()),
                ),
            };
            shared.finish(pending, response, batch_size);
        }
    }
}

/// The prediction server: admission control + batcher + transports.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    shutdown_requested: Arc<AtomicBool>,
}

impl Server {
    /// Start a server (and its batcher thread) over `engine`.
    pub fn new(engine: Arc<dyn PredictionEngine>, config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            engine,
            config,
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                inflight: 0,
                next_seq: 0,
                draining: false,
            }),
            work: Condvar::new(),
            metrics: Arc::new(ServeMetrics::new()),
            sink: Mutex::new(None),
        });
        let batcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("kc-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher")
        };
        Self {
            shared,
            batcher: Mutex::new(Some(batcher)),
            shutdown_requested: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Attach a telemetry sink; every subsequently answered request
    /// emits a `RequestServed` event into it.
    pub fn attach_sink(&self, sink: Arc<dyn TelemetrySink>) {
        *self.shared.sink.lock().unwrap() = Some(sink);
    }

    /// The serve-metrics collector.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.shared.metrics.clone()
    }

    /// The flag [`Server::serve_tcp`] polls; setting it (e.g. from a
    /// signal handler) stops the accept loop.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown_requested.clone()
    }

    /// Ask the TCP accept loop to stop after in-flight connections
    /// complete.
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Submit one parsed request.  Never blocks: returns a pending
    /// ticket, or one pre-filled with an `overloaded` response when
    /// the queue is full or the server is draining.
    pub fn submit(&self, request: PredictRequest) -> Ticket {
        let ticket = Ticket::pending();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.draining {
                drop(q);
                return self.reject(&request, "server draining");
            }
            if q.inflight >= self.shared.config.max_inflight {
                let limit = self.shared.config.max_inflight;
                drop(q);
                return self.reject(&request, format!("queue full ({limit} in flight)"));
            }
            q.inflight += 1;
            let admitted = Instant::now();
            // clamp hostile deadline values so admission never panics:
            // NaN and non-positive budgets expire immediately, huge or
            // infinite ones saturate at a year
            let expires_at = request.deadline_ms.map(|ms| {
                if ms > 0.0 {
                    admitted + Duration::from_secs_f64((ms / 1e3).min(365.0 * 86_400.0))
                } else {
                    admitted
                }
            });
            let seq = q.next_seq;
            q.next_seq += 1;
            q.pending.push_back(Pending {
                request,
                ticket: ticket.clone(),
                admitted,
                seq,
                expires_at,
            });
            self.shared.metrics.observe_queue_depth(q.pending.len());
        }
        self.shared.work.notify_one();
        ticket
    }

    fn reject(&self, request: &PredictRequest, message: impl Into<String>) -> Ticket {
        let response = PredictResponse::new(request.id, Status::Overloaded, Err(message.into()));
        self.shared
            .metrics
            .record_request(response.status.as_str(), 0.0);
        self.shared
            .emit(request, response.status.as_str(), 0, 0.0, 0.0);
        Ticket::filled(response)
    }

    /// Parse and submit one request line.  A line that does not parse
    /// gets an immediate `error` ticket (id 0 — the id was part of
    /// what failed to parse).
    pub fn submit_line(&self, line: &str) -> Ticket {
        match parse_request(line) {
            Ok(request) => self.submit(request),
            Err(message) => {
                let response = PredictResponse::new(0, Status::Error, Err(message));
                self.shared
                    .metrics
                    .record_request(response.status.as_str(), 0.0);
                Ticket::filled(response)
            }
        }
    }

    /// Serve a line-delimited request stream: one response line per
    /// request line, in input order.  Reading and response-writing
    /// overlap (a writer thread waits on tickets in order while the
    /// reader keeps admitting), so consecutive requests batch in the
    /// engine.  Returns after EOF once every response is written and
    /// flushed.
    pub fn serve_pipe<R, W>(&self, reader: R, mut writer: W) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send,
    {
        let (tx, rx) = mpsc::channel::<Ticket>();
        std::thread::scope(|scope| {
            let write_responses = scope.spawn(move || -> std::io::Result<W> {
                for ticket in rx {
                    let response = ticket.wait();
                    writeln!(writer, "{}", encode_response(&response))?;
                }
                writer.flush()?;
                Ok(writer)
            });
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                if tx.send(self.submit_line(&line)).is_err() {
                    break; // writer failed; stop admitting
                }
            }
            drop(tx);
            write_responses
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("response writer panicked")))?;
            Ok(())
        })
    }

    /// Accept TCP connections until [`Server::request_shutdown`], each
    /// served as an independent pipe stream; concurrent connections
    /// share the batcher, so their requests batch together.  Returns
    /// after every accepted connection has drained.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.shutdown_requested.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || -> std::io::Result<()> {
                            stream.set_nonblocking(false)?;
                            let reader = BufReader::new(stream.try_clone()?);
                            self.serve_pipe(reader, stream)
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
            // scope exit joins the per-connection threads: shutdown
            // drains in-flight connections before returning
        })
    }

    /// Drain and stop the batcher: new submissions get `overloaded`,
    /// every already-admitted request is answered, then the batcher
    /// thread exits and is joined.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.draining = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.batcher.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::MemorySink;

    /// Answers every request from the request's own fields; optional
    /// gate blocks resolution until released, so tests can control
    /// batch boundaries deterministically.
    struct MockEngine {
        gate: Option<Arc<(Mutex<bool>, Condvar)>>,
        calls: Mutex<Vec<Vec<u64>>>,
    }

    impl MockEngine {
        fn new() -> Self {
            Self {
                gate: None,
                calls: Mutex::new(Vec::new()),
            }
        }

        fn gated() -> (Self, Arc<(Mutex<bool>, Condvar)>) {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            (
                Self {
                    gate: Some(gate.clone()),
                    calls: Mutex::new(Vec::new()),
                },
                gate,
            )
        }

        fn batch_sizes(&self) -> Vec<usize> {
            self.calls.lock().unwrap().iter().map(Vec::len).collect()
        }

        fn seen_ids(&self) -> Vec<u64> {
            self.calls
                .lock()
                .unwrap()
                .iter()
                .flatten()
                .copied()
                .collect()
        }
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }

    fn report_for(request: &PredictRequest) -> PredictionReport {
        PredictionReport {
            benchmark: request.benchmark.to_lowercase(),
            class: request.class.to_uppercase(),
            procs: request.procs,
            chain_len: request.chain_len,
            loop_iterations: 100,
            overhead_secs: 1.0,
            actual_secs: 10.0,
            coupled_secs: 9.9,
            summation_secs: 9.0,
            coupled_rel_err_pct: -1.0,
            summation_rel_err_pct: -10.0,
            kernels: Vec::new(),
        }
    }

    impl PredictionEngine for MockEngine {
        fn predict_batch(&self, batch: &[PredictRequest]) -> Vec<Result<PredictionReport, String>> {
            if let Some(gate) = &self.gate {
                let mut open = gate.0.lock().unwrap();
                while !*open {
                    open = gate.1.wait(open).unwrap();
                }
            }
            self.calls
                .lock()
                .unwrap()
                .push(batch.iter().map(|r| r.id).collect());
            batch
                .iter()
                .map(|r| {
                    if r.benchmark == "nope" {
                        Err(format!("unknown benchmark `{}`", r.benchmark))
                    } else {
                        Ok(report_for(r))
                    }
                })
                .collect()
        }
    }

    fn request(id: u64, benchmark: &str) -> PredictRequest {
        PredictRequest {
            id,
            benchmark: benchmark.into(),
            class: "S".into(),
            procs: 4,
            chain_len: 2,
            fine: false,
            deadline_ms: None,
        }
    }

    fn deadline_request(id: u64, deadline_ms: f64) -> PredictRequest {
        PredictRequest {
            deadline_ms: Some(deadline_ms),
            ..request(id, "bt")
        }
    }

    fn line(id: u64) -> String {
        format!(r#"{{"id":{id},"benchmark":"bt","class":"S","procs":4,"chain_len":2}}"#)
    }

    #[test]
    fn requests_resolve_and_echo_ids() {
        let server = Server::new(Arc::new(MockEngine::new()), ServerConfig::default());
        let t1 = server.submit(request(7, "bt"));
        let t2 = server.submit(request(8, "nope"));
        let r1 = t1.wait();
        let r2 = t2.wait();
        assert_eq!(r1.id, 7);
        assert_eq!(r1.status, Status::Ok);
        assert_eq!(r1.result.unwrap().benchmark, "bt");
        assert_eq!(r2.id, 8);
        assert_eq!(r2.status, Status::Error, "engine errors are responses");
        assert!(r2.error.unwrap().contains("nope"));
        server.shutdown();
        let report = server.metrics().report();
        assert_eq!(report.requests, 2);
        assert_eq!(report.ok, 1);
        assert_eq!(report.errors, 1);
    }

    #[test]
    fn malformed_lines_get_error_responses_without_reaching_the_engine() {
        let server = Server::new(Arc::new(MockEngine::new()), ServerConfig::default());
        let r = server.submit_line("this is not json").wait();
        assert_eq!(r.status, Status::Error);
        assert_eq!(r.id, 0, "no id could be parsed");
        assert!(r.error.unwrap().contains("bad request"));
        server.shutdown();
    }

    #[test]
    fn queued_requests_batch_through_one_engine_call() {
        let (engine, gate) = MockEngine::gated();
        let engine = Arc::new(engine);
        let server = Server::new(engine.clone(), ServerConfig::default());
        // first submission occupies the batcher at the closed gate;
        // the rest pile up in the queue
        let first = server.submit(request(0, "bt"));
        std::thread::sleep(Duration::from_millis(30));
        let rest: Vec<Ticket> = (1..=5).map(|i| server.submit(request(i, "bt"))).collect();
        open_gate(&gate);
        first.wait();
        for t in &rest {
            t.wait();
        }
        server.shutdown();
        let sizes = engine.batch_sizes();
        assert!(
            sizes.iter().any(|&s| s >= 2),
            "queued requests coalesce into one batch, got {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), 6, "every request resolved");
        assert!(server.metrics().report().batch_max >= 2);
    }

    #[test]
    fn admission_control_rejects_beyond_max_inflight() {
        let (engine, gate) = MockEngine::gated();
        let server = Server::new(
            Arc::new(engine),
            ServerConfig {
                max_inflight: 2,
                max_batch: 1,
            },
        );
        let admitted: Vec<Ticket> = (0..2).map(|i| server.submit(request(i, "bt"))).collect();
        let rejected = server.submit(request(99, "bt")).wait();
        assert_eq!(rejected.status, Status::Overloaded);
        assert_eq!(rejected.id, 99, "rejections still echo the id");
        assert!(rejected.error.unwrap().contains("queue full"));
        open_gate(&gate);
        for t in &admitted {
            assert_eq!(t.wait().status, Status::Ok, "admitted requests complete");
        }
        server.shutdown();
        assert_eq!(server.metrics().report().overloaded, 1);
    }

    #[test]
    fn shutdown_drains_admitted_requests_and_rejects_new_ones() {
        let (engine, gate) = MockEngine::gated();
        let server = Server::new(Arc::new(engine), ServerConfig::default());
        let admitted = server.submit(request(1, "bt"));
        open_gate(&gate);
        server.shutdown();
        assert_eq!(admitted.wait().status, Status::Ok, "drained before exit");
        let after = server.submit(request(2, "bt")).wait();
        assert_eq!(after.status, Status::Overloaded);
        assert!(after.error.unwrap().contains("draining"));
        server.shutdown(); // idempotent
    }

    #[test]
    fn serve_pipe_answers_in_input_order_and_flushes_at_eof() {
        let server = Server::new(Arc::new(MockEngine::new()), ServerConfig::default());
        let input = format!("{}\n{}\nnot json\n\n{}\n", line(3), line(1), line(2));
        let mut output = Vec::new();
        server
            .serve_pipe(std::io::Cursor::new(input), &mut output)
            .unwrap();
        server.shutdown();
        let lines: Vec<String> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(
            lines.len(),
            4,
            "blank lines are skipped, bad lines answered"
        );
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| serde_json::from_str::<PredictResponse>(l).unwrap().id)
            .collect();
        assert_eq!(ids, vec![3, 1, 0, 2], "input order, parse failures as id 0");
    }

    #[test]
    fn serve_tcp_serves_connections_until_shutdown() {
        let server = Arc::new(Server::new(
            Arc::new(MockEngine::new()),
            ServerConfig::default(),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_tcp(listener))
        };
        {
            use std::io::{BufRead, BufReader, Write};
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .write_all(format!("{}\n{}\n", line(5), line(6)).as_bytes())
                .unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let reader = BufReader::new(stream);
            let responses: Vec<PredictResponse> = reader
                .lines()
                .map(|l| serde_json::from_str(&l.unwrap()).unwrap())
                .collect();
            assert_eq!(responses.len(), 2);
            assert_eq!(responses[0].id, 5);
            assert_eq!(responses[1].id, 6);
            assert!(responses.iter().all(|r| r.status == Status::Ok));
        }
        server.request_shutdown();
        acceptor.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn answered_requests_emit_request_served_telemetry() {
        let server = Server::new(Arc::new(MockEngine::new()), ServerConfig::default());
        let sink = Arc::new(MemorySink::new());
        server.attach_sink(sink.clone());
        server.submit(request(1, "bt")).wait();
        server.submit_line("garbage"); // parse errors skip telemetry: no request to describe
        server.shutdown();
        let events = sink.events();
        let served: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::RequestServed {
                    request,
                    status,
                    batch_size,
                    ..
                } => Some((request.clone(), status.clone(), *batch_size)),
                _ => None,
            })
            .collect();
        assert_eq!(
            served,
            vec![("bt/S/p4/len2".to_string(), "ok".to_string(), 1)]
        );
    }

    #[test]
    fn deadline_requests_jump_deadline_free_ones_in_the_queue() {
        let (engine, gate) = MockEngine::gated();
        let engine = Arc::new(engine);
        let server = Server::new(
            engine.clone(),
            ServerConfig {
                max_inflight: 256,
                max_batch: 1,
            },
        );
        // first submission occupies the batcher at the closed gate;
        // the rest queue behind it
        let first = server.submit(request(0, "bt"));
        std::thread::sleep(Duration::from_millis(30));
        let slow: Vec<Ticket> = (1..=2).map(|i| server.submit(request(i, "bt"))).collect();
        let urgent = server.submit(deadline_request(9, 60_000.0));
        open_gate(&gate);
        first.wait();
        urgent.wait();
        for t in &slow {
            t.wait();
        }
        server.shutdown();
        assert_eq!(
            engine.seen_ids(),
            vec![0, 9, 1, 2],
            "the deadlined request is batched ahead of earlier deadline-free ones"
        );
    }

    #[test]
    fn deadline_free_streams_resolve_strictly_fifo() {
        let (engine, gate) = MockEngine::gated();
        let engine = Arc::new(engine);
        let server = Server::new(
            engine.clone(),
            ServerConfig {
                max_inflight: 256,
                max_batch: 1,
            },
        );
        let first = server.submit(request(0, "bt"));
        std::thread::sleep(Duration::from_millis(30));
        let rest: Vec<Ticket> = (1..=4).map(|i| server.submit(request(i, "bt"))).collect();
        open_gate(&gate);
        first.wait();
        for t in &rest {
            t.wait();
        }
        server.shutdown();
        assert_eq!(
            engine.seen_ids(),
            vec![0, 1, 2, 3, 4],
            "no deadlines: admission order is batch order"
        );
    }

    #[test]
    fn expired_deadlines_are_shed_without_reaching_the_engine() {
        let (engine, gate) = MockEngine::gated();
        let engine = Arc::new(engine);
        let server = Server::new(engine.clone(), ServerConfig::default());
        let first = server.submit(request(0, "bt"));
        std::thread::sleep(Duration::from_millis(30));
        // a 5 ms budget that is guaranteed to lapse while the gate
        // holds the batcher
        let doomed = server.submit(deadline_request(7, 5.0));
        std::thread::sleep(Duration::from_millis(30));
        open_gate(&gate);
        assert_eq!(first.wait().status, Status::Ok);
        let shed = doomed.wait();
        assert_eq!(shed.status, Status::Deadline);
        assert_eq!(shed.id, 7);
        assert!(shed.error.unwrap().contains("expired"));
        server.shutdown();
        assert_eq!(
            engine.seen_ids(),
            vec![0],
            "the expired request never reached the engine"
        );
        let report = server.metrics().report();
        assert_eq!(report.deadline_expired, 1);
        assert_eq!(report.requests, 2);
    }

    #[test]
    fn hostile_deadline_values_shed_immediately_without_panicking() {
        let (engine, gate) = MockEngine::gated();
        let server = Server::new(Arc::new(engine), ServerConfig::default());
        let first = server.submit(request(0, "bt"));
        std::thread::sleep(Duration::from_millis(30));
        let tickets: Vec<Ticket> = [f64::NAN, f64::NEG_INFINITY, -5.0, 0.0, f64::INFINITY]
            .into_iter()
            .enumerate()
            .map(|(i, ms)| server.submit(deadline_request(i as u64 + 1, ms)))
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        open_gate(&gate);
        assert_eq!(first.wait().status, Status::Ok);
        for (i, t) in tickets.iter().enumerate() {
            let r = t.wait();
            if i + 1 == 5 {
                // +inf is a real (unbounded-but-clamped) budget
                assert_eq!(r.status, Status::Ok, "infinite deadline still resolves");
            } else {
                assert_eq!(r.status, Status::Deadline, "non-budget value {i} sheds");
            }
        }
        server.shutdown();
    }

    #[test]
    fn deadline_slack_rides_into_request_served_telemetry() {
        let server = Server::new(Arc::new(MockEngine::new()), ServerConfig::default());
        let sink = Arc::new(MemorySink::new());
        server.attach_sink(sink.clone());
        server.submit(deadline_request(1, 60_000.0)).wait();
        server.submit(request(2, "bt")).wait();
        server.shutdown();
        let slacks: Vec<f64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::RequestServed {
                    deadline_slack_secs,
                    ..
                } => Some(*deadline_slack_secs),
                _ => None,
            })
            .collect();
        assert_eq!(slacks.len(), 2);
        assert!(
            slacks[0] > 0.0 && slacks[0] <= 60.0,
            "a met deadline leaves positive slack, got {}",
            slacks[0]
        );
        assert_eq!(slacks[1], 0.0, "no deadline reports zero slack");
    }
}
