//! The serving layer: an online, batched prediction service over the
//! shared cell substrate.
//!
//! The paper's end product is a *predictor* — given a kernel chain and
//! its coupling values, estimate application time as
//! `T = overhead + Σ_k α_k·E_k·iterations` — yet PR 1–4 only ran it as
//! one-shot batch binaries.  This crate packages the predictor behind
//! a long-running request/response service:
//!
//! * [`protocol`] — the line-delimited JSON wire protocol: one
//!   [`PredictRequest`] per input line, one [`PredictResponse`] per
//!   output line, same order.
//! * [`server`] — [`Server`]: bounded admission (`max_inflight`,
//!   overload responses instead of unbounded queues), a batcher thread
//!   that resolves up to `max_batch` concurrent requests through one
//!   [`PredictionEngine`] call (so duplicate cells across in-flight
//!   requests dedupe in the engine's shared cache), ordered response
//!   delivery, and graceful drain on EOF/shutdown.
//! * [`metrics`] — [`ServeMetrics`]: request latency percentiles,
//!   batch sizes, queue depth and status counts for `--metrics`.
//!
//! The crate is engine-generic and depends only on `kc-core`: the
//! campaign-backed engine (cells resolved through `CachedProvider` +
//! the bounded `CellScheduler`) lives in `kc-experiments`, which wires
//! everything into the `kc_serve` binary.
//!
//! ## Determinism contract
//!
//! Responses carry no timing or schedule-dependent fields, so the
//! response stream for a given request stream is byte-identical across
//! `--jobs` values and batch splits; latency and batch shape are
//! reported only through [`ServeMetrics`] and redacted
//! `RequestServed` telemetry.

#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;
pub mod server;

pub use metrics::{MetricsReport, ServeMetrics};
pub use protocol::{
    status, KernelContribution, PredictRequest, PredictResponse, PredictionReport, Status,
};
pub use server::{PredictionEngine, Server, ServerConfig, Ticket};
