//! Serve-side metrics: request latencies, batch shapes, queue depth
//! and status counts.
//!
//! Responses deliberately carry no timing fields (see the crate-level
//! determinism contract), so this collector is the only place latency
//! and batch shape are visible.  The `kc_serve --metrics` flag prints
//! one [`MetricsReport`] at shutdown.

use kc_core::quantile;
use serde::Serialize;
use std::fmt;
use std::sync::Mutex;

/// Thread-safe serve-metrics collector.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    latencies: Vec<f64>,
    batch_sizes: Vec<usize>,
    peak_queue_depth: usize,
    ok: u64,
    errors: u64,
    overloaded: u64,
    deadline_expired: u64,
}

impl ServeMetrics {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one answered request: terminal status and end-to-end
    /// seconds from admission to response.
    pub fn record_request(&self, status: &str, latency_secs: f64) {
        let mut m = self.inner.lock().unwrap();
        match status {
            crate::protocol::status::OK => m.ok += 1,
            crate::protocol::status::OVERLOADED => m.overloaded += 1,
            crate::protocol::status::DEADLINE => m.deadline_expired += 1,
            _ => m.errors += 1,
        }
        m.latencies.push(latency_secs);
    }

    /// Record one engine batch's size.
    pub fn record_batch(&self, size: usize) {
        self.inner.lock().unwrap().batch_sizes.push(size);
    }

    /// Track the peak pending-queue depth.
    pub fn observe_queue_depth(&self, depth: usize) {
        let mut m = self.inner.lock().unwrap();
        m.peak_queue_depth = m.peak_queue_depth.max(depth);
    }

    /// Snapshot the aggregates.
    pub fn report(&self) -> MetricsReport {
        let m = self.inner.lock().unwrap();
        let mut sorted = m.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let batches = m.batch_sizes.len();
        let batch_mean = if batches > 0 {
            m.batch_sizes.iter().sum::<usize>() as f64 / batches as f64
        } else {
            0.0
        };
        MetricsReport {
            requests: m.ok + m.errors + m.overloaded + m.deadline_expired,
            ok: m.ok,
            errors: m.errors,
            overloaded: m.overloaded,
            deadline_expired: m.deadline_expired,
            latency_p50_secs: quantile(&sorted, 0.50),
            latency_p90_secs: quantile(&sorted, 0.90),
            latency_p99_secs: quantile(&sorted, 0.99),
            latency_max_secs: sorted.last().copied().unwrap_or(0.0),
            batches: batches as u64,
            batch_mean,
            batch_max: m.batch_sizes.iter().copied().max().unwrap_or(0),
            peak_queue_depth: m.peak_queue_depth,
        }
    }
}

/// End-of-run serve aggregates.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsReport {
    /// Total answered requests (every status).
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered `error`.
    pub errors: u64,
    /// Requests rejected `overloaded`.
    pub overloaded: u64,
    /// Requests shed `deadline` (expired in the queue).
    pub deadline_expired: u64,
    /// Median end-to-end request latency, seconds.
    pub latency_p50_secs: f64,
    /// 90th-percentile latency, seconds.
    pub latency_p90_secs: f64,
    /// 99th-percentile latency, seconds.
    pub latency_p99_secs: f64,
    /// Worst observed latency, seconds.
    pub latency_max_secs: f64,
    /// Engine batches resolved.
    pub batches: u64,
    /// Mean requests per batch.
    pub batch_mean: f64,
    /// Largest batch.
    pub batch_max: usize,
    /// Peak pending-queue depth observed at admission.
    pub peak_queue_depth: usize,
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests   {} total (ok {}, error {}, overloaded {}, deadline {})",
            self.requests, self.ok, self.errors, self.overloaded, self.deadline_expired,
        )?;
        writeln!(
            f,
            "latency    p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
            1e3 * self.latency_p50_secs,
            1e3 * self.latency_p90_secs,
            1e3 * self.latency_p99_secs,
            1e3 * self.latency_max_secs,
        )?;
        writeln!(
            f,
            "batches    {} resolved, mean size {:.1}, max size {}, peak queue depth {}",
            self.batches, self.batch_mean, self.batch_max, self.peak_queue_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::status;

    #[test]
    fn empty_collector_reports_zeroes() {
        let r = ServeMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.latency_max_secs, 0.0);
        assert_eq!(r.batches, 0);
        assert_eq!(r.batch_mean, 0.0);
        assert_eq!(r.batch_max, 0);
    }

    #[test]
    fn statuses_and_latencies_aggregate() {
        let m = ServeMetrics::new();
        for (i, s) in [
            status::OK,
            status::OK,
            status::ERROR,
            status::OVERLOADED,
            status::DEADLINE,
        ]
        .iter()
        .enumerate()
        {
            m.record_request(s, (i + 1) as f64 * 0.010);
        }
        m.record_batch(1);
        m.record_batch(3);
        m.observe_queue_depth(2);
        m.observe_queue_depth(1);
        let r = m.report();
        assert_eq!(r.requests, 5);
        assert_eq!(r.ok, 2);
        assert_eq!(r.errors, 1);
        assert_eq!(r.overloaded, 1);
        assert_eq!(r.deadline_expired, 1);
        assert!((r.latency_p50_secs - 0.030).abs() < 1e-12);
        assert!((r.latency_max_secs - 0.050).abs() < 1e-12);
        assert_eq!(r.batches, 2);
        assert!((r.batch_mean - 2.0).abs() < 1e-12);
        assert_eq!(r.batch_max, 3);
        assert_eq!(r.peak_queue_depth, 2, "peak, not last");
        let text = r.to_string();
        assert!(text.contains("5 total"));
        assert!(text.contains("deadline 1"));
        assert!(text.contains("peak queue depth 2"));
    }
}
