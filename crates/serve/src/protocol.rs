//! The line-delimited JSON wire protocol.
//!
//! One [`PredictRequest`] per input line, one [`PredictResponse`] per
//! output line, **in input order** — a client can pipeline requests
//! and match responses positionally or by `id` (echoed verbatim).
//!
//! A response's `status` is a [`Status`] variant, on the wire one of
//! the [`status`] strings: `ok`
//! (with a [`PredictionReport`] in `result`), `error` (malformed line
//! or invalid spec, with `error` text) or `overloaded` (admission
//! control rejected the request; retry later).  Responses carry no
//! timing fields, so the stream is byte-identical across `--jobs`
//! values and batch splits.

use serde::{Deserialize, Serialize};

/// The wire strings of the terminal response statuses (what
/// [`Status`] serializes to; kept for callers that compare or store
/// raw status strings).
pub mod status {
    /// Prediction computed; `result` is populated.
    pub const OK: &str = "ok";
    /// Malformed request or invalid spec; `error` says why.
    pub const ERROR: &str = "error";
    /// Rejected by admission control (queue full or draining).
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline passed before the engine picked it up;
    /// the server shed it unanswered rather than spend batch capacity
    /// on a response the client has already given up on.
    pub const DEADLINE: &str = "deadline";
}

/// Terminal status of a [`PredictResponse`].
///
/// Serializes as the lowercase wire strings in [`status`] (`"ok"`,
/// `"error"`, `"overloaded"`, `"deadline"`), so replacing the old
/// stringly-typed field with this enum left the wire format
/// byte-identical.  The impls are hand-written (not derived) to pin
/// that encoding independently of derive-macro naming conventions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Prediction computed; `result` is populated.
    Ok,
    /// Malformed request or invalid spec; `error` says why.
    Error,
    /// Rejected by admission control (queue full or draining).
    Overloaded,
    /// Shed because the request's deadline passed while queued.
    Deadline,
}

impl Status {
    /// The wire string (see [`status`]).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => status::OK,
            Status::Error => status::ERROR,
            Status::Overloaded => status::OVERLOADED,
            Status::Deadline => status::DEADLINE,
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Status {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Status {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::DeError> {
        match v {
            serde_json::Value::Str(s) if s == status::OK => Ok(Status::Ok),
            serde_json::Value::Str(s) if s == status::ERROR => Ok(Status::Error),
            serde_json::Value::Str(s) if s == status::OVERLOADED => Ok(Status::Overloaded),
            serde_json::Value::Str(s) if s == status::DEADLINE => Ok(Status::Deadline),
            other => Err(serde::DeError::new(format!(
                "unknown response status: {other:?}"
            ))),
        }
    }
}

/// One prediction request: which benchmark × class × processor-count
/// × chain-length coupling study to answer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response
    /// (defaults to 0).
    #[serde(default)]
    pub id: u64,
    /// Benchmark name (`bt`, `sp`, `lu`; case-insensitive).
    pub benchmark: String,
    /// Problem class letter (`S`, `W`, `A`, `B`; case-insensitive).
    pub class: String,
    /// Processor count (must be valid for the benchmark's grid).
    pub procs: usize,
    /// Window chain length `L` for the Eq. 2 coupling windows.
    pub chain_len: usize,
    /// Use the loop-level (fine) BT decomposition.
    #[serde(default)]
    pub fine: bool,
    /// Optional deadline, milliseconds from admission.  A request
    /// still queued when its deadline passes is shed with a
    /// [`status::DEADLINE`] response instead of occupying batch
    /// capacity, and queued requests with earlier deadlines are
    /// batched first (the deadline also rides into the cell
    /// scheduler, where an urgent batch's cells jump the cost-ordered
    /// queue).  Absent (`null`) by default — deadline-free streams
    /// batch strictly FIFO and their responses stay byte-identical
    /// across `--jobs` values and batch splits.
    #[serde(default)]
    pub deadline_ms: Option<f64>,
}

impl PredictRequest {
    /// Compact descriptor for telemetry and logs, e.g. `bt/W/p9/len3`.
    pub fn describe(&self) -> String {
        format!(
            "{}/{}/p{}/len{}{}",
            self.benchmark.to_lowercase(),
            self.class.to_uppercase(),
            self.procs,
            self.chain_len,
            if self.fine { "/fine" } else { "" },
        )
    }
}

/// One kernel's contribution to the composed prediction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelContribution {
    /// Kernel name from the benchmark's loop decomposition.
    pub name: String,
    /// Composition coefficient `α_k` (Eq. 2 weighted average of the
    /// coupling values of every window containing this kernel).
    pub alpha: f64,
    /// Isolated per-iteration model `E_k`, seconds.
    pub isolated_secs: f64,
    /// This kernel's share of the coupled prediction:
    /// `α_k·E_k·iterations`, seconds.
    pub coupled_total_secs: f64,
}

/// The coupling-composed prediction for one request, with the
/// summation baseline and per-kernel breakdown.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Benchmark name, lowercase.
    pub benchmark: String,
    /// Problem class letter, uppercase.
    pub class: String,
    /// Processor count.
    pub procs: usize,
    /// Window chain length `L`.
    pub chain_len: usize,
    /// Loop iterations of the full application.
    pub loop_iterations: u64,
    /// Serial (init + final) overhead, seconds.
    pub overhead_secs: f64,
    /// Measured full-application time, seconds.
    pub actual_secs: f64,
    /// Coupling-composed prediction (`T = overhead + Σ α_k·E_k·iters`),
    /// seconds.
    pub coupled_secs: f64,
    /// Summation baseline (`α_k = 1`), seconds.
    pub summation_secs: f64,
    /// Relative error `|predicted − actual| / actual` of the coupled
    /// prediction, percent (as the paper reports it).
    pub coupled_rel_err_pct: f64,
    /// Relative error of the summation baseline, percent.
    pub summation_rel_err_pct: f64,
    /// Per-kernel breakdown, in kernel-set order.
    pub kernels: Vec<KernelContribution>,
}

/// One response line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// The request's correlation id (0 when the line did not parse).
    pub id: u64,
    /// Terminal status.
    pub status: Status,
    /// Failure detail for non-`ok` statuses.
    #[serde(default)]
    pub error: Option<String>,
    /// The prediction, for `ok`.
    #[serde(default)]
    pub result: Option<PredictionReport>,
}

impl PredictResponse {
    /// The one response constructor: a `status` plus its payload —
    /// `Ok(report)` populates `result`, `Err(message)` populates
    /// `error`.  The old per-status constructors are expressible as
    /// `new(id, Status::Ok, Ok(report))`,
    /// `new(id, Status::Overloaded, Err(msg))`, and so on.
    pub fn new(id: u64, status: Status, body: Result<PredictionReport, String>) -> Self {
        let (result, error) = match body {
            Ok(report) => (Some(report), None),
            Err(message) => (None, Some(message)),
        };
        Self {
            id,
            status,
            error,
            result,
        }
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<PredictRequest, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("bad request: {e}"))
}

/// Encode one response line (no trailing newline).
pub fn encode_response(response: &PredictResponse) -> String {
    serde_json::to_string(response).expect("responses serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_and_defaults_optional_fields() {
        let line = r#"{"benchmark":"bt","class":"w","procs":9,"chain_len":3}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, 0, "id defaults");
        assert!(!req.fine, "fine defaults");
        assert_eq!(req.deadline_ms, None, "deadline defaults to none");
        assert_eq!(req.describe(), "bt/W/p9/len3");
        let encoded = serde_json::to_string(&req).unwrap();
        let back = parse_request(&encoded).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn parse_rejects_garbage_and_missing_fields() {
        assert!(parse_request("not json").is_err());
        assert!(
            parse_request(r#"{"benchmark":"bt"}"#).is_err(),
            "class/procs/chain_len are required"
        );
    }

    #[test]
    fn describe_marks_the_fine_decomposition() {
        let req = PredictRequest {
            id: 7,
            benchmark: "BT".into(),
            class: "s".into(),
            procs: 4,
            chain_len: 2,
            fine: true,
            deadline_ms: None,
        };
        assert_eq!(req.describe(), "bt/S/p4/len2/fine");
    }

    #[test]
    fn deadline_parses_and_roundtrips() {
        let line = r#"{"benchmark":"bt","class":"S","procs":4,"chain_len":2,"deadline_ms":250.0}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.deadline_ms, Some(250.0));
        let back = parse_request(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        // explicit null is the same as absent
        let line = r#"{"benchmark":"bt","class":"S","procs":4,"chain_len":2,"deadline_ms":null}"#;
        assert_eq!(parse_request(line).unwrap().deadline_ms, None);
    }

    #[test]
    fn status_enum_round_trips_as_the_wire_strings() {
        for (s, wire) in [
            (Status::Ok, "\"ok\""),
            (Status::Error, "\"error\""),
            (Status::Overloaded, "\"overloaded\""),
            (Status::Deadline, "\"deadline\""),
        ] {
            assert_eq!(serde_json::to_string(&s).unwrap(), wire);
            assert_eq!(serde_json::from_str::<Status>(wire).unwrap(), s);
            assert_eq!(format!("\"{s}\""), wire);
        }
        assert!(serde_json::from_str::<Status>("\"shrug\"").is_err());
        assert!(serde_json::from_str::<Status>("7").is_err());
    }

    #[test]
    fn response_constructor_sets_status_and_payload() {
        let ok = PredictResponse::new(
            3,
            Status::Ok,
            Ok(PredictionReport {
                benchmark: "bt".into(),
                class: "W".into(),
                procs: 9,
                chain_len: 3,
                loop_iterations: 200,
                overhead_secs: 1.0,
                actual_secs: 10.0,
                coupled_secs: 9.8,
                summation_secs: 9.0,
                coupled_rel_err_pct: -2.0,
                summation_rel_err_pct: -10.0,
                kernels: vec![KernelContribution {
                    name: "rhs".into(),
                    alpha: 1.05,
                    isolated_secs: 0.02,
                    coupled_total_secs: 4.2,
                }],
            }),
        );
        assert_eq!(ok.status, Status::Ok);
        assert!(ok.error.is_none());
        assert_eq!(ok.result.as_ref().unwrap().kernels.len(), 1);

        let err = PredictResponse::new(0, Status::Error, Err("bad request: not json".into()));
        assert_eq!(err.status, Status::Error);
        assert!(err.result.is_none());

        let over = PredictResponse::new(9, Status::Overloaded, Err("queue full".into()));
        assert_eq!(over.status, Status::Overloaded);

        let dead = PredictResponse::new(4, Status::Deadline, Err("deadline expired".into()));
        assert_eq!(dead.status, Status::Deadline);
        assert!(dead.result.is_none());

        // every shape round-trips through the wire encoding, and the
        // status field serializes exactly as the old string did
        for r in [ok, err, over, dead] {
            let line = encode_response(&r);
            assert!(line.contains(&format!("\"status\":\"{}\"", r.status.as_str())));
            let back: PredictResponse = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }
}
