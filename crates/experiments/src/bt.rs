//! BT experiments: paper Tables 2a/2b, 3a/3b, 4a/4b.
//!
//! Table 2 (class S) uses pairwise chains and processor counts 4/9/16;
//! Table 3 (class W) uses 3-kernel chains over 4/9/16/25; Table 4
//! (class A) uses 4-kernel chains over 4/9/16/25 — exactly the chain
//! lengths the paper found gave the best predictions per class.

use crate::campaign::{AnalysisSpec, Campaign};
use crate::runner::{build_tables, table_requests, TablePair};
use kc_core::KcResult;
use kc_npb::{Benchmark, Class};

/// Processor counts of the class-S study (paper Table 2).
pub const S_PROCS: [usize; 3] = [4, 9, 16];
/// Processor counts of the class-W/A studies (paper Tables 3 and 4).
pub const WA_PROCS: [usize; 4] = [4, 9, 16, 25];

/// The analyses Table 2 needs.
pub fn table2_requests() -> Vec<AnalysisSpec> {
    table_requests(Benchmark::Bt, Class::S, &S_PROCS, &[2])
}

/// Tables 2a + 2b: BT class S, two-kernel coupling values and the
/// execution-time comparison.
pub fn table2(campaign: &Campaign) -> KcResult<TablePair> {
    build_tables(
        campaign,
        Benchmark::Bt,
        Class::S,
        &S_PROCS,
        &[2],
        "Table 2a",
        "Table 2b",
    )
}

/// The analyses Table 3 needs.
pub fn table3_requests() -> Vec<AnalysisSpec> {
    table_requests(Benchmark::Bt, Class::W, &WA_PROCS, &[3])
}

/// Tables 3a + 3b: BT class W, three-kernel chains.
pub fn table3(campaign: &Campaign) -> KcResult<TablePair> {
    build_tables(
        campaign,
        Benchmark::Bt,
        Class::W,
        &WA_PROCS,
        &[3],
        "Table 3a",
        "Table 3b",
    )
}

/// The analyses Table 4 needs.
pub fn table4_requests() -> Vec<AnalysisSpec> {
    table_requests(Benchmark::Bt, Class::A, &WA_PROCS, &[4])
}

/// Tables 4a + 4b: BT class A, four-kernel chains.
pub fn table4(campaign: &Campaign) -> KcResult<TablePair> {
    build_tables(
        campaign,
        Benchmark::Bt,
        Class::A,
        &WA_PROCS,
        &[4],
        "Table 4a",
        "Table 4b",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_processor_columns_and_five_pairs() {
        let pair = table2(&Campaign::builder(crate::Runner::noise_free()).build()).unwrap();
        assert_eq!(pair.couplings[0].columns.len(), 3);
        assert_eq!(pair.couplings[0].rows.len(), 5);
        let labels: Vec<&str> = pair.couplings[0]
            .rows
            .iter()
            .map(|r| r.label.as_str())
            .collect();
        assert!(
            labels.contains(&"{add, copy_faces}"),
            "wrap-around pair present: {labels:?}"
        );
    }
}
