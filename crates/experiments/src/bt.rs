//! BT experiments: paper Tables 2a/2b, 3a/3b, 4a/4b.
//!
//! Table 2 (class S) uses pairwise chains and processor counts 4/9/16;
//! Table 3 (class W) uses 3-kernel chains over 4/9/16/25; Table 4
//! (class A) uses 4-kernel chains over 4/9/16/25 — exactly the chain
//! lengths the paper found gave the best predictions per class.

use crate::runner::{build_tables, Runner, TablePair};
use kc_npb::{Benchmark, Class};

/// Processor counts of the class-S study (paper Table 2).
pub const S_PROCS: [usize; 3] = [4, 9, 16];
/// Processor counts of the class-W/A studies (paper Tables 3 and 4).
pub const WA_PROCS: [usize; 4] = [4, 9, 16, 25];

/// Tables 2a + 2b: BT class S, two-kernel coupling values and the
/// execution-time comparison.
pub fn table2(runner: &Runner) -> TablePair {
    build_tables(
        runner,
        Benchmark::Bt,
        Class::S,
        &S_PROCS,
        &[2],
        "Table 2a",
        "Table 2b",
    )
}

/// Tables 3a + 3b: BT class W, three-kernel chains.
pub fn table3(runner: &Runner) -> TablePair {
    build_tables(
        runner,
        Benchmark::Bt,
        Class::W,
        &WA_PROCS,
        &[3],
        "Table 3a",
        "Table 3b",
    )
}

/// Tables 4a + 4b: BT class A, four-kernel chains.
pub fn table4(runner: &Runner) -> TablePair {
    build_tables(
        runner,
        Benchmark::Bt,
        Class::A,
        &WA_PROCS,
        &[4],
        "Table 4a",
        "Table 4b",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_processor_columns_and_five_pairs() {
        let pair = table2(&Runner::noise_free());
        assert_eq!(pair.couplings[0].columns.len(), 3);
        assert_eq!(pair.couplings[0].rows.len(), 5);
        let labels: Vec<&str> = pair.couplings[0]
            .rows
            .iter()
            .map(|r| r.label.as_str())
            .collect();
        assert!(
            labels.contains(&"{add, copy_faces}"),
            "wrap-around pair present: {labels:?}"
        );
    }
}
