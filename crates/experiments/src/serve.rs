//! The campaign-backed prediction engine for `kc-serve`.
//!
//! [`CampaignEngine`] adapts a [`Campaign`] to the
//! [`kc_serve::PredictionEngine`] trait: each server batch is
//! validated into [`AnalysisSpec`]s, prefetched **as one set** through
//! the campaign's shared cache and bounded cell scheduler — so
//! duplicate cells across concurrent requests execute exactly once
//! and executor concurrency stays bounded by the campaign's `--jobs`
//! pool — then assembled per request into a
//! [`kc_serve::PredictionReport`] with the coupling-composed
//! prediction, the summation baseline and the per-kernel breakdown.
//!
//! Validation failures (unknown benchmark, bad class letter, invalid
//! grid, out-of-range chain length, `fine` outside BT) are values:
//! they become `error` responses and never reach the measurement
//! layer.

use crate::campaign::{AnalysisSpec, Campaign};
use kc_core::{Prediction, Predictor};
use kc_npb::{Benchmark, Class};
use kc_serve::{KernelContribution, PredictRequest, PredictionEngine, PredictionReport};
use std::sync::Arc;

/// Parse a benchmark name (`bt`, `sp`, `lu`; case-insensitive).
pub fn parse_benchmark(name: &str) -> Result<Benchmark, String> {
    match name.to_lowercase().as_str() {
        "bt" => Ok(Benchmark::Bt),
        "sp" => Ok(Benchmark::Sp),
        "lu" => Ok(Benchmark::Lu),
        other => Err(format!(
            "unknown benchmark `{other}` (expected bt, sp or lu)"
        )),
    }
}

/// Parse a class letter (`S`, `W`, `A`, `B`; case-insensitive).
pub fn parse_class(name: &str) -> Result<Class, String> {
    match name.to_uppercase().as_str() {
        "S" => Ok(Class::S),
        "W" => Ok(Class::W),
        "A" => Ok(Class::A),
        "B" => Ok(Class::B),
        other => Err(format!("unknown class `{other}` (expected S, W, A or B)")),
    }
}

/// A [`PredictionEngine`] over one shared [`Campaign`].
pub struct CampaignEngine {
    campaign: Arc<Campaign>,
}

impl CampaignEngine {
    /// An engine resolving requests through `campaign`'s cache and
    /// scheduler.
    pub fn new(campaign: Arc<Campaign>) -> Self {
        Self { campaign }
    }

    /// The underlying campaign (for stats, telemetry and stores).
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Validate one request into an analysis spec, without touching
    /// the measurement layer.
    pub fn validate(&self, request: &PredictRequest) -> Result<AnalysisSpec, String> {
        let benchmark = parse_benchmark(&request.benchmark)?;
        let class = parse_class(&request.class)?;
        if request.procs == 0 || !benchmark.valid_procs(request.procs) {
            let shape = match benchmark {
                Benchmark::Bt | Benchmark::Sp => "a perfect square",
                Benchmark::Lu => "a power of two",
            };
            return Err(format!(
                "invalid processor count {} for {} (must be {shape})",
                request.procs,
                benchmark.name(),
            ));
        }
        if request.fine && benchmark != Benchmark::Bt {
            return Err(format!(
                "the fine decomposition exists only for bt, not {}",
                benchmark.name(),
            ));
        }
        let mut spec = AnalysisSpec::new(benchmark, class, request.procs, request.chain_len);
        if request.fine {
            spec = spec.fine();
        }
        let kernels = spec.kernel_set().len();
        if request.chain_len == 0 || request.chain_len > kernels {
            return Err(format!(
                "chain length {} out of range (this decomposition has {kernels} kernels)",
                request.chain_len,
            ));
        }
        Ok(spec)
    }

    /// Assemble one validated spec from the (now warm) cache.
    fn report(&self, spec: &AnalysisSpec) -> Result<PredictionReport, String> {
        let analysis = self.campaign.analysis(spec).map_err(|e| e.to_string())?;
        let coefficients = analysis.coefficients().map_err(|e| e.to_string())?;
        let coupled_secs = analysis
            .predict(Predictor::coupling(spec.chain_len))
            .map_err(|e| e.to_string())?;
        let summation_secs = analysis
            .predict(Predictor::Summation)
            .map_err(|e| e.to_string())?;
        let actual_secs = analysis.actual().mean();
        let iterations = analysis.loop_iterations() as f64;
        let set = analysis.kernel_set().clone();
        let kernels = set
            .ids()
            .map(|k| {
                let alpha = coefficients.alpha(k);
                let isolated_secs = analysis.isolated(k).mean();
                KernelContribution {
                    name: set.name(k).to_string(),
                    alpha,
                    isolated_secs,
                    coupled_total_secs: alpha * isolated_secs * iterations,
                }
            })
            .collect();
        let rel = |predicted: f64| {
            Prediction {
                predicted,
                actual: actual_secs,
            }
            .rel_err_pct()
        };
        Ok(PredictionReport {
            benchmark: spec.benchmark.name().to_string(),
            class: spec.class.letter().to_string(),
            procs: spec.procs,
            chain_len: spec.chain_len,
            loop_iterations: analysis.loop_iterations() as u64,
            overhead_secs: analysis.overhead().mean(),
            actual_secs,
            coupled_rel_err_pct: rel(coupled_secs),
            summation_rel_err_pct: rel(summation_secs),
            coupled_secs,
            summation_secs,
            kernels,
        })
    }
}

impl PredictionEngine for CampaignEngine {
    fn predict_batch(&self, batch: &[PredictRequest]) -> Vec<Result<PredictionReport, String>> {
        let validated: Vec<Result<AnalysisSpec, String>> =
            batch.iter().map(|r| self.validate(r)).collect();
        let specs: Vec<AnalysisSpec> = validated
            .iter()
            .filter_map(|v| v.as_ref().ok())
            .cloned()
            .collect();
        if !specs.is_empty() {
            // one batch-wide prefetch: every valid request's cells
            // dedupe against each other at the shared scheduler queue;
            // a prefetch failure surfaces per request during assembly,
            // which repeats the (then mostly cached) prefetch.  The
            // batch's tightest deadline rides into the scheduler so
            // urgent cells jump queued deadline-free table work; a
            // batch with no deadlines takes the pure-cost path.
            let deadline_ms = batch
                .iter()
                .filter_map(|r| r.deadline_ms)
                .filter(|d| !d.is_nan())
                .min_by(f64::total_cmp);
            let _ = self.campaign.prefetch_with_deadline(&specs, deadline_ms);
        }
        validated
            .into_iter()
            .map(|v| v.and_then(|spec| self.report(&spec)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    fn engine() -> CampaignEngine {
        CampaignEngine::new(Arc::new(Campaign::builder(Runner::noise_free()).build()))
    }

    fn request(benchmark: &str, class: &str, procs: usize, chain_len: usize) -> PredictRequest {
        PredictRequest {
            id: 0,
            benchmark: benchmark.into(),
            class: class.into(),
            procs,
            chain_len,
            fine: false,
            deadline_ms: None,
        }
    }

    #[test]
    fn validation_rejects_bad_specs_without_measuring() {
        let e = engine();
        let cases = [
            (request("ft", "S", 4, 2), "unknown benchmark"),
            (request("bt", "C", 4, 2), "unknown class"),
            (request("bt", "S", 5, 2), "perfect square"),
            (request("lu", "S", 6, 2), "power of two"),
            (request("bt", "S", 0, 2), "invalid processor count"),
            (request("bt", "S", 4, 0), "chain length 0 out of range"),
            (request("bt", "S", 4, 99), "chain length 99 out of range"),
        ];
        for (req, needle) in cases {
            let err = e.validate(&req).unwrap_err();
            assert!(err.contains(needle), "{req:?}: {err}");
        }
        let mut fine = request("sp", "S", 4, 2);
        fine.fine = true;
        assert!(e.validate(&fine).unwrap_err().contains("only for bt"));
        assert_eq!(e.campaign().cache_stats().requests, 0, "nothing measured");
    }

    #[test]
    fn case_insensitive_names_validate() {
        let e = engine();
        let spec = e.validate(&request("BT", "w", 9, 3)).unwrap();
        assert_eq!(spec.benchmark, Benchmark::Bt);
        assert_eq!(spec.class, Class::W);
    }

    #[test]
    fn batch_mixes_reports_and_errors_in_order() {
        let e = engine();
        let results = e.predict_batch(&[
            request("bt", "S", 4, 2),
            request("ft", "S", 4, 2),
            request("bt", "S", 4, 2),
        ]);
        assert_eq!(results.len(), 3);
        let first = results[0].as_ref().unwrap();
        assert!(results[1].is_err());
        let third = results[2].as_ref().unwrap();
        assert_eq!(first, third, "identical requests get identical reports");
        assert_eq!(first.benchmark, "bt");
        assert_eq!(first.class, "S");
        assert_eq!(first.kernels.len(), 5, "BT has five loop kernels");
        // the breakdown recomposes the prediction exactly
        let total: f64 = first.kernels.iter().map(|k| k.coupled_total_secs).sum();
        assert!(
            (first.overhead_secs + total - first.coupled_secs).abs() < 1e-9,
            "overhead + Σ α_k·E_k·iters = coupled prediction"
        );
        assert!(first.actual_secs > 0.0);
    }

    #[test]
    fn duplicate_requests_in_one_batch_measure_cells_once() {
        let e = engine();
        let req = request("bt", "S", 4, 2);
        e.predict_batch(&[req.clone(), req.clone(), req]);
        let stats = e.campaign().cache_stats();
        // 5 isolated + 5 pair windows + overhead + application
        assert_eq!(stats.executed, 12, "each unique cell executed once");
    }
}
