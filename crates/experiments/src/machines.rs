//! Cross-machine study — the paper's opening motivation.
//!
//! §1: "models can be used to predict the relative performance of
//! different systems used to execute an application".  Here we run the
//! coupling methodology on two different simulated machines (the IBM
//! SP stand-in and an Ethernet commodity cluster) and check that the
//! *relative* performance it predicts — which machine is faster, and
//! by what factor — matches the measured ratio, even though the
//! absolute coupling values differ per machine (the regimes move with
//! the memory subsystem).
//!
//! Both machines' campaigns flow through the same shared cache: each
//! is an [`AnalysisSpec`] with a machine override, so their cells are
//! distinct by fingerprint but execute in one parallel prefetch.

use crate::campaign::{AnalysisSpec, Campaign};
use kc_core::{CouplingRow, CouplingTable, KcResult, Predictor};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class};

/// The outcome of one machine's campaign.
#[derive(Clone, Debug)]
pub struct MachineOutcome {
    /// Machine name.
    pub machine: String,
    /// Measured application time.
    pub actual: f64,
    /// Coupling-predicted application time.
    pub predicted: f64,
    /// Mean coupling value at the studied chain length.
    pub mean_coupling: f64,
}

/// The two machines of the study, noise-free (the comparison is about
/// architecture, not measurement error).
fn study_machines() -> [MachineConfig; 2] {
    [
        MachineConfig::ibm_sp_p2sc().without_noise(),
        MachineConfig::ethernet_cluster().without_noise(),
    ]
}

/// The analyses [`machine_comparison`] needs.
pub fn comparison_requests(
    benchmark: Benchmark,
    class: Class,
    procs: usize,
    len: usize,
) -> Vec<AnalysisSpec> {
    study_machines()
        .into_iter()
        .map(|m| AnalysisSpec::new(benchmark, class, procs, len).on(m))
        .collect()
}

/// Run the campaign for one machine-override spec.
pub fn outcome_on(campaign: &Campaign, spec: &AnalysisSpec) -> KcResult<MachineOutcome> {
    let machine_name = spec
        .machine
        .as_ref()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| campaign.runner().machine.name.clone());
    let analysis = campaign.analysis(spec)?;
    let cs = analysis.couplings()?;
    Ok(MachineOutcome {
        machine: machine_name,
        actual: analysis.actual().mean(),
        predicted: analysis.predict(Predictor::coupling(spec.chain_len))?,
        mean_coupling: cs.iter().sum::<f64>() / cs.len() as f64,
    })
}

/// The cross-machine comparison table for one workload.
pub fn machine_comparison(
    campaign: &Campaign,
    benchmark: Benchmark,
    class: Class,
    procs: usize,
    len: usize,
) -> KcResult<(CouplingTable, Vec<MachineOutcome>)> {
    let requests = comparison_requests(benchmark, class, procs, len);
    campaign.prefetch(&requests)?;
    let outcomes = requests
        .iter()
        .map(|spec| outcome_on(campaign, spec))
        .collect::<KcResult<Vec<_>>>()?;
    let columns = outcomes.iter().map(|o| o.machine.clone()).collect();
    let rows = vec![
        CouplingRow {
            label: "actual time (s)".to_string(),
            values: outcomes.iter().map(|o| o.actual).collect(),
        },
        CouplingRow {
            label: "coupling prediction (s)".to_string(),
            values: outcomes.iter().map(|o| o.predicted).collect(),
        },
        CouplingRow {
            label: format!("mean {len}-chain coupling"),
            values: outcomes.iter().map(|o| o.mean_coupling).collect(),
        },
    ];
    let table = CouplingTable {
        title: format!("Cross-machine study: {benchmark} class {class} on {procs} processors"),
        columns,
        rows,
    };
    Ok((table, outcomes))
}

/// Relative-performance check: (predicted ratio, actual ratio) of
/// machine 0 over machine 1.
pub fn relative_performance(outcomes: &[MachineOutcome]) -> (f64, f64) {
    assert!(outcomes.len() >= 2);
    (
        outcomes[0].predicted / outcomes[1].predicted,
        outcomes[0].actual / outcomes[1].actual,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    fn quick_campaign() -> Campaign {
        let mut runner = Runner::noise_free();
        runner.reps = 2;
        Campaign::builder(runner).build()
    }

    #[test]
    fn relative_performance_is_predicted_accurately() {
        let (_, outcomes) =
            machine_comparison(&quick_campaign(), Benchmark::Bt, Class::W, 9, 3).unwrap();
        let (pred_ratio, actual_ratio) = relative_performance(&outcomes);
        let err = (pred_ratio - actual_ratio).abs() / actual_ratio;
        assert!(
            err < 0.10,
            "relative-performance prediction off by {:.1}% (pred {pred_ratio:.3}, actual {actual_ratio:.3})",
            100.0 * err
        );
    }

    #[test]
    fn coupling_values_are_machine_dependent() {
        // the same workload couples differently on a machine with a
        // different memory subsystem — the paper's architectural claim
        let (_, outcomes) =
            machine_comparison(&quick_campaign(), Benchmark::Bt, Class::S, 4, 2).unwrap();
        let diff = (outcomes[0].mean_coupling - outcomes[1].mean_coupling).abs();
        assert!(
            diff > 0.01,
            "couplings should differ across machines: {} vs {}",
            outcomes[0].mean_coupling,
            outcomes[1].mean_coupling
        );
    }

    #[test]
    fn per_machine_predictions_stay_accurate() {
        let (_, outcomes) =
            machine_comparison(&quick_campaign(), Benchmark::Bt, Class::S, 4, 2).unwrap();
        for o in &outcomes {
            let err = (o.predicted - o.actual).abs() / o.actual;
            assert!(
                err < 0.20,
                "{}: prediction error {:.1}%",
                o.machine,
                100.0 * err
            );
        }
    }
}
