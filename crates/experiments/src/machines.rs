//! Cross-machine study — the paper's opening motivation.
//!
//! §1: "models can be used to predict the relative performance of
//! different systems used to execute an application".  Here we run the
//! coupling methodology on two different simulated machines (the IBM
//! SP stand-in and an Ethernet commodity cluster) and check that the
//! *relative* performance it predicts — which machine is faster, and
//! by what factor — matches the measured ratio, even though the
//! absolute coupling values differ per machine (the regimes move with
//! the memory subsystem).

use crate::runner::Runner;
use kc_core::{CouplingAnalysis, CouplingRow, CouplingTable, Predictor};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class};

/// The outcome of one machine's campaign.
#[derive(Clone, Debug)]
pub struct MachineOutcome {
    /// Machine name.
    pub machine: String,
    /// Measured application time.
    pub actual: f64,
    /// Coupling-predicted application time.
    pub predicted: f64,
    /// Mean coupling value at the studied chain length.
    pub mean_coupling: f64,
}

/// Run the campaign on one machine.
pub fn outcome_on(
    machine: MachineConfig,
    benchmark: Benchmark,
    class: Class,
    procs: usize,
    len: usize,
    reps: u32,
) -> MachineOutcome {
    let runner = Runner {
        machine,
        ..Runner::noise_free()
    };
    let machine_name = runner.machine.name.clone();
    let mut exec = runner.executor(benchmark, class, procs);
    let analysis = CouplingAnalysis::collect(&mut exec, len, reps).unwrap();
    let cs = analysis.couplings().unwrap();
    MachineOutcome {
        machine: machine_name,
        actual: analysis.actual().mean(),
        predicted: analysis.predict(Predictor::coupling(len)).unwrap(),
        mean_coupling: cs.iter().sum::<f64>() / cs.len() as f64,
    }
}

/// The cross-machine comparison table for one workload.
pub fn machine_comparison(
    benchmark: Benchmark,
    class: Class,
    procs: usize,
    len: usize,
    reps: u32,
) -> (CouplingTable, Vec<MachineOutcome>) {
    let outcomes = vec![
        outcome_on(
            MachineConfig::ibm_sp_p2sc().without_noise(),
            benchmark,
            class,
            procs,
            len,
            reps,
        ),
        outcome_on(
            MachineConfig::ethernet_cluster().without_noise(),
            benchmark,
            class,
            procs,
            len,
            reps,
        ),
    ];
    let columns = outcomes.iter().map(|o| o.machine.clone()).collect();
    let rows = vec![
        CouplingRow {
            label: "actual time (s)".to_string(),
            values: outcomes.iter().map(|o| o.actual).collect(),
        },
        CouplingRow {
            label: "coupling prediction (s)".to_string(),
            values: outcomes.iter().map(|o| o.predicted).collect(),
        },
        CouplingRow {
            label: format!("mean {len}-chain coupling"),
            values: outcomes.iter().map(|o| o.mean_coupling).collect(),
        },
    ];
    let table = CouplingTable {
        title: format!("Cross-machine study: {benchmark} class {class} on {procs} processors"),
        columns,
        rows,
    };
    (table, outcomes)
}

/// Relative-performance check: (predicted ratio, actual ratio) of
/// machine 0 over machine 1.
pub fn relative_performance(outcomes: &[MachineOutcome]) -> (f64, f64) {
    assert!(outcomes.len() >= 2);
    (
        outcomes[0].predicted / outcomes[1].predicted,
        outcomes[0].actual / outcomes[1].actual,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_performance_is_predicted_accurately() {
        let (_, outcomes) = machine_comparison(Benchmark::Bt, Class::W, 9, 3, 2);
        let (pred_ratio, actual_ratio) = relative_performance(&outcomes);
        let err = (pred_ratio - actual_ratio).abs() / actual_ratio;
        assert!(
            err < 0.10,
            "relative-performance prediction off by {:.1}% (pred {pred_ratio:.3}, actual {actual_ratio:.3})",
            100.0 * err
        );
    }

    #[test]
    fn coupling_values_are_machine_dependent() {
        // the same workload couples differently on a machine with a
        // different memory subsystem — the paper's architectural claim
        let (_, outcomes) = machine_comparison(Benchmark::Bt, Class::S, 4, 2, 2);
        let diff = (outcomes[0].mean_coupling - outcomes[1].mean_coupling).abs();
        assert!(
            diff > 0.01,
            "couplings should differ across machines: {} vs {}",
            outcomes[0].mean_coupling,
            outcomes[1].mean_coupling
        );
    }

    #[test]
    fn per_machine_predictions_stay_accurate() {
        let (_, outcomes) = machine_comparison(Benchmark::Bt, Class::S, 4, 2, 2);
        for o in &outcomes {
            let err = (o.predicted - o.actual).abs() / o.actual;
            assert!(
                err < 0.20,
                "{}: prediction error {:.1}%",
                o.machine,
                100.0 * err
            );
        }
    }
}
