//! The experiment runner: machine + measurement protocol + generic
//! table builders.

use crate::campaign::{AnalysisSpec, Campaign};
use kc_core::report::TableCell;
use kc_core::{CouplingRow, CouplingTable, KcResult, PredictionRow, PredictionTable, Predictor};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};

/// Owns the simulated machine and the measurement-protocol settings
/// used for every experiment.
#[derive(Clone, Debug)]
pub struct Runner {
    /// The machine all measurements run on.
    pub machine: MachineConfig,
    /// Measurement protocol (warm-up/timed iterations, mode).
    pub exec: ExecConfig,
    /// Timing repetitions per measurement (the paper uses 50 per
    /// kernel; 5 keeps the campaign quick with the same averaging
    /// effect under our noise model).
    pub reps: u32,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            machine: MachineConfig::ibm_sp_p2sc(),
            exec: ExecConfig::default(),
            reps: 5,
        }
    }
}

impl Runner {
    /// A runner with all timer noise disabled (for shape-focused tests
    /// and benches).
    pub fn noise_free() -> Self {
        let mut r = Self::default();
        r.machine = r.machine.without_noise();
        r
    }

    /// Build the executor for one benchmark instance.
    pub fn executor(&self, benchmark: Benchmark, class: Class, procs: usize) -> NpbExecutor {
        NpbExecutor::new(
            NpbApp::new(benchmark, class, procs),
            self.machine.clone(),
            self.exec,
        )
    }
}

/// A paper table pair: the coupling-value tables (one per chain
/// length) and the execution-time comparison table.
#[derive(Clone, Debug)]
pub struct TablePair {
    /// Coupling tables, one per requested chain length (paper's
    /// "a"-tables).
    pub couplings: Vec<CouplingTable>,
    /// Execution-time comparison (paper's "b"-tables).
    pub predictions: PredictionTable,
}

impl TablePair {
    /// Pretty-print both tables.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for c in &self.couplings {
            s.push_str(&c.to_string());
            s.push('\n');
        }
        s.push_str(&self.predictions.to_string());
        s
    }
}

/// The analysis specs a [`build_tables`] call needs — prefetch these
/// (possibly merged with other tables' requests) to measure the whole
/// study as one deduplicated parallel campaign.
pub fn table_requests(
    benchmark: Benchmark,
    class: Class,
    procs: &[usize],
    chain_lens: &[usize],
) -> Vec<AnalysisSpec> {
    procs
        .iter()
        .flat_map(|&p| {
            chain_lens
                .iter()
                .map(move |&len| AnalysisSpec::new(benchmark, class, p, len))
        })
        .collect()
}

/// Run the full measurement campaign for one benchmark × class over a
/// set of processor counts and chain lengths, producing the paper's
/// table pair.
///
/// Measurement goes through the campaign's shared cache: the cells of
/// this table are prefetched (deduplicated, in parallel) and anything
/// another table already measured is reused.
pub fn build_tables(
    campaign: &Campaign,
    benchmark: Benchmark,
    class: Class,
    procs: &[usize],
    chain_lens: &[usize],
    coupling_title: &str,
    prediction_title: &str,
) -> KcResult<TablePair> {
    assert!(!procs.is_empty() && !chain_lens.is_empty());
    let columns: Vec<String> = procs.iter().map(|p| format!("{p} processors")).collect();

    campaign.prefetch(&table_requests(benchmark, class, procs, chain_lens))?;

    struct ProcResult {
        actual: f64,
        summation: f64,
        labels: Vec<Vec<String>>,
        couplings: Vec<Vec<f64>>,
        coupled: Vec<f64>,
    }
    let mut per_proc: Vec<ProcResult> = Vec::new();
    for &p in procs {
        let mut res = ProcResult {
            actual: 0.0,
            summation: 0.0,
            labels: Vec::new(),
            couplings: Vec::new(),
            coupled: Vec::new(),
        };
        for (li, &len) in chain_lens.iter().enumerate() {
            let analysis = campaign.analysis(&AnalysisSpec::new(benchmark, class, p, len))?;
            res.labels.push(
                analysis
                    .windows()
                    .iter()
                    .map(|w| w.label(analysis.kernel_set()))
                    .collect(),
            );
            res.couplings
                .push(analysis.couplings().expect("positive kernel times"));
            if li == 0 {
                res.actual = analysis.actual().mean();
                res.summation = analysis.predict(Predictor::Summation).expect("summation");
            }
            res.coupled.push(
                analysis
                    .predict(Predictor::coupling(len))
                    .expect("coupling"),
            );
        }
        per_proc.push(res);
    }

    let mut coupling_values: Vec<Vec<Vec<f64>>> = vec![Vec::new(); chain_lens.len()];
    let window_labels: Vec<Vec<String>> = per_proc[0].labels.clone();
    let mut actual: Vec<f64> = Vec::new();
    let mut summation: Vec<f64> = Vec::new();
    let mut coupled: Vec<Vec<f64>> = vec![Vec::new(); chain_lens.len()];
    for res in per_proc {
        actual.push(res.actual);
        summation.push(res.summation);
        for (li, c) in res.couplings.into_iter().enumerate() {
            coupling_values[li].push(c);
        }
        for (li, c) in res.coupled.into_iter().enumerate() {
            coupled[li].push(c);
        }
    }

    let couplings = chain_lens
        .iter()
        .enumerate()
        .map(|(li, &len)| {
            let rows = window_labels[li]
                .iter()
                .enumerate()
                .map(|(w, label)| CouplingRow {
                    label: label.clone(),
                    values: coupling_values[li].iter().map(|per_proc| per_proc[w]).collect(),
                })
                .collect();
            CouplingTable {
                title: format!(
                    "{coupling_title}: Coupling values for {benchmark} {len}-kernel chains, class {class}"
                ),
                columns: columns.clone(),
                rows,
            }
        })
        .collect();

    let mut rows = vec![PredictionRow {
        label: "Actual".to_string(),
        cells: actual
            .iter()
            .map(|&t| TableCell {
                time: t,
                rel_err_pct: None,
            })
            .collect(),
    }];
    let err = |pred: f64, act: f64| Some(100.0 * (pred - act).abs() / act);
    rows.push(PredictionRow {
        label: "Summation".to_string(),
        cells: summation
            .iter()
            .zip(&actual)
            .map(|(&t, &a)| TableCell {
                time: t,
                rel_err_pct: err(t, a),
            })
            .collect(),
    });
    for (li, &len) in chain_lens.iter().enumerate() {
        rows.push(PredictionRow {
            label: Predictor::coupling(len).label(),
            cells: coupled[li]
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        });
    }
    let predictions = PredictionTable {
        title: format!(
            "{prediction_title}: Comparison of execution times for {benchmark} with class {class}"
        ),
        columns,
        rows,
    };
    Ok(TablePair {
        couplings,
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_class_s_tables_have_paper_shape() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let pair = build_tables(
            &campaign,
            Benchmark::Bt,
            Class::S,
            &[4],
            &[2],
            "Table 2a",
            "Table 2b",
        )
        .unwrap();
        assert_eq!(pair.couplings.len(), 1);
        assert_eq!(
            pair.couplings[0].rows.len(),
            5,
            "five pairwise chains for BT"
        );
        assert_eq!(pair.couplings[0].rows[0].label, "{copy_faces, x_solve}");
        assert_eq!(
            pair.predictions.rows.len(),
            3,
            "actual + summation + coupling"
        );
        pair.couplings[0].check();
        pair.predictions.check();
    }

    #[test]
    fn coupling_beats_summation_for_bt_class_s() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let pair =
            build_tables(&campaign, Benchmark::Bt, Class::S, &[4], &[4], "Ta", "Tb").unwrap();
        let sum_err = pair
            .predictions
            .row("Summation")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        let cpl_err = pair
            .predictions
            .row("Coupling: 4 kernels")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        assert!(
            cpl_err < sum_err,
            "coupling ({cpl_err:.2}%) should beat summation ({sum_err:.2}%)"
        );
    }

    #[test]
    fn render_text_contains_both_tables() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let pair = build_tables(
            &campaign,
            Benchmark::Bt,
            Class::S,
            &[4],
            &[2],
            "Table 2a",
            "Table 2b",
        )
        .unwrap();
        let text = pair.render_text();
        assert!(text.contains("Table 2a"));
        assert!(text.contains("Table 2b"));
        assert!(text.contains("Summation"));
    }
}
