//! The experiment runner: machine + measurement protocol + generic
//! table builders.

use kc_core::report::TableCell;
use kc_core::{
    CouplingAnalysis, CouplingRow, CouplingTable, PredictionRow, PredictionTable, Predictor,
};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class, ExecConfig, NpbApp, NpbExecutor};
use rayon::prelude::*;

/// Owns the simulated machine and the measurement-protocol settings
/// used for every experiment.
#[derive(Clone, Debug)]
pub struct Runner {
    /// The machine all measurements run on.
    pub machine: MachineConfig,
    /// Measurement protocol (warm-up/timed iterations, mode).
    pub exec: ExecConfig,
    /// Timing repetitions per measurement (the paper uses 50 per
    /// kernel; 5 keeps the campaign quick with the same averaging
    /// effect under our noise model).
    pub reps: u32,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            machine: MachineConfig::ibm_sp_p2sc(),
            exec: ExecConfig::default(),
            reps: 5,
        }
    }
}

impl Runner {
    /// A runner with all timer noise disabled (for shape-focused tests
    /// and benches).
    pub fn noise_free() -> Self {
        let mut r = Self::default();
        r.machine = r.machine.without_noise();
        r
    }

    /// Build the executor for one benchmark instance.
    pub fn executor(&self, benchmark: Benchmark, class: Class, procs: usize) -> NpbExecutor {
        NpbExecutor::new(
            NpbApp::new(benchmark, class, procs),
            self.machine.clone(),
            self.exec,
        )
    }
}

/// A paper table pair: the coupling-value tables (one per chain
/// length) and the execution-time comparison table.
#[derive(Clone, Debug)]
pub struct TablePair {
    /// Coupling tables, one per requested chain length (paper's
    /// "a"-tables).
    pub couplings: Vec<CouplingTable>,
    /// Execution-time comparison (paper's "b"-tables).
    pub predictions: PredictionTable,
}

impl TablePair {
    /// Pretty-print both tables.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for c in &self.couplings {
            s.push_str(&c.to_string());
            s.push('\n');
        }
        s.push_str(&self.predictions.to_string());
        s
    }
}

/// Run the full measurement campaign for one benchmark × class over a
/// set of processor counts and chain lengths, producing the paper's
/// table pair.
pub fn build_tables(
    runner: &Runner,
    benchmark: Benchmark,
    class: Class,
    procs: &[usize],
    chain_lens: &[usize],
    coupling_title: &str,
    prediction_title: &str,
) -> TablePair {
    assert!(!procs.is_empty() && !chain_lens.is_empty());
    let columns: Vec<String> = procs.iter().map(|p| format!("{p} processors")).collect();

    // campaigns at different processor counts are independent (each
    // has its own executor, simulated cluster and seeded timer), so
    // run them in parallel; results are bit-identical to a sequential
    // sweep (tested in `tests/determinism.rs`)
    struct ProcResult {
        actual: f64,
        summation: f64,
        labels: Vec<Vec<String>>,
        couplings: Vec<Vec<f64>>,
        coupled: Vec<f64>,
    }
    let per_proc: Vec<ProcResult> = procs
        .par_iter()
        .map(|&p| {
            let mut exec = runner.executor(benchmark, class, p);
            let mut res = ProcResult {
                actual: 0.0,
                summation: 0.0,
                labels: Vec::new(),
                couplings: Vec::new(),
                coupled: Vec::new(),
            };
            for (li, &len) in chain_lens.iter().enumerate() {
                let analysis = CouplingAnalysis::collect(&mut exec, len, runner.reps)
                    .expect("chain length must fit the kernel set");
                res.labels.push(
                    analysis
                        .windows()
                        .iter()
                        .map(|w| w.label(analysis.kernel_set()))
                        .collect(),
                );
                res.couplings
                    .push(analysis.couplings().expect("positive kernel times"));
                if li == 0 {
                    res.actual = analysis.actual().mean();
                    res.summation = analysis.predict(Predictor::Summation).expect("summation");
                }
                res.coupled.push(
                    analysis
                        .predict(Predictor::coupling(len))
                        .expect("coupling"),
                );
            }
            res
        })
        .collect();

    let mut coupling_values: Vec<Vec<Vec<f64>>> = vec![Vec::new(); chain_lens.len()];
    let window_labels: Vec<Vec<String>> = per_proc[0].labels.clone();
    let mut actual: Vec<f64> = Vec::new();
    let mut summation: Vec<f64> = Vec::new();
    let mut coupled: Vec<Vec<f64>> = vec![Vec::new(); chain_lens.len()];
    for res in per_proc {
        actual.push(res.actual);
        summation.push(res.summation);
        for (li, c) in res.couplings.into_iter().enumerate() {
            coupling_values[li].push(c);
        }
        for (li, c) in res.coupled.into_iter().enumerate() {
            coupled[li].push(c);
        }
    }

    let couplings = chain_lens
        .iter()
        .enumerate()
        .map(|(li, &len)| {
            let rows = window_labels[li]
                .iter()
                .enumerate()
                .map(|(w, label)| CouplingRow {
                    label: label.clone(),
                    values: coupling_values[li].iter().map(|per_proc| per_proc[w]).collect(),
                })
                .collect();
            CouplingTable {
                title: format!(
                    "{coupling_title}: Coupling values for {benchmark} {len}-kernel chains, class {class}"
                ),
                columns: columns.clone(),
                rows,
            }
        })
        .collect();

    let mut rows = vec![PredictionRow {
        label: "Actual".to_string(),
        cells: actual
            .iter()
            .map(|&t| TableCell {
                time: t,
                rel_err_pct: None,
            })
            .collect(),
    }];
    let err = |pred: f64, act: f64| Some(100.0 * (pred - act).abs() / act);
    rows.push(PredictionRow {
        label: "Summation".to_string(),
        cells: summation
            .iter()
            .zip(&actual)
            .map(|(&t, &a)| TableCell {
                time: t,
                rel_err_pct: err(t, a),
            })
            .collect(),
    });
    for (li, &len) in chain_lens.iter().enumerate() {
        rows.push(PredictionRow {
            label: Predictor::coupling(len).label(),
            cells: coupled[li]
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        });
    }
    let predictions = PredictionTable {
        title: format!(
            "{prediction_title}: Comparison of execution times for {benchmark} with class {class}"
        ),
        columns,
        rows,
    };
    TablePair {
        couplings,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_class_s_tables_have_paper_shape() {
        let runner = Runner::noise_free();
        let pair = build_tables(
            &runner,
            Benchmark::Bt,
            Class::S,
            &[4],
            &[2],
            "Table 2a",
            "Table 2b",
        );
        assert_eq!(pair.couplings.len(), 1);
        assert_eq!(
            pair.couplings[0].rows.len(),
            5,
            "five pairwise chains for BT"
        );
        assert_eq!(pair.couplings[0].rows[0].label, "{copy_faces, x_solve}");
        assert_eq!(
            pair.predictions.rows.len(),
            3,
            "actual + summation + coupling"
        );
        pair.couplings[0].check();
        pair.predictions.check();
    }

    #[test]
    fn coupling_beats_summation_for_bt_class_s() {
        let runner = Runner::noise_free();
        let pair = build_tables(&runner, Benchmark::Bt, Class::S, &[4], &[4], "Ta", "Tb");
        let sum_err = pair
            .predictions
            .row("Summation")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        let cpl_err = pair
            .predictions
            .row("Coupling: 4 kernels")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        assert!(
            cpl_err < sum_err,
            "coupling ({cpl_err:.2}%) should beat summation ({sum_err:.2}%)"
        );
    }

    #[test]
    fn render_text_contains_both_tables() {
        let runner = Runner::noise_free();
        let pair = build_tables(
            &runner,
            Benchmark::Bt,
            Class::S,
            &[4],
            &[2],
            "Table 2a",
            "Table 2b",
        );
        let text = pair.render_text();
        assert!(text.contains("Table 2a"));
        assert!(text.contains("Table 2b"));
        assert!(text.contains("Summation"));
    }
}
