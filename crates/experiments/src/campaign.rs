//! The campaign engine: enumerate → dedupe → execute in parallel →
//! assemble from the shared cache.
//!
//! The old runner measured each table's cells inline, so two tables
//! needing the same cell (every chain-length study shares its isolated
//! kernels, overhead and ground truth; the reuse and transition
//! studies revisit whole configurations) paid for it twice.  The
//! campaign engine splits measurement from assembly:
//!
//! 1. every requested analysis ([`AnalysisSpec`]) is *enumerated* into
//!    its measurement cells (canonical `kc_core::MeasurementKey`s);
//! 2. the union is *deduplicated* — cell keys carry no chain length,
//!    so the sharing the `kc-prophesy` planner reasons about falls out
//!    of key equality;
//! 3. unique, not-yet-cached cells are submitted to the
//!    campaign-global [`crate::CellScheduler`]: one
//!    cost-ordered queue (longest first) drained by a fixed pool of
//!    `jobs` workers, so total executor concurrency is bounded no
//!    matter how many experiments prefetch concurrently.  Each cell
//!    runs on its own freshly built simulated cluster with a per-cell
//!    noise seed, so results are bit-identical regardless of `jobs`
//!    or schedule;
//! 4. analyses are *assembled* from the shared
//!    `kc_core::CachedProvider` — by construction each unique cell was
//!    measured exactly once.
//!
//! [`CampaignStats`] reports the arithmetic (requested vs unique vs
//! cached vs backend-served vs executed, and the naive run count a
//! table-at-a-time campaign would have paid) plus wall-clock per
//! phase.  Counts are derived from per-cell dispositions, so cells
//! served by the persistent backend or executed on behalf of a
//! concurrent prefetch are never misreported as this prefetch's
//! executions: across concurrent prefetches over one campaign, the
//! `cells_executed` sum equals `CacheStats::executed` exactly.

use crate::cost::{CostModel, StaticCost};
use crate::runner::Runner;
use crate::scheduler::CellScheduler;
use kc_core::telemetry::phases;
use kc_core::{
    analysis_cells, assemble_analysis, summarize, write_jsonl, CacheStats, CachedProvider,
    CellContext, CouplingAnalysis, FanoutSink, KcResult, KernelSet, MeasurementBackend,
    MeasurementKey, MeasurementProvider, MemorySink, RunSummary, TelemetryEvent, TelemetrySink,
};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class, NpbApp, NpbProvider};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One requested coupling analysis: benchmark × class × processor
/// count × chain length, optionally at the fine decomposition or on a
/// machine other than the campaign default.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisSpec {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Which problem class.
    pub class: Class,
    /// How many processors.
    pub procs: usize,
    /// Window chain length `L`.
    pub chain_len: usize,
    /// Use the loop-level (fine) BT decomposition.
    pub fine: bool,
    /// Run on this machine instead of the campaign's default.
    pub machine: Option<MachineConfig>,
}

impl AnalysisSpec {
    /// A spec on the campaign's default machine, coarse decomposition.
    pub fn new(benchmark: Benchmark, class: Class, procs: usize, chain_len: usize) -> Self {
        Self {
            benchmark,
            class,
            procs,
            chain_len,
            fine: false,
            machine: None,
        }
    }

    /// Switch to the loop-level BT decomposition.
    pub fn fine(mut self) -> Self {
        self.fine = true;
        self
    }

    /// Run on `machine` instead of the campaign default.
    pub fn on(mut self, machine: MachineConfig) -> Self {
        self.machine = Some(machine);
        self
    }

    /// The loop kernel set this spec analyses.
    pub fn kernel_set(&self) -> KernelSet {
        if self.fine {
            kc_npb::bt::fine_spec().kernel_set()
        } else {
            self.benchmark.spec().kernel_set()
        }
    }
}

/// The measurement arithmetic of one [`Campaign::prefetch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CampaignStats {
    /// Cells the requested analyses need, counted with multiplicity.
    pub cells_requested: usize,
    /// Distinct cells after deduplication.
    pub cells_unique: usize,
    /// Unique cells served from the in-memory cache: already cached
    /// before this prefetch, or brought into the cache by a
    /// concurrent prefetch of the same campaign while this one
    /// waited.
    pub cache_hits: usize,
    /// Unique cells served by the persistent backend store (loaded,
    /// not executed).
    pub backend_hits: usize,
    /// Cells this prefetch actually executed on a fresh cluster.
    /// Derived from per-cell dispositions, never from the to-do list
    /// length: across concurrent prefetches the sum matches
    /// `CacheStats::executed` exactly.
    pub cells_executed: usize,
    /// Cluster runs a table-at-a-time campaign would have performed
    /// (the `kc_prophesy::campaign_runs` accounting, one fresh
    /// campaign per analysis).
    pub naive_runs: usize,
    /// Wall-clock seconds spent enumerating and deduplicating.
    pub enumerate_secs: f64,
    /// Wall-clock seconds spent executing cells.
    pub execute_secs: f64,
}

impl CampaignStats {
    /// Merge another prefetch's counters into this one (wall-clock
    /// adds; the cell arithmetic sums phase by phase).
    pub fn absorb(&mut self, other: &CampaignStats) {
        self.cells_requested += other.cells_requested;
        self.cells_unique += other.cells_unique;
        self.cache_hits += other.cache_hits;
        self.backend_hits += other.backend_hits;
        self.cells_executed += other.cells_executed;
        self.naive_runs += other.naive_runs;
        self.enumerate_secs += other.enumerate_secs;
        self.execute_secs += other.execute_secs;
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells requested -> {} unique ({} cached, {} backend, {} executed; \
             naive plan: {} runs) [enumerate {:.2}s, execute {:.2}s]",
            self.cells_requested,
            self.cells_unique,
            self.cache_hits,
            self.backend_hits,
            self.cells_executed,
            self.naive_runs,
            self.enumerate_secs,
            self.execute_secs,
        )
    }
}

/// Options for [`Campaign::summary`]: how many slow cells to keep and
/// whether to append the aggregates to the event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryOpts {
    /// Slowest executed cells to keep, longest first.
    pub top_n: usize,
    /// Also append the computed `RunSummary` to the event stream, so
    /// attached sinks — and the trace — end with a summary line.
    pub record: bool,
}

impl Default for SummaryOpts {
    fn default() -> Self {
        Self {
            top_n: 10,
            record: false,
        }
    }
}

impl SummaryOpts {
    /// Keep the `top_n` slowest cells (not recorded to the stream).
    pub fn top(top_n: usize) -> Self {
        Self {
            top_n,
            ..Self::default()
        }
    }

    /// Also append the summary to the event stream.
    pub fn recorded(mut self) -> Self {
        self.record = true;
        self
    }
}

/// Configures and builds a [`Campaign`] — the one construction path
/// (the old `new` / `with_backend` / `noise_free` constructor zoo is
/// deprecated shims over this).
///
/// ```
/// use kc_experiments::{Campaign, Runner};
///
/// let campaign = Campaign::builder(Runner::noise_free()).reps(2).build();
/// assert_eq!(campaign.reps(), 2);
/// ```
pub struct CampaignBuilder {
    runner: Runner,
    backend: Option<Box<dyn MeasurementBackend>>,
    sinks: Vec<Arc<dyn TelemetrySink>>,
    cost_model: Arc<dyn CostModel>,
    jobs: Option<usize>,
}

impl CampaignBuilder {
    fn new(runner: Runner) -> Self {
        Self {
            runner,
            backend: None,
            sinks: Vec::new(),
            cost_model: Arc::new(StaticCost),
            jobs: None,
        }
    }

    /// Back the cache with persistent cell storage (e.g.
    /// `kc_prophesy::CellStore`): misses consult the backend before
    /// executing, executions are written back.
    pub fn backend(mut self, backend: Box<dyn MeasurementBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Timing repetitions per chain cell.
    pub fn reps(mut self, reps: u32) -> Self {
        self.runner.reps = reps;
        self
    }

    /// Disable the machine's timer noise (for shape-focused tests and
    /// benches).
    pub fn noise_free(mut self) -> Self {
        self.runner.machine = self.runner.machine.without_noise();
        self
    }

    /// Attach an external telemetry sink from the first event on.
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Schedule prefetch execution by this cost model instead of the
    /// provider's static estimate (see [`crate::cost`]).
    pub fn cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.cost_model = model;
        self
    }

    /// Size of the campaign-global scheduler's worker pool (clamped
    /// to at least 1).  Defaults to the machine's available
    /// parallelism.  Tables are bit-identical under any value; `jobs`
    /// only bounds how many cells execute concurrently.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Build the campaign.
    pub fn build(self) -> Campaign {
        let telemetry = Arc::new(MemorySink::new());
        let fanout = Arc::new(FanoutSink::new());
        fanout.add(telemetry.clone());
        for sink in self.sinks {
            fanout.add(sink);
        }
        let inner = NpbProvider::new().with_telemetry(fanout.clone());
        let provider = Arc::new(
            match self.backend {
                Some(backend) => CachedProvider::with_backend(inner, backend),
                None => CachedProvider::new(inner),
            }
            .with_telemetry(fanout.clone()),
        );
        let jobs = self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let execute = {
            let provider = provider.clone();
            move |key: &MeasurementKey| provider.measure_classified(key).map(|(_, d)| d)
        };
        Campaign {
            runner: self.runner,
            scheduler: CellScheduler::new(jobs, Box::new(execute)),
            provider,
            telemetry,
            fanout,
            cost_model: self.cost_model,
        }
    }
}

/// The campaign engine: a [`Runner`] (machine + protocol + reps)
/// driving a cached [`NpbProvider`].
///
/// All experiment modules take `&Campaign`; analyses assembled through
/// one campaign share every measurement cell.
pub struct Campaign {
    runner: Runner,
    provider: Arc<CachedProvider<NpbProvider>>,
    /// The campaign-global bounded executor every prefetch drains
    /// through (see [`crate::scheduler`]).
    scheduler: CellScheduler,
    /// Always-on in-memory collector of this campaign's events.
    telemetry: Arc<MemorySink>,
    /// Broadcast point every emitter records into; external sinks
    /// (e.g. a `JsonLinesSink`) attach here at any time.
    fanout: Arc<FanoutSink>,
    /// Scheduling cost oracle for [`Campaign::prefetch`].
    cost_model: Arc<dyn CostModel>,
}

impl Default for Campaign {
    fn default() -> Self {
        Self::builder(Runner::default()).build()
    }
}

impl Campaign {
    /// Start configuring a campaign over `runner`'s machine and
    /// protocol.
    pub fn builder(runner: Runner) -> CampaignBuilder {
        CampaignBuilder::new(runner)
    }

    /// The runner (machine, protocol, reps) this campaign measures
    /// under.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Timing repetitions per chain cell.
    pub fn reps(&self) -> u32 {
        self.runner.reps
    }

    /// Worker-pool size of the campaign-global cell scheduler.
    pub fn jobs(&self) -> usize {
        self.scheduler.jobs()
    }

    /// Traffic counters of the underlying measurement cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.provider.stats()
    }

    /// Attach an external telemetry sink (e.g. a
    /// `kc_core::JsonLinesSink`); it receives every event emitted from
    /// now on.
    pub fn attach_sink(&self, sink: Arc<dyn TelemetrySink>) {
        self.fanout.add(sink);
    }

    /// The campaign's own fanout as a sink handle, so components
    /// *outside* the campaign (e.g. the persistent store's read-error
    /// reporting) can emit into the same event stream the campaign
    /// aggregates and traces.
    pub fn sink(&self) -> Arc<dyn TelemetrySink> {
        self.fanout.clone()
    }

    /// This campaign's event stream so far, in canonical order (see
    /// `kc_core::canonicalize`).
    pub fn telemetry_events(&self) -> Vec<TelemetryEvent> {
        self.telemetry.canonical_events()
    }

    /// Drain every attached sink (see `TelemetrySink::flush`).  The
    /// explicit lifecycle point for buffered sinks: call after the
    /// end-of-run summary (or on SIGTERM) so trace files on disk are
    /// complete before the process exits.
    pub fn flush_sinks(&self) -> std::io::Result<()> {
        self.fanout.flush()
    }

    /// End-of-run aggregates over the events so far.  With
    /// [`SummaryOpts::recorded`], the computed `RunSummary` is also
    /// appended to the event stream (so attached sinks — and the
    /// trace — end with a summary line).  This is the one summary
    /// type: the `--metrics` printer and the run-history sidecar both
    /// serialize exactly what this returns.
    pub fn summary(&self, opts: SummaryOpts) -> RunSummary {
        let s = summarize(&self.telemetry.events(), opts.top_n);
        if opts.record {
            self.fanout.record(TelemetryEvent::RunSummary(s.clone()));
        }
        s
    }

    /// The scheduling cost of one cell: the cost model's measured
    /// answer if it has one, otherwise the provider's static estimate.
    pub fn cell_cost(&self, key: &MeasurementKey) -> f64 {
        self.cost_model
            .measured_cost(key)
            .unwrap_or_else(|| self.provider.cost_estimate(key))
    }

    /// The active cost model's name (`static`, `measured`, ...).
    pub fn cost_model_name(&self) -> &'static str {
        self.cost_model.name()
    }

    /// Write the canonical event stream as a JSON-lines trace.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        write_jsonl(path, &self.telemetry_events())
    }

    /// Run `f` bracketed by phase started/finished telemetry events.
    fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        self.fanout.record(TelemetryEvent::PhaseStarted {
            phase: name.to_string(),
        });
        let started = Instant::now();
        let out = f();
        self.fanout.record(TelemetryEvent::PhaseFinished {
            phase: name.to_string(),
            duration_secs: started.elapsed().as_secs_f64(),
        });
        out
    }

    /// The cell context (machine fingerprint + protocol digest) of one
    /// spec, registering its machine with the provider.
    fn context(&self, spec: &AnalysisSpec) -> CellContext {
        let machine = spec
            .machine
            .clone()
            .unwrap_or_else(|| self.runner.machine.clone());
        let app = NpbApp::new(spec.benchmark, spec.class, spec.procs);
        self.provider
            .inner()
            .context(&app, spec.fine, &machine, self.runner.exec)
    }

    /// The measurement cells one spec needs.
    pub fn cells(&self, spec: &AnalysisSpec) -> KcResult<Vec<MeasurementKey>> {
        let ctx = self.context(spec);
        let set = spec.kernel_set();
        Ok(analysis_cells(
            &ctx,
            &set,
            spec.chain_len,
            self.runner.reps,
        )?)
    }

    /// Enumerate, dedupe and execute every cell the given analyses
    /// need.  Unique uncached cells are submitted to the
    /// campaign-global bounded scheduler (most expensive first, at
    /// most `jobs` executing at once); results land in the shared
    /// cache, so subsequent [`Campaign::analysis`] calls for these
    /// specs measure nothing.  The call blocks only on *these* specs'
    /// cells, so concurrent prefetches overlap freely.
    pub fn prefetch(&self, specs: &[AnalysisSpec]) -> KcResult<CampaignStats> {
        self.prefetch_with_deadline(specs, None)
    }

    /// [`Campaign::prefetch`] carrying a serving deadline: the
    /// uncached cells are submitted through
    /// [`CellScheduler::drain_with_deadline`], so an urgent serve
    /// batch's cells jump every deadline-free cell already queued by
    /// table campaigns.  `None` is exactly [`Campaign::prefetch`].
    pub fn prefetch_with_deadline(
        &self,
        specs: &[AnalysisSpec],
        deadline_ms: Option<f64>,
    ) -> KcResult<CampaignStats> {
        let enumerate_started = Instant::now();
        let mut stats = CampaignStats::default();
        let mut unique: BTreeSet<MeasurementKey> = BTreeSet::new();
        self.phase(phases::ENUMERATE, || -> KcResult<()> {
            for spec in specs {
                let cells = self.cells(spec)?;
                stats.cells_requested += cells.len();
                stats.naive_runs += kc_prophesy::campaign_runs(spec.kernel_set().len(), 1);
                unique.extend(cells);
            }
            Ok(())
        })?;
        let todo = self.phase(phases::DEDUPE, || {
            stats.cells_unique = unique.len();
            // the scheduler orders by cost internally (longest first,
            // `total_cmp`, key-order tie-break); here we only pair
            // each uncached cell with its cost
            let todo: Vec<(MeasurementKey, f64)> = unique
                .iter()
                .filter(|k| !self.provider.contains(k))
                .map(|k| (k.clone(), self.cell_cost(k)))
                .collect();
            stats.cache_hits = stats.cells_unique - todo.len();
            todo
        });
        stats.enumerate_secs = enumerate_started.elapsed().as_secs_f64();

        let execute_started = Instant::now();
        let drained = self.phase(phases::EXECUTE, || {
            let drained = self.scheduler.drain_with_deadline(todo, deadline_ms)?;
            // one drain event per prefetch, emitted after every cell
            // event of this drain has reached the sinks — the stream
            // stays canonical under any jobs value (the fields are
            // schedule-dependent and redact away)
            self.fanout.record(TelemetryEvent::SchedulerDrain {
                enqueued: drained.enqueued as u64,
                shared: drained.shared as u64,
                queue_depth: drained.queue_depth as u64,
                jobs: self.scheduler.jobs() as u64,
            });
            Ok::<_, kc_core::KcError>(drained)
        })?;
        // attribution: every unique cell is enqueued by exactly one
        // drain, which owns its disposition; cells another drain got
        // to first count as cache hits here (shared slots, plus
        // in-cache `Hit`s for cells a concurrent drain completed
        // between our dedupe scan and the worker's pop)
        stats.cells_executed = drained.executed;
        stats.backend_hits = drained.backend_hits;
        stats.cache_hits += drained.shared + drained.hits;
        stats.execute_secs = execute_started.elapsed().as_secs_f64();
        Ok(stats)
    }

    /// The coupling analysis for one spec, assembled from the cache
    /// (measuring — in parallel — whatever is not yet cached).
    pub fn analysis(&self, spec: &AnalysisSpec) -> KcResult<CouplingAnalysis> {
        self.prefetch(std::slice::from_ref(spec))?;
        let ctx = self.context(spec);
        let set = spec.kernel_set();
        let iters = spec.benchmark.problem(spec.class).iterations;
        self.phase(phases::ASSEMBLE, || {
            assemble_analysis(
                self.provider.as_ref(),
                &ctx,
                &set,
                spec.chain_len,
                iters,
                self.runner.reps,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_dedupes_across_chain_lengths() {
        let campaign = Campaign::builder(Runner::noise_free()).build();
        // BT has 5 loop kernels: length-2 and length-3 studies share
        // the 5 isolated cells, the overhead and the ground truth
        let specs = [
            AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2),
            AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 3),
        ];
        let stats = campaign.prefetch(&specs).unwrap();
        assert_eq!(stats.cells_requested, 2 * (5 + 5 + 2));
        assert_eq!(stats.cells_unique, 5 + 5 + 5 + 2, "shared cells dedupe");
        assert_eq!(stats.cells_executed, stats.cells_unique);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.backend_hits, 0, "no persistent backend attached");
        assert_eq!(stats.naive_runs, 2 * (5 + 5 + 2));

        // a second prefetch finds everything cached
        let again = campaign.prefetch(&specs).unwrap();
        assert_eq!(again.cells_executed, 0);
        assert_eq!(again.cache_hits, again.cells_unique);
        assert_eq!(again.backend_hits, 0);
    }

    /// Regression: a cost model that yields NaN used to panic the
    /// prefetch sort (`partial_cmp(..).unwrap()`); under `total_cmp`
    /// ordering it merely skews the schedule, and the tables are
    /// schedule-independent anyway.
    #[test]
    fn poisoned_nan_cost_model_does_not_panic_and_tables_match() {
        struct Poisoned;
        impl CostModel for Poisoned {
            fn measured_cost(&self, _key: &MeasurementKey) -> Option<f64> {
                Some(f64::NAN)
            }
            fn name(&self) -> &'static str {
                "poisoned"
            }
        }

        let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
        let poisoned = Campaign::builder(Runner::noise_free())
            .cost_model(Arc::new(Poisoned))
            .jobs(2)
            .build();
        let healthy = Campaign::builder(Runner::noise_free()).jobs(2).build();
        let a = poisoned.analysis(&spec).unwrap();
        let b = healthy.analysis(&spec).unwrap();
        assert_eq!(a.couplings().unwrap(), b.couplings().unwrap());
        assert_eq!(a.actual(), b.actual());
    }

    /// After a warm persistent store fills the cache, a fresh
    /// campaign's prefetch executes nothing — and reports the
    /// backend-served cells as backend hits, not executions
    /// (the ISSUE 4 accounting fix).
    #[test]
    fn warm_store_prefetch_reports_backend_hits_not_executions() {
        use kc_prophesy::CellStore;

        let specs = [AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2)];
        let store = Arc::new(CellStore::new());

        let cold = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        let first = cold.prefetch(&specs).unwrap();
        assert_eq!(first.cells_executed, first.cells_unique);
        assert_eq!(first.backend_hits, 0, "empty store serves nothing");

        let warm = Campaign::builder(Runner::noise_free())
            .backend(Box::new(Arc::clone(&store)))
            .build();
        let again = warm.prefetch(&specs).unwrap();
        assert_eq!(again.cells_executed, 0, "warm store must execute nothing");
        assert_eq!(
            again.backend_hits, again.cells_unique,
            "store-served cells are backend hits, not executions"
        );
        assert_eq!(again.cache_hits, 0);
        assert_eq!(warm.cache_stats().executed, 0);
    }

    #[test]
    fn analysis_matches_the_legacy_collect_path() {
        use kc_core::{ChainExecutor, CouplingAnalysis};

        let campaign = Campaign::builder(Runner::noise_free()).build();
        let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
        let via_campaign = campaign.analysis(&spec).unwrap();

        let runner = Runner::noise_free();
        let mut exec = runner.executor(Benchmark::Bt, Class::S, 4);
        let direct = CouplingAnalysis::collect(&mut exec, 2, runner.reps).unwrap();

        assert_eq!(
            via_campaign.couplings().unwrap(),
            direct.couplings().unwrap()
        );
        assert_eq!(via_campaign.actual(), direct.actual());
        assert_eq!(
            via_campaign.loop_iterations(),
            exec.loop_iterations(),
            "campaign must use the benchmark's real iteration count"
        );
    }

    #[test]
    fn machine_overrides_are_distinct_cells() {
        let campaign = Campaign::builder(Runner::noise_free()).build();
        let base = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2);
        let other = base
            .clone()
            .on(MachineConfig::ethernet_cluster().without_noise());
        let stats = campaign.prefetch(&[base, other]).unwrap();
        assert_eq!(
            stats.cells_unique, stats.cells_requested,
            "different machines must share nothing"
        );
    }

    #[test]
    fn bad_chain_length_is_an_error() {
        let campaign = Campaign::builder(Runner::noise_free()).build();
        let spec = AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 99);
        assert!(campaign.analysis(&spec).is_err());
        assert!(campaign.cells(&spec).is_err());
    }
}
