//! Ablation studies over the design choices DESIGN.md calls out: how
//! the headline conclusions respond to chain length, cache capacity,
//! network contention and timer noise.
//!
//! Sweeps that vary the machine (cache capacity, contention, noise)
//! express each variant as an [`AnalysisSpec`] with a machine
//! override — every variant is a distinct fingerprint, hence a
//! distinct set of cells in the campaign cache, measured alongside
//! everything else in the shared parallel prefetch.

use crate::campaign::{AnalysisSpec, Campaign};
use crate::transitions::mean_coupling;
use kc_core::{CouplingRow, CouplingTable, KcResult, Predictor};
use kc_machine::MachineConfig;
use kc_npb::{Benchmark, Class};

/// The analyses [`chain_length_sweep`] needs.
pub fn chain_length_requests(
    benchmark: Benchmark,
    class: Class,
    procs: usize,
) -> Vec<AnalysisSpec> {
    let n_kernels = benchmark.spec().loop_kernels.len();
    (1..=n_kernels)
        .map(|len| AnalysisSpec::new(benchmark, class, procs, len))
        .collect()
}

/// Chain-length sweep (the paper's open question: "as to which group
/// of equations will lead to the best prediction"): relative error of
/// the coupling predictor for every admissible chain length, plus the
/// summation baseline as length 0.
pub fn chain_length_sweep(
    campaign: &Campaign,
    benchmark: Benchmark,
    class: Class,
    procs: usize,
) -> KcResult<CouplingTable> {
    let requests = chain_length_requests(benchmark, class, procs);
    campaign.prefetch(&requests)?;
    let mut rows = Vec::new();
    // summation baseline (coefficients all 1)
    let base = campaign.analysis(&requests[0])?;
    let actual = base.actual().mean();
    let err = |pred: f64| 100.0 * (pred - actual).abs() / actual;
    rows.push(CouplingRow {
        label: "summation".to_string(),
        values: vec![err(base.predict(Predictor::Summation)?)],
    });
    for spec in &requests {
        let analysis = campaign.analysis(spec)?;
        let pred = analysis.predict(Predictor::coupling(spec.chain_len))?;
        rows.push(CouplingRow {
            label: format!("coupling, {len}-kernel chains", len = spec.chain_len),
            values: vec![err(pred)],
        });
    }
    Ok(CouplingTable {
        title: format!(
            "Ablation: prediction error vs chain length — {benchmark} class {class}, {procs} processors"
        ),
        columns: vec!["rel. error %".to_string()],
        rows,
    })
}

/// The analyses [`cache_capacity_sweep`] needs.
pub fn cache_capacity_requests(base: &MachineConfig, l2_capacities: &[usize]) -> Vec<AnalysisSpec> {
    l2_capacities
        .iter()
        .map(|&cap| {
            let mut m = base.clone();
            m.caches[1].capacity = cap;
            AnalysisSpec::new(Benchmark::Bt, Class::A, 4, 4).on(m)
        })
        .collect()
}

/// Cache-capacity sweep: the mean coupling value of BT class A as the
/// second-level cache grows, demonstrating that the coupling regime is
/// a function of the memory subsystem (paper §4.1.4).
pub fn cache_capacity_sweep(
    campaign: &Campaign,
    l2_capacities: &[usize],
) -> KcResult<CouplingTable> {
    let requests = cache_capacity_requests(&campaign.runner().machine, l2_capacities);
    campaign.prefetch(&requests)?;
    let mut values = Vec::new();
    for spec in &requests {
        values.push(mean_coupling(campaign, spec)?);
    }
    Ok(CouplingTable {
        title: "Ablation: mean BT class-A 4-chain coupling vs L2 capacity".to_string(),
        columns: l2_capacities
            .iter()
            .map(|c| format!("{} MiB", c / (1024 * 1024)))
            .collect(),
        rows: vec![CouplingRow {
            label: "mean coupling".to_string(),
            values,
        }],
    })
}

/// The analyses [`contention_sweep`] needs.
pub fn contention_requests(base: &MachineConfig, contentions: &[f64]) -> Vec<AnalysisSpec> {
    contentions
        .iter()
        .map(|&c| {
            let mut m = base.clone();
            m.net.contention = c;
            AnalysisSpec::new(Benchmark::Lu, Class::W, 8, 3).on(m)
        })
        .collect()
}

/// Network-contention sweep: LU's sensitivity to small-message
/// performance (paper §4.3) — mean 3-chain coupling value and
/// predictor error as the switch-contention coefficient grows.
pub fn contention_sweep(campaign: &Campaign, contentions: &[f64]) -> KcResult<CouplingTable> {
    let requests = contention_requests(&campaign.runner().machine, contentions);
    campaign.prefetch(&requests)?;
    let mut mean_c = Vec::new();
    let mut sum_err = Vec::new();
    let mut cpl_err = Vec::new();
    for spec in &requests {
        let analysis = campaign.analysis(spec)?;
        let cs = analysis.couplings()?;
        mean_c.push(cs.iter().sum::<f64>() / cs.len() as f64);
        let actual = analysis.actual().mean();
        let err = |p: f64| 100.0 * (p - actual).abs() / actual;
        sum_err.push(err(analysis.predict(Predictor::Summation)?));
        cpl_err.push(err(analysis.predict(Predictor::coupling(3))?));
    }
    Ok(CouplingTable {
        title: "Ablation: LU class W (8 procs) vs network contention".to_string(),
        columns: contentions.iter().map(|c| format!("c={c}")).collect(),
        rows: vec![
            CouplingRow {
                label: "mean 3-chain coupling".to_string(),
                values: mean_c,
            },
            CouplingRow {
                label: "summation rel. err %".to_string(),
                values: sum_err,
            },
            CouplingRow {
                label: "coupling rel. err %".to_string(),
                values: cpl_err,
            },
        ],
    })
}

/// The analyses [`noise_sweep`] needs.
pub fn noise_requests(base: &MachineConfig, floor_multipliers: &[f64]) -> Vec<AnalysisSpec> {
    let base_floor = MachineConfig::ibm_sp_p2sc().timer.noise_floor;
    floor_multipliers
        .iter()
        .map(|&mult| {
            let mut m = base.clone();
            m.timer.noise_floor = base_floor * mult;
            m.timer.noise_frac = 0.004;
            AnalysisSpec::new(Benchmark::Bt, Class::S, 4, 2).on(m)
        })
        .collect()
}

/// Timer-noise sweep: the class-S effect (paper §4.1.1) — prediction
/// errors of both methods as the measurement-noise floor grows.
pub fn noise_sweep(campaign: &Campaign, floor_multipliers: &[f64]) -> KcResult<CouplingTable> {
    let requests = noise_requests(&campaign.runner().machine, floor_multipliers);
    campaign.prefetch(&requests)?;
    let mut sum_err = Vec::new();
    let mut cpl_err = Vec::new();
    for spec in &requests {
        let analysis = campaign.analysis(spec)?;
        let actual = analysis.actual().mean();
        let err = |p: f64| 100.0 * (p - actual).abs() / actual;
        sum_err.push(err(analysis.predict(Predictor::Summation)?));
        cpl_err.push(err(analysis.predict(Predictor::coupling(2))?));
    }
    Ok(CouplingTable {
        title: "Ablation: BT class S (4 procs) prediction error vs timer-noise floor".to_string(),
        columns: floor_multipliers
            .iter()
            .map(|m| format!("{m}x floor"))
            .collect(),
        rows: vec![
            CouplingRow {
                label: "summation rel. err %".to_string(),
                values: sum_err,
            },
            CouplingRow {
                label: "coupling rel. err %".to_string(),
                values: cpl_err,
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_length_sweep_runs_for_lu() {
        let t = chain_length_sweep(
            &Campaign::builder(crate::Runner::noise_free()).build(),
            Benchmark::Lu,
            Class::S,
            4,
        )
        .unwrap();
        // summation + 4 chain lengths
        assert_eq!(t.rows.len(), 5);
        t.check();
        // full-length chains reproduce the bracketed loop; the
        // residual vs the free-running application is the bracket
        // cost, a few percent at the tiny class S
        let full = t.rows.last().unwrap().values[0];
        let summation = t.rows[0].values[0];
        assert!(
            full < 5.0,
            "full-chain prediction error should be small, got {full}%"
        );
        assert!(
            full < summation / 2.0,
            "full-chain must far outperform summation"
        );
    }
}
