//! Ablation studies over the design choices DESIGN.md calls out: how
//! the headline conclusions respond to chain length, cache capacity,
//! network contention and timer noise.

use crate::runner::Runner;
use kc_core::{CouplingAnalysis, CouplingRow, CouplingTable, Predictor};
use kc_npb::{Benchmark, Class};

/// Chain-length sweep (the paper's open question: "as to which group
/// of equations will lead to the best prediction"): relative error of
/// the coupling predictor for every admissible chain length, plus the
/// summation baseline as length 0.
pub fn chain_length_sweep(
    runner: &Runner,
    benchmark: Benchmark,
    class: Class,
    procs: usize,
) -> CouplingTable {
    let n_kernels = benchmark.spec().loop_kernels.len();
    let mut rows = Vec::new();
    let mut exec = runner.executor(benchmark, class, procs);
    // summation baseline (coefficients all 1)
    let base = CouplingAnalysis::collect(&mut exec, 1, runner.reps).unwrap();
    let actual = base.actual().mean();
    let err = |pred: f64| 100.0 * (pred - actual).abs() / actual;
    rows.push(CouplingRow {
        label: "summation".to_string(),
        values: vec![err(base.predict(Predictor::Summation).unwrap())],
    });
    for len in 1..=n_kernels {
        let analysis = CouplingAnalysis::collect(&mut exec, len, runner.reps).unwrap();
        let pred = analysis.predict(Predictor::coupling(len)).unwrap();
        rows.push(CouplingRow {
            label: format!("coupling, {len}-kernel chains"),
            values: vec![err(pred)],
        });
    }
    CouplingTable {
        title: format!(
            "Ablation: prediction error vs chain length — {benchmark} class {class}, {procs} processors"
        ),
        columns: vec!["rel. error %".to_string()],
        rows,
    }
}

/// Cache-capacity sweep: the mean coupling value of BT class A as the
/// second-level cache grows, demonstrating that the coupling regime is
/// a function of the memory subsystem (paper §4.1.4).
pub fn cache_capacity_sweep(runner: &Runner, l2_capacities: &[usize]) -> CouplingTable {
    let mut values = Vec::new();
    for &cap in l2_capacities {
        let mut r = runner.clone();
        r.machine.caches[1].capacity = cap;
        values.push(crate::transitions::mean_coupling(
            &r,
            Benchmark::Bt,
            Class::A,
            4,
            4,
        ));
    }
    CouplingTable {
        title: "Ablation: mean BT class-A 4-chain coupling vs L2 capacity".to_string(),
        columns: l2_capacities
            .iter()
            .map(|c| format!("{} MiB", c / (1024 * 1024)))
            .collect(),
        rows: vec![CouplingRow {
            label: "mean coupling".to_string(),
            values,
        }],
    }
}

/// Network-contention sweep: LU's sensitivity to small-message
/// performance (paper §4.3) — mean 3-chain coupling value and
/// predictor error as the switch-contention coefficient grows.
pub fn contention_sweep(runner: &Runner, contentions: &[f64]) -> CouplingTable {
    let mut mean_c = Vec::new();
    let mut sum_err = Vec::new();
    let mut cpl_err = Vec::new();
    for &c in contentions {
        let mut r = runner.clone();
        r.machine.net.contention = c;
        let mut exec = r.executor(Benchmark::Lu, Class::W, 8);
        let analysis = CouplingAnalysis::collect(&mut exec, 3, r.reps).unwrap();
        let cs = analysis.couplings().unwrap();
        mean_c.push(cs.iter().sum::<f64>() / cs.len() as f64);
        let actual = analysis.actual().mean();
        let err = |p: f64| 100.0 * (p - actual).abs() / actual;
        sum_err.push(err(analysis.predict(Predictor::Summation).unwrap()));
        cpl_err.push(err(analysis.predict(Predictor::coupling(3)).unwrap()));
    }
    CouplingTable {
        title: "Ablation: LU class W (8 procs) vs network contention".to_string(),
        columns: contentions.iter().map(|c| format!("c={c}")).collect(),
        rows: vec![
            CouplingRow {
                label: "mean 3-chain coupling".to_string(),
                values: mean_c,
            },
            CouplingRow {
                label: "summation rel. err %".to_string(),
                values: sum_err,
            },
            CouplingRow {
                label: "coupling rel. err %".to_string(),
                values: cpl_err,
            },
        ],
    }
}

/// Timer-noise sweep: the class-S effect (paper §4.1.1) — prediction
/// errors of both methods as the measurement-noise floor grows.
pub fn noise_sweep(runner: &Runner, floor_multipliers: &[f64]) -> CouplingTable {
    let base_floor = kc_machine::MachineConfig::ibm_sp_p2sc().timer.noise_floor;
    let mut sum_err = Vec::new();
    let mut cpl_err = Vec::new();
    for &mult in floor_multipliers {
        let mut r = runner.clone();
        r.machine.timer.noise_floor = base_floor * mult;
        r.machine.timer.noise_frac = 0.004;
        let mut exec = r.executor(Benchmark::Bt, Class::S, 4);
        let analysis = CouplingAnalysis::collect(&mut exec, 2, r.reps).unwrap();
        let actual = analysis.actual().mean();
        let err = |p: f64| 100.0 * (p - actual).abs() / actual;
        sum_err.push(err(analysis.predict(Predictor::Summation).unwrap()));
        cpl_err.push(err(analysis.predict(Predictor::coupling(2)).unwrap()));
    }
    CouplingTable {
        title: "Ablation: BT class S (4 procs) prediction error vs timer-noise floor".to_string(),
        columns: floor_multipliers
            .iter()
            .map(|m| format!("{m}x floor"))
            .collect(),
        rows: vec![
            CouplingRow {
                label: "summation rel. err %".to_string(),
                values: sum_err,
            },
            CouplingRow {
                label: "coupling rel. err %".to_string(),
                values: cpl_err,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_length_sweep_runs_for_lu() {
        let t = chain_length_sweep(&Runner::noise_free(), Benchmark::Lu, Class::S, 4);
        // summation + 4 chain lengths
        assert_eq!(t.rows.len(), 5);
        t.check();
        // full-length chains reproduce the bracketed loop; the
        // residual vs the free-running application is the bracket
        // cost, a few percent at the tiny class S
        let full = t.rows.last().unwrap().values[0];
        let summation = t.rows[0].values[0];
        assert!(
            full < 5.0,
            "full-chain prediction error should be small, got {full}%"
        );
        assert!(
            full < summation / 2.0,
            "full-chain must far outperform summation"
        );
    }
}
