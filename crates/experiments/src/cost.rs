//! Cost models for campaign scheduling: what should execute first?
//!
//! [`Campaign::prefetch`](crate::Campaign::prefetch) submits unique
//! uncached cells to the campaign-global
//! [`CellScheduler`](crate::CellScheduler), whose priority queue pops
//! them **longest first**, so the tail of the bounded execute phase
//! is not one huge straggler.  The ordering needs a per-cell cost,
//! and there are two sources:
//!
//! * [`StaticCost`] — the provider's `cost_estimate` (grid cells ×
//!   kernels × a processor surcharge).  Always available, but a model
//!   of the simulation, not a measurement of it.
//! * [`MeasuredCost`] — real `CellExecuted` wall-clock durations from
//!   a previous run, seeded from the run-history sidecar
//!   (`kc_core::RunHistory`) or a `--trace` JSON-lines file.  Cells
//!   the history has never seen fall back to the static estimate.
//!
//! This is the feedback loop Kerncraft-style tooling argues for:
//! measured per-kernel timings are the right cost model for planning
//! the *next* measurement run.  Crucially the cost model only permutes
//! the execution schedule — cells are measured on independent
//! per-cell clusters with per-cell noise seeds, so the assembled
//! tables are bit-identical under any cost model
//! (`tests/scheduler.rs` proves both properties).

use kc_core::{read_jsonl, MeasurementKey, RunHistory, TelemetryEvent};
use std::collections::HashMap;
use std::path::Path;

/// A scheduling cost oracle for measurement cells.
///
/// Implementations return `Some(cost)` when they know (or can
/// predict) the relative cost of a cell, and `None` to defer to the
/// provider's static estimate.  Only the induced *ordering* matters;
/// units are whatever the source used (seconds for measured models).
pub trait CostModel: Send + Sync {
    /// The known cost of measuring `key`, or `None` to fall back to
    /// the static estimate.
    fn measured_cost(&self, key: &MeasurementKey) -> Option<f64>;

    /// Short name for logs and the `--cost-model` flag.
    fn name(&self) -> &'static str;
}

/// Today's behavior: every cell defers to the provider's static
/// `cost_estimate`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticCost;

impl CostModel for StaticCost {
    fn measured_cost(&self, _key: &MeasurementKey) -> Option<f64> {
        None
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Measured per-cell execution durations from a previous run,
/// consulted by canonical key text; unseen cells fall back to the
/// static estimate.
#[derive(Clone, Debug, Default)]
pub struct MeasuredCost {
    durations: HashMap<String, f64>,
}

impl MeasuredCost {
    /// An empty model (every cell falls back to the static estimate).
    pub fn new() -> Self {
        Self::default()
    }

    /// A model over explicit `(canonical key, seconds)` pairs.
    pub fn from_durations(durations: impl IntoIterator<Item = (String, f64)>) -> Self {
        Self {
            durations: durations.into_iter().collect(),
        }
    }

    /// Seed from a run-history sidecar (`STORE.history.jsonl`): every
    /// recorded `CellExecuted` duration across all runs, most recent
    /// run winning.  A missing sidecar yields an empty model.
    pub fn from_history(path: &Path) -> std::io::Result<Self> {
        let history = RunHistory::load(path)?;
        Ok(Self::from_durations(history.cell_durations()))
    }

    /// Seed from a JSON-lines telemetry trace written by a prior
    /// `--trace` run.
    pub fn from_trace(path: &Path) -> std::io::Result<Self> {
        let events = read_jsonl(path)?;
        Ok(Self::from_durations(kc_core::executed_durations(&events)))
    }

    /// Record one measured duration (later entries overwrite).
    pub fn record(&mut self, key: &MeasurementKey, duration_secs: f64) {
        self.durations.insert(key.to_string(), duration_secs);
    }

    /// Number of cells with a recorded duration.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether no duration is recorded.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }
}

impl CostModel for MeasuredCost {
    fn measured_cost(&self, key: &MeasurementKey) -> Option<f64> {
        self.durations.get(&key.to_string()).copied()
    }

    fn name(&self) -> &'static str {
        "measured"
    }
}

/// Harvest a measured-cost model out of a telemetry event stream
/// (e.g. `Campaign::telemetry_events` at the end of a run).
impl From<&[TelemetryEvent]> for MeasuredCost {
    fn from(events: &[TelemetryEvent]) -> Self {
        Self::from_durations(kc_core::executed_durations(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::{CellContext, CellKind, HistoryRecord, RunSummary};

    fn key(i: usize) -> MeasurementKey {
        CellContext {
            benchmark: "BT".into(),
            class: "S".into(),
            procs: 4,
            exec_digest: "w1t2".into(),
            machine_fingerprint: "fp".into(),
        }
        .key(CellKind::Chain(vec![kc_core::KernelId(i as u32)]), 5)
    }

    #[test]
    fn static_cost_always_defers() {
        assert_eq!(StaticCost.measured_cost(&key(0)), None);
        assert_eq!(StaticCost.name(), "static");
    }

    #[test]
    fn measured_cost_answers_seen_cells_and_defers_unseen() {
        let mut model = MeasuredCost::new();
        assert!(model.is_empty());
        model.record(&key(0), 1.25);
        assert_eq!(model.len(), 1);
        assert_eq!(model.measured_cost(&key(0)), Some(1.25));
        assert_eq!(model.measured_cost(&key(1)), None, "unseen cell defers");
        assert_eq!(model.name(), "measured");
    }

    #[test]
    fn seeds_from_history_sidecar_and_trace() {
        let dir = std::env::temp_dir().join("kc_cost_model_test");
        let _ = std::fs::remove_dir_all(&dir);

        // history sidecar: two runs, the later duration wins
        let history_path = dir.join("s.json.history.jsonl");
        let mut r1 = HistoryRecord::from_events(RunSummary::default(), &[]);
        r1.cell_durations.insert(key(0).to_string(), 2.0);
        RunHistory::append(&history_path, &r1).unwrap();
        let mut r2 = r1.clone();
        r2.cell_durations.insert(key(0).to_string(), 3.0);
        RunHistory::append(&history_path, &r2).unwrap();
        let from_history = MeasuredCost::from_history(&history_path).unwrap();
        assert_eq!(from_history.measured_cost(&key(0)), Some(3.0));

        // a missing sidecar is an empty model, not an error
        assert!(MeasuredCost::from_history(&dir.join("absent.jsonl"))
            .unwrap()
            .is_empty());

        // trace: CellExecuted durations only
        let trace_path = dir.join("trace.jsonl");
        let events = vec![
            TelemetryEvent::CellStarted {
                key: key(1).to_string(),
                worker: "w".into(),
            },
            TelemetryEvent::CellExecuted {
                key: key(1).to_string(),
                duration_secs: 0.5,
                worker: "w".into(),
            },
        ];
        kc_core::write_jsonl(&trace_path, &events).unwrap();
        let from_trace = MeasuredCost::from_trace(&trace_path).unwrap();
        assert_eq!(from_trace.measured_cost(&key(1)), Some(0.5));
        assert_eq!(MeasuredCost::from(events.as_slice()).len(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
