//! The composition algebra applied to *analytical* kernel models —
//! the use case paper Eq. 3 is written for.
//!
//! Section 3 of the paper assumes the analyst has hand-derived models
//! `E_A … E_D` of the kernels ("we have manually analyzed these two
//! functions such that we have modelA and modelB") and asks how to
//! combine them.  The evaluation section then uses measured kernel
//! times as the models; here we close the loop with genuinely
//! analytical `E_k` from `kc_npb::models` (closed-form flop / memory /
//! communication terms, no simulation) and compare three compositions:
//!
//! * analytic summation: `Σ E_k` — a hand model with no interaction
//!   correction;
//! * analytic + coupling: `Σ α_k E_k` with measured coefficients;
//! * measured + coupling: the paper's evaluation setting, for
//!   reference.

use crate::campaign::{AnalysisSpec, Campaign};
use kc_core::report::TableCell;
use kc_core::{KcResult, PredictionRow, PredictionTable, Predictor};
use kc_npb::models::analytic_isolated_totals;
use kc_npb::{Benchmark, Class};

/// The analyses [`analytic_table`] needs.
pub fn analytic_requests(
    benchmark: Benchmark,
    class: Class,
    procs: &[usize],
    len: usize,
) -> Vec<AnalysisSpec> {
    procs
        .iter()
        .map(|&p| AnalysisSpec::new(benchmark, class, p, len))
        .collect()
}

/// Build the analytic-composition table for one benchmark × class over
/// processor counts, at chain length `len`.
pub fn analytic_table(
    campaign: &Campaign,
    benchmark: Benchmark,
    class: Class,
    procs: &[usize],
    len: usize,
) -> KcResult<PredictionTable> {
    campaign.prefetch(&analytic_requests(benchmark, class, procs, len))?;
    let columns: Vec<String> = procs.iter().map(|p| format!("{p} processors")).collect();
    let mut actual = Vec::new();
    let mut rows_data: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for &p in procs {
        let analysis = campaign.analysis(&AnalysisSpec::new(benchmark, class, p, len))?;
        let models = analytic_isolated_totals(
            &kc_npb::NpbApp::new(benchmark, class, p),
            &campaign.runner().machine,
        );
        actual.push(analysis.actual().mean());
        rows_data[0].push(analysis.predict_with_models(Predictor::Summation, &models)?);
        rows_data[1].push(analysis.predict_with_models(Predictor::coupling(len), &models)?);
        rows_data[2].push(analysis.predict(Predictor::coupling(len))?);
    }
    let err = |t: f64, a: f64| Some(100.0 * (t - a).abs() / a);
    let mut rows = vec![PredictionRow {
        label: "Actual".to_string(),
        cells: actual
            .iter()
            .map(|&t| TableCell {
                time: t,
                rel_err_pct: None,
            })
            .collect(),
    }];
    for (label, data) in [
        ("Analytic models (of isolated runs), summed", &rows_data[0]),
        (
            &*format!("Analytic models + coupling ({len} kernels)"),
            &rows_data[1],
        ),
        (
            &*format!("Measured kernels + coupling ({len} kernels)"),
            &rows_data[2],
        ),
    ] {
        rows.push(PredictionRow {
            label: label.to_string(),
            cells: data
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        });
    }
    Ok(PredictionTable {
        title: format!(
            "Analytic composition (paper Eq. 3): {benchmark} class {class}, {len}-kernel coefficients"
        ),
        columns,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_composition_beats_analytic_summation() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let t = analytic_table(&campaign, Benchmark::Bt, Class::W, &[4, 9], 3).unwrap();
        t.check();
        let summed = t
            .row("Analytic models (of isolated runs), summed")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        let coupled = t
            .row("Analytic models + coupling (3 kernels)")
            .unwrap()
            .avg_rel_err_pct()
            .unwrap();
        assert!(
            coupled < summed,
            "coupling composition ({coupled:.2}%) must beat plain analytic summation ({summed:.2}%)"
        );
        // and the hand models should land in the paper's "good model"
        // band of ~15% once composed with coupling coefficients
        assert!(
            coupled < 15.0,
            "analytic+coupling error {coupled:.2}% too large"
        );
    }
}
