//! SP experiments: paper Tables 6a/6b/6c.
//!
//! Each table compares the summation predictor with 4-kernel and
//! 5-kernel coupling predictors over processor counts 4/9/16/25 for
//! one class (W, A, B).

use crate::campaign::{AnalysisSpec, Campaign};
use crate::runner::{build_tables, table_requests, TablePair};
use kc_core::KcResult;
use kc_npb::{Benchmark, Class};

/// Processor counts of the SP study (paper Table 6).
pub const PROCS: [usize; 4] = [4, 9, 16, 25];

/// The chain lengths the paper reports for SP.
pub const CHAIN_LENS: [usize; 2] = [4, 5];

/// The analyses one of Tables 6a/6b/6c needs.
pub fn table6_requests(class: Class) -> Vec<AnalysisSpec> {
    table_requests(Benchmark::Sp, class, &PROCS, &CHAIN_LENS)
}

/// One of Tables 6a/6b/6c, selected by class.
pub fn table6(campaign: &Campaign, class: Class) -> KcResult<TablePair> {
    let sub = match class {
        Class::W => "6a",
        Class::A => "6b",
        Class::B => "6c",
        Class::S => "6s",
    };
    build_tables(
        campaign,
        Benchmark::Sp,
        class,
        &PROCS,
        &CHAIN_LENS,
        &format!("Table {sub} supplement (the paper omits SP coupling values for brevity)"),
        &format!("Table {sub}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_class_w_has_two_coupling_rows() {
        let pair = table6(
            &Campaign::builder(crate::Runner::noise_free()).build(),
            Class::W,
        )
        .unwrap();
        // Actual + Summation + Coupling:4 + Coupling:5
        assert_eq!(pair.predictions.rows.len(), 4);
        assert!(pair.predictions.row("Coupling: 5 kernels").is_some());
        assert_eq!(pair.couplings.len(), 2);
        // SP has 6 loop kernels -> 6 windows per chain length
        assert_eq!(pair.couplings[0].rows.len(), 6);
    }
}
