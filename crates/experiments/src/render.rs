//! Rendering and artifact export: text, markdown and JSON.

use crate::runner::TablePair;
use kc_core::{CouplingTable, PredictionTable};
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Everything one experiment produced, in exportable form.
#[derive(Clone, Debug, Serialize)]
pub struct Artifact {
    /// Experiment identifier (e.g. `table4`).
    pub id: String,
    /// Coupling-value tables.
    pub couplings: Vec<CouplingTable>,
    /// Execution-time comparison tables.
    pub predictions: Vec<PredictionTable>,
}

impl Artifact {
    /// Wrap a table pair.
    pub fn from_pair(id: &str, pair: &TablePair) -> Self {
        Self {
            id: id.to_string(),
            couplings: pair.couplings.clone(),
            predictions: vec![pair.predictions.clone()],
        }
    }

    /// Wrap bare coupling tables (transition/ablation experiments).
    pub fn from_couplings(id: &str, tables: Vec<CouplingTable>) -> Self {
        Self {
            id: id.to_string(),
            couplings: tables,
            predictions: Vec::new(),
        }
    }

    /// Pretty text rendering of everything in the artifact.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for t in &self.couplings {
            s.push_str(&t.to_string());
            s.push('\n');
        }
        for t in &self.predictions {
            s.push_str(&t.to_string());
            s.push('\n');
        }
        s
    }

    /// Markdown rendering (the tables inside fenced blocks, with the
    /// experiment id as a heading).
    pub fn render_markdown(&self) -> String {
        format!("## {}\n\n```text\n{}```\n", self.id, self.render_text())
    }

    /// JSON rendering.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are serializable")
    }

    /// CSV rendering: one block per table, rows = table rows, columns
    /// = configuration columns — the series a plotting tool wants.
    pub fn render_csv(&self) -> String {
        let mut s = String::new();
        let esc = |v: &str| {
            if v.contains(',') || v.contains('"') {
                format!("\"{}\"", v.replace('"', "\"\""))
            } else {
                v.to_string()
            }
        };
        for t in &self.couplings {
            s.push_str(&format!("# {}\n", t.title));
            s.push_str(&format!(
                "series,{}\n",
                t.columns
                    .iter()
                    .map(|c| esc(c))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            for r in &t.rows {
                s.push_str(&esc(&r.label));
                for v in &r.values {
                    s.push_str(&format!(",{v}"));
                }
                s.push('\n');
            }
            s.push('\n');
        }
        for t in &self.predictions {
            s.push_str(&format!("# {}\n", t.title));
            s.push_str(&format!(
                "series,{}\n",
                t.columns
                    .iter()
                    .map(|c| esc(c))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            for r in &t.rows {
                s.push_str(&esc(&r.label));
                for c in &r.cells {
                    s.push_str(&format!(",{}", c.time));
                }
                s.push('\n');
            }
            s.push('\n');
        }
        s
    }

    /// Write `<dir>/<id>.txt`, `<dir>/<id>.json` and `<dir>/<id>.csv`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut txt = std::fs::File::create(dir.join(format!("{}.txt", self.id)))?;
        txt.write_all(self.render_text().as_bytes())?;
        let mut json = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        json.write_all(self.render_json().as_bytes())?;
        let mut csv = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        csv.write_all(self.render_csv().as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::CouplingRow;

    fn sample() -> Artifact {
        Artifact::from_couplings(
            "demo",
            vec![CouplingTable {
                title: "T".into(),
                columns: vec!["4 procs".into()],
                rows: vec![CouplingRow {
                    label: "{a, b}".into(),
                    values: vec![0.9],
                }],
            }],
        )
    }

    #[test]
    fn json_is_parseable_and_contains_values() {
        let j = sample().render_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "demo");
        assert_eq!(v["couplings"][0]["rows"][0]["values"][0], 0.9);
    }

    #[test]
    fn markdown_has_heading_and_fence() {
        let m = sample().render_markdown();
        assert!(m.starts_with("## demo"));
        assert!(m.contains("```text"));
    }

    #[test]
    fn writes_artifacts_to_disk() {
        let dir = std::env::temp_dir().join("kc_render_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample().write_to(&dir).unwrap();
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.json").exists());
        assert!(dir.join("demo.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_has_header_and_values() {
        let csv = sample().render_csv();
        assert!(csv.contains("series,4 procs"));
        assert!(csv.contains("\"{a, b}\",0.9"));
    }
}
