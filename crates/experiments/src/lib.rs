//! # kc-experiments
//!
//! Regenerates every table of the HPDC 2002 kernel-coupling paper on
//! the simulated IBM SP, plus the scaling/transition study and a set
//! of ablations the paper motivates.
//!
//! One module per paper table group:
//!
//! * [`bt`] — Tables 2a/2b (class S, pairs), 3a/3b (class W, triples),
//!   4a/4b (class A, quadruples).
//! * [`sp`] — Tables 6a/6b/6c (classes W/A/B, 4- and 5-kernel chains).
//! * [`lu`] — Tables 8a/8b/8c (classes W/A/B, 3-kernel chains).
//! * [`transitions`] — the paper's §4.1.4 finding: coupling values move
//!   through a finite number of regimes as problem size and processor
//!   count scale.
//! * [`ablations`] — our additions: chain-length sweep, cache-capacity
//!   sweep, network-contention sweep, timer-noise sweep.
//!
//! Everything funnels through [`runner::Runner`], which owns the
//! machine model and measurement protocol, and produces the typed
//! tables of `kc_core::report` (renderable as text, markdown and
//! JSON via [`render`]).
//!
//! The `paper_tables` binary drives it all:
//!
//! ```text
//! cargo run --release -p kc-experiments --bin paper_tables -- all --out artifacts/
//! ```

pub mod ablations;
pub mod analytic;
pub mod bt;
pub mod campaign;
pub mod cost;
pub mod granularity;
pub mod lu;
pub mod machines;
pub mod render;
pub mod reuse;
pub mod runner;
pub mod scheduler;
pub mod serve;
pub mod sp;
pub mod transitions;

pub use campaign::{AnalysisSpec, Campaign, CampaignBuilder, CampaignStats, SummaryOpts};
pub use cost::{CostModel, MeasuredCost, StaticCost};
pub use runner::{Runner, TablePair};
pub use scheduler::{CellScheduler, DrainStats};
pub use serve::CampaignEngine;
