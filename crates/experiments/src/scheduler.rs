//! The campaign-global bounded cell scheduler.
//!
//! PR 3's pipelined `paper_tables` gave every experiment its own
//! worker thread, and each worker's `prefetch` pushed its whole cell
//! set through the shared rayon pool.  With sixteen experiments that
//! is sixteen free-running `par_iter` drains competing for the same
//! cores — total executor concurrency scaled with the number of
//! *experiments selected*, not with the machine (the ROADMAP's
//! oversubscription item).  Wichmann et al.'s overlapping-kernel model
//! makes the same point analytically: coupled kernel measurements want
//! a bounded, cost-aware schedule, not a free-for-all.
//!
//! [`CellScheduler`] replaces that with one global priority queue
//! drained by a fixed pool of `jobs` worker threads:
//!
//! * **Priority** — earliest deadline pops first (cells submitted via
//!   [`CellScheduler::drain_with_deadline`] by an urgent serve batch
//!   jump every deadline-free cell), then highest
//!   [`CostModel`](crate::CostModel) cost (longest first, so the tail
//!   of the execute phase is not one straggler), ties broken by
//!   canonical key order.  Deadline-free drains all carry the same
//!   infinite deadline, so their schedule is the original pure cost
//!   order.  Ordering uses `f64::total_cmp`, so a poisoned cost model
//!   that yields NaN skews the schedule instead of panicking — and
//!   since cells are bit-identical under any schedule, a skewed
//!   schedule is merely slower, never wrong.
//! * **Dedup at the queue** — each distinct cell owns one completion
//!   slot; a drain that wants an already-queued cell shares
//!   the slot instead of enqueueing a duplicate, so cross-experiment
//!   duplicates collapse *before* execution rather than in
//!   `CachedProvider`'s in-flight table.
//! * **Bounded concurrency** — at most `jobs` cells execute at any
//!   instant, structurally: there are only `jobs` worker threads.
//! * **Overlap preserved** — [`CellScheduler::drain`] blocks only on
//!   the cells the *caller* submitted, so an experiment still starts
//!   assembling the moment its own cells are done while other
//!   experiments' cells keep flowing.
//!
//! Each drain reports [`DrainStats`]: how its cells were satisfied
//! (executed / backend hit / cache hit / shared with a concurrent
//! drain) plus the queue depth it observed — the raw material for the
//! `SchedulerDrain` telemetry event and the `--metrics` saturation
//! report.

use kc_core::{Disposition, KcError, KcResult, MeasurementKey};
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Recover the guard from a poisoned lock: scheduler state is a queue
/// plus completion slots, both valid at every instruction boundary,
/// so a panicking execute closure must not wedge every other drain.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// How one cell is executed: the scheduler calls this for every cell
/// it pops, and the closure reports how the cache satisfied it.
pub type ExecuteFn = dyn Fn(&MeasurementKey) -> KcResult<Disposition> + Send + Sync;

/// How one [`CellScheduler::drain`] call's cells were satisfied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Cells this drain enqueued that ran on a fresh cluster.
    pub executed: usize,
    /// Cells this drain enqueued that the persistent backend served.
    pub backend_hits: usize,
    /// Cells this drain enqueued that were already in the in-memory
    /// cache by the time a worker popped them.
    pub hits: usize,
    /// Cells already queued by a concurrent drain; this drain waited
    /// on the shared slot instead of enqueueing a duplicate.
    pub shared: usize,
    /// Cells this drain newly enqueued (`executed + backend_hits +
    /// hits`).
    pub enqueued: usize,
    /// Queue depth observed right after this drain submitted its
    /// cells (its own included).
    pub queue_depth: usize,
}

/// One in-queue (or in-flight) cell: every drain waiting on the cell
/// parks on `done` until a worker fills `result`.
struct CellSlot {
    result: Mutex<Option<Result<Disposition, KcError>>>,
    done: Condvar,
}

impl CellSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<Disposition, KcError>) {
        *relock(self.result.lock()) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Disposition, KcError> {
        let mut guard = relock(self.result.lock());
        while guard.is_none() {
            guard = relock(self.done.wait(guard));
        }
        guard.clone().expect("slot filled")
    }
}

/// A queued cell, ordered so the `BinaryHeap` pops the most urgent
/// deadline first, then the most expensive cell, then canonical key
/// order (smallest key first) — the schedule is deterministic for a
/// given cost model and deadline assignment.
struct Queued {
    /// Caller-supplied urgency, `f64::INFINITY` when the drain carries
    /// no deadline.  Smaller pops first; all-infinite (the
    /// deadline-free case) makes this field a no-op and the ordering
    /// collapses to the original pure cost order.
    deadline: f64,
    cost: f64,
    key: MeasurementKey,
    slot: Arc<CellSlot>,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.deadline.total_cmp(&other.deadline).is_eq()
            && self.cost.total_cmp(&other.cost).is_eq()
            && self.key == other.key
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // max-heap: greater = popped first.  Earliest deadline wins
        // (reversed comparison: smaller deadline = greater priority),
        // then highest cost, then the *smallest* key (reversed again).
        // Every stage is total_cmp or Ord, so NaN deadlines or costs
        // order deterministically instead of panicking — and since
        // cells are bit-identical under any schedule, a skewed
        // schedule is merely slower, never wrong.
        other
            .deadline
            .total_cmp(&self.deadline)
            .then_with(|| self.cost.total_cmp(&other.cost))
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Queue state guarded by one mutex: the priority heap plus the slot
/// table that dedups concurrent submissions of the same cell.
struct State {
    queue: BinaryHeap<Queued>,
    /// Every cell currently queued or executing, by key.  A slot
    /// leaves the table the moment its worker finishes — succeeded
    /// cells are in the provider cache (a re-submission is a cheap
    /// `Hit`), failed cells get a fresh attempt from the next drain.
    slots: HashMap<MeasurementKey, Arc<CellSlot>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    execute: Box<ExecuteFn>,
}

/// The campaign-global bounded scheduler: a cost-ordered queue drained
/// by exactly `jobs` worker threads (see the module docs).
pub struct CellScheduler {
    shared: Arc<Shared>,
    jobs: usize,
    workers: Vec<JoinHandle<()>>,
}

impl CellScheduler {
    /// A scheduler whose `jobs` workers (at least one) execute cells
    /// through `execute`.
    pub fn new(jobs: usize, execute: Box<ExecuteFn>) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                slots: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            execute,
        });
        let workers = (0..jobs)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("kc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self {
            shared,
            jobs,
            workers,
        }
    }

    /// The fixed worker pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Submit `cells` (key, cost) and block until every one of them is
    /// done, then report how they were satisfied.  Cells already
    /// queued by a concurrent drain are shared, not duplicated.  The
    /// first failure among *this* drain's cells is propagated after
    /// all of them settle.
    pub fn drain(&self, cells: Vec<(MeasurementKey, f64)>) -> KcResult<DrainStats> {
        self.drain_with_deadline(cells, None)
    }

    /// [`CellScheduler::drain`] with an urgency: cells submitted with
    /// a deadline (milliseconds of client budget; smaller = more
    /// urgent) pop ahead of every deadline-free cell in the queue,
    /// regardless of cost.  `None` (and NaN, which is not a budget) is
    /// treated as infinitely patient, making this identical to
    /// [`CellScheduler::drain`] — the pure cost order.  A cell already
    /// queued by a concurrent drain keeps its original priority; the
    /// urgent drain shares the slot rather than re-prioritising it.
    pub fn drain_with_deadline(
        &self,
        cells: Vec<(MeasurementKey, f64)>,
        deadline_ms: Option<f64>,
    ) -> KcResult<DrainStats> {
        let deadline = match deadline_ms {
            Some(d) if !d.is_nan() => d,
            _ => f64::INFINITY,
        };
        let mut stats = DrainStats::default();
        // Submit everything under one lock acquisition: a jobs=1
        // worker cannot start draining mid-submission, so the pop
        // order over this batch is exactly the deadline-then-cost
        // order.
        let tickets: Vec<(Arc<CellSlot>, bool)> = {
            let mut state = relock(self.shared.state.lock());
            let tickets = cells
                .into_iter()
                .map(|(key, cost)| {
                    if let Some(slot) = state.slots.get(&key) {
                        return (slot.clone(), false);
                    }
                    let slot = CellSlot::new();
                    state.slots.insert(key.clone(), slot.clone());
                    state.queue.push(Queued {
                        deadline,
                        cost,
                        key,
                        slot: slot.clone(),
                    });
                    (slot, true)
                })
                .collect();
            stats.queue_depth = state.queue.len();
            tickets
        };
        self.shared.work_ready.notify_all();

        let mut first_error = None;
        for (slot, mine) in tickets {
            match (slot.wait(), mine) {
                (Ok(disposition), true) => {
                    stats.enqueued += 1;
                    match disposition {
                        Disposition::Executed => stats.executed += 1,
                        Disposition::BackendHit => stats.backend_hits += 1,
                        Disposition::Hit => stats.hits += 1,
                    }
                }
                (Ok(_), false) => stats.shared += 1,
                (Err(e), _) => first_error = first_error.or(Some(e)),
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }
}

impl Drop for CellScheduler {
    fn drop(&mut self) {
        relock(self.shared.state.lock()).shutdown = true;
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let queued = {
            let mut state = relock(shared.state.lock());
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(q) = state.queue.pop() {
                    break q;
                }
                state = relock(shared.work_ready.wait(state));
            }
        };
        let result = (shared.execute)(&queued.key);
        // Retire the slot before publishing the result: by the time a
        // waiter wakes, a successful cell is in the provider cache and
        // a failed cell is eligible for a fresh attempt.
        relock(shared.state.lock()).slots.remove(&queued.key);
        queued.slot.fill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_core::{CellContext, CellKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(i: usize) -> MeasurementKey {
        CellContext {
            benchmark: "BT".into(),
            class: "S".into(),
            procs: 4,
            exec_digest: "w1t2".into(),
            machine_fingerprint: "fp".into(),
        }
        .key(CellKind::Chain(vec![kc_core::KernelId(i as u32)]), 5)
    }

    #[test]
    fn jobs_one_pops_in_cost_order_with_key_tiebreak() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let seen = order.clone();
        let sched = CellScheduler::new(
            1,
            Box::new(move |k| {
                seen.lock().unwrap().push(k.clone());
                Ok(Disposition::Executed)
            }),
        );
        // costs: 2.0, 5.0, 5.0, NaN — NaN orders above everything
        // under total_cmp; the 5.0 tie breaks by key order
        let cells = vec![
            (key(0), 2.0),
            (key(2), 5.0),
            (key(1), 5.0),
            (key(3), f64::NAN),
        ];
        let stats = sched.drain(cells).unwrap();
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.shared, 0);
        assert_eq!(stats.queue_depth, 4);
        let k12 = {
            let mut pair = [key(1), key(2)];
            pair.sort();
            pair
        };
        assert_eq!(
            *order.lock().unwrap(),
            vec![key(3), k12[0].clone(), k12[1].clone(), key(0)],
            "NaN first (total_cmp), then the 5.0 tie in key order, then 2.0"
        );
    }

    #[test]
    fn deadlined_cells_jump_deadline_free_ones_regardless_of_cost() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (seen, g) = (order.clone(), gate.clone());
        // the decoy cell (key 99) holds the single worker at the gate
        // so later submissions pile up in the heap and pop in priority
        // order once the gate opens
        let sched = CellScheduler::new(
            1,
            Box::new(move |k| {
                if k == &key(99) {
                    let mut open = relock(g.0.lock());
                    while !*open {
                        open = relock(g.1.wait(open));
                    }
                }
                seen.lock().unwrap().push(k.clone());
                Ok(Disposition::Executed)
            }),
        );
        std::thread::scope(|s| {
            let decoy = s.spawn(|| sched.drain(vec![(key(99), 100.0)]));
            std::thread::sleep(std::time::Duration::from_millis(30));
            let patient = s.spawn(|| sched.drain(vec![(key(0), 9.0), (key(1), 8.0)]));
            std::thread::sleep(std::time::Duration::from_millis(30));
            let urgent = s.spawn(|| sched.drain_with_deadline(vec![(key(2), 0.5)], Some(250.0)));
            std::thread::sleep(std::time::Duration::from_millis(30));
            *gate.0.lock().unwrap() = true;
            gate.1.notify_all();
            decoy.join().unwrap().unwrap();
            patient.join().unwrap().unwrap();
            urgent.join().unwrap().unwrap();
        });
        assert_eq!(
            order.lock().unwrap()[1..],
            [key(2), key(0), key(1)],
            "the cheap-but-urgent cell pops ahead of expensive patient cells"
        );
    }

    #[test]
    fn nan_deadline_is_treated_as_no_deadline() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let seen = order.clone();
        let sched = CellScheduler::new(
            1,
            Box::new(move |k| {
                seen.lock().unwrap().push(k.clone());
                Ok(Disposition::Executed)
            }),
        );
        let stats = sched
            .drain_with_deadline(vec![(key(0), 2.0), (key(1), 5.0)], Some(f64::NAN))
            .unwrap();
        assert_eq!(stats.executed, 2);
        assert_eq!(
            *order.lock().unwrap(),
            vec![key(1), key(0)],
            "NaN is not a budget: pure cost order, no panic"
        );
    }

    #[test]
    fn never_runs_more_than_jobs_cells_at_once() {
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (a, p) = (active.clone(), peak.clone());
        let sched = CellScheduler::new(
            3,
            Box::new(move |_| {
                let now = a.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                a.fetch_sub(1, Ordering::SeqCst);
                Ok(Disposition::Executed)
            }),
        );
        let cells: Vec<_> = (0..24).map(|i| (key(i), i as f64)).collect();
        let stats = sched.drain(cells).unwrap();
        assert_eq!(stats.executed, 24);
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "at most jobs=3 cells in flight, saw {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_drains_share_queued_cells_instead_of_duplicating() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        let sched = Arc::new(CellScheduler::new(
            2,
            Box::new(move |_| {
                r.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(Disposition::Executed)
            }),
        ));
        let cells: Vec<_> = (0..8).map(|i| (key(i), 1.0)).collect();
        let (sa, sb) = (sched.clone(), sched.clone());
        let (ca, cb) = (cells.clone(), cells);
        let (ra, rb) = std::thread::scope(|s| {
            let ha = s.spawn(move || sa.drain(ca).unwrap());
            let hb = s.spawn(move || sb.drain(cb).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // every cell ran exactly once; each run is attributed to
        // exactly one drain, the other drain shared the slot (unless
        // one drain finished before the other submitted, in which
        // case the late drain re-enqueued already-popped cells — the
        // execute closure here never caches, so re-enqueues re-run;
        // with a real CachedProvider they'd be Hits)
        assert_eq!(ra.executed + rb.executed, runs.load(Ordering::SeqCst));
        assert_eq!(ra.shared + ra.enqueued, 8);
        assert_eq!(rb.shared + rb.enqueued, 8);
    }

    #[test]
    fn a_failed_cell_leaves_the_queue_so_the_next_drain_retries() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let sched = CellScheduler::new(
            1,
            Box::new(move |_| {
                if a.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(KcError::Io("injected failure".into()))
                } else {
                    Ok(Disposition::Executed)
                }
            }),
        );
        let err = sched.drain(vec![(key(0), 1.0)]).unwrap_err();
        assert!(format!("{err}").contains("injected failure"));
        let stats = sched.drain(vec![(key(0), 1.0)]).unwrap();
        assert_eq!(stats.executed, 1, "fresh drain retries the failed cell");
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn empty_drain_is_a_noop() {
        let sched = CellScheduler::new(4, Box::new(|_| Ok(Disposition::Executed)));
        assert_eq!(sched.jobs(), 4);
        let stats = sched.drain(Vec::new()).unwrap();
        assert_eq!(stats, DrainStats::default());
    }
}
