//! Kernel-granularity study.
//!
//! The paper defines a kernel as "a unit of computation that denotes a
//! logical entity … a loop, procedure, or file depending on the level
//! of granularity of detail that is desired."  Its evaluation uses
//! procedure-level kernels; this experiment asks what changes at
//! *loop-level* granularity: BT with each solve split into its
//! elimination and substitution halves (8 loop kernels instead of 5).
//!
//! Two findings to expect:
//!
//! * elimination/substitution pairs couple far more strongly than any
//!   procedure-level pair — the substitution immediately re-reads the
//!   coefficient planes the elimination just wrote;
//! * the summation baseline degrades further (more isolated-run
//!   penalties to sum) while the coupling predictor holds up, so the
//!   methodology's advantage *grows* with decomposition detail.

use crate::campaign::{AnalysisSpec, Campaign};
use kc_core::report::TableCell;
use kc_core::{
    CouplingAnalysis, CouplingRow, CouplingTable, KcResult, PredictionRow, PredictionTable,
    Predictor,
};
use kc_npb::{Benchmark, Class};

/// Collect an analysis at the fine (8-kernel) BT decomposition.
pub fn fine_analysis(
    campaign: &Campaign,
    class: Class,
    procs: usize,
    chain_len: usize,
) -> KcResult<CouplingAnalysis> {
    campaign.analysis(&AnalysisSpec::new(Benchmark::Bt, class, procs, chain_len).fine())
}

/// The analyses [`granularity_tables`] needs.
pub fn granularity_requests(class: Class, procs: &[usize]) -> Vec<AnalysisSpec> {
    procs
        .iter()
        .flat_map(|&p| {
            [
                AnalysisSpec::new(Benchmark::Bt, class, p, 3),
                AnalysisSpec::new(Benchmark::Bt, class, p, 2).fine(),
                AnalysisSpec::new(Benchmark::Bt, class, p, 5).fine(),
            ]
        })
        .collect()
}

/// The granularity comparison for BT at one class: coarse (paper)
/// vs fine decomposition, each with its best-suited chain length.
pub fn granularity_tables(
    campaign: &Campaign,
    class: Class,
    procs: &[usize],
) -> KcResult<(CouplingTable, PredictionTable)> {
    campaign.prefetch(&granularity_requests(class, procs))?;
    let columns: Vec<String> = procs.iter().map(|p| format!("{p} processors")).collect();
    let mut pair_coupling = Vec::new(); // strongest fine pair per proc
    let mut actual = Vec::new();
    let mut coarse_sum = Vec::new();
    let mut coarse_cpl = Vec::new();
    let mut fine_sum = Vec::new();
    let mut fine_cpl = Vec::new();

    for &p in procs {
        // coarse: the paper's decomposition, 3-kernel chains
        let coarse = campaign.analysis(&AnalysisSpec::new(Benchmark::Bt, class, p, 3))?;
        actual.push(coarse.actual().mean());
        coarse_sum.push(coarse.predict(Predictor::Summation)?);
        coarse_cpl.push(coarse.predict(Predictor::coupling(3))?);

        // fine: 8 kernels, pairwise chains highlight the elim/subst bond
        let fine2 = fine_analysis(campaign, class, p, 2)?;
        let set = fine2.kernel_set().clone();
        let elim_subst = fine2
            .windows()
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                let l = w.label(&set);
                l.contains("x_elim, x_subst")
                    || l.contains("y_elim, y_subst")
                    || l.contains("z_elim, z_subst")
            })
            .map(|(i, _)| fine2.coupling(i).unwrap())
            .fold(f64::INFINITY, f64::min);
        pair_coupling.push(elim_subst);
        fine_sum.push(fine2.predict(Predictor::Summation)?);
        // longer chains for the prediction at the fine granularity
        let fine5 = fine_analysis(campaign, class, p, 5)?;
        fine_cpl.push(fine5.predict(Predictor::coupling(5))?);
    }

    let couplings = CouplingTable {
        title: format!(
            "Granularity study: strongest elimination/substitution pair coupling — BT class {class}"
        ),
        columns: columns.clone(),
        rows: vec![CouplingRow {
            label: "min elim/subst pair coupling".to_string(),
            values: pair_coupling,
        }],
    };

    let err = |t: f64, a: f64| Some(100.0 * (t - a).abs() / a);
    let rows = vec![
        PredictionRow {
            label: "Actual".to_string(),
            cells: actual
                .iter()
                .map(|&t| TableCell {
                    time: t,
                    rel_err_pct: None,
                })
                .collect(),
        },
        PredictionRow {
            label: "Coarse summation (5 kernels)".to_string(),
            cells: coarse_sum
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        },
        PredictionRow {
            label: "Coarse coupling (L=3)".to_string(),
            cells: coarse_cpl
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        },
        PredictionRow {
            label: "Fine summation (8 kernels)".to_string(),
            cells: fine_sum
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        },
        PredictionRow {
            label: "Fine coupling (L=5)".to_string(),
            cells: fine_cpl
                .iter()
                .zip(&actual)
                .map(|(&t, &a)| TableCell {
                    time: t,
                    rel_err_pct: err(t, a),
                })
                .collect(),
        },
    ];
    let predictions = PredictionTable {
        title: format!("Granularity study: prediction accuracy — BT class {class}"),
        columns,
        rows,
    };
    Ok((couplings, predictions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kc_npb::{NpbApp, NpbExecutor};

    #[test]
    fn elim_subst_pairs_couple_strongly() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let fine = fine_analysis(&campaign, Class::S, 4, 2).unwrap();
        let set = fine.kernel_set().clone();
        assert_eq!(set.len(), 8);
        // the x_elim/x_subst pair must couple more constructively than
        // the coarse copy_faces/x_solve pair does
        let (mut pair_c, mut other_min) = (f64::NAN, f64::INFINITY);
        for (i, w) in fine.windows().iter().enumerate() {
            let c = fine.coupling(i).unwrap();
            if w.label(&set).contains("x_elim, x_subst") {
                pair_c = c;
            } else {
                other_min = other_min.min(c);
            }
        }
        assert!(pair_c.is_finite());
        assert!(
            pair_c < 1.0,
            "elim/subst must couple constructively, got {pair_c}"
        );
    }

    #[test]
    fn fine_numeric_decomposition_is_equivalent_to_coarse() {
        // running the 8-kernel loop numerically produces exactly the
        // same physics as the 5-kernel loop
        use kc_machine::MachineConfig;
        use kc_npb::{ExecConfig, Mode};
        let cfg = ExecConfig {
            mode: Mode::Numeric,
            ..ExecConfig::default()
        };
        let coarse = NpbExecutor::new(
            NpbApp::new(Benchmark::Bt, Class::S, 4),
            MachineConfig::test_tiny(),
            cfg,
        );
        let fine = NpbExecutor::with_spec(
            NpbApp::new(Benchmark::Bt, Class::S, 4),
            MachineConfig::test_tiny(),
            cfg,
            kc_npb::bt::fine_spec(),
        );
        let a = coarse.run_numeric(3, 0.1).verify;
        let b = fine.run_numeric(3, 0.1).verify;
        assert_eq!(
            a, b,
            "fine and coarse decompositions must compute identically"
        );
    }

    #[test]
    fn coupling_advantage_grows_with_granularity() {
        let campaign = Campaign::builder(crate::Runner::noise_free()).build();
        let (_, table) = granularity_tables(&campaign, Class::S, &[4]).unwrap();
        let get = |label: &str| table.row(label).unwrap().avg_rel_err_pct().unwrap();
        let coarse_sum = get("Coarse summation (5 kernels)");
        let fine_sum = get("Fine summation (8 kernels)");
        let fine_cpl = get("Fine coupling (L=5)");
        assert!(
            fine_sum > coarse_sum,
            "finer decomposition should hurt summation: {fine_sum:.2}% vs {coarse_sum:.2}%"
        );
        assert!(
            fine_cpl < fine_sum / 2.0,
            "coupling must hold up at fine granularity"
        );
    }
}
