//! `kc_served` — the long-running prediction daemon.
//!
//! ```text
//! kc_served [--listen ADDR] [--store SPEC]
//!          [--noise-free] [--reps N] [--jobs N] [--max-inflight N]
//!          [--max-batch N] [--trace FILE] [--metrics] [--history FILE]
//! ```
//!
//! Reads line-delimited JSON [`kc_serve::PredictRequest`]s — from
//! stdin by default (**pipe mode**: one response line per request
//! line, in input order, drains and exits 0 at EOF), or from TCP
//! connections with `--listen ADDR` (each connection is an
//! independent pipe stream; concurrent connections batch together;
//! SIGTERM stops accepting and drains).
//!
//! Requests resolve through one shared [`Campaign`]: each server
//! batch prefetches its cells as a single set through the bounded
//! cell scheduler, so duplicate cells across in-flight requests
//! execute exactly once and at most `--jobs` cells execute at any
//! instant.  With `--store`, cells load from / save to a kc-prophesy
//! cell store — a warm store answers every request with zero
//! executions — and the run appends to the `PATH.history.jsonl`
//! sidecar on shutdown.  The store spec is a bare PATH — the format is
//! auto-detected (JSON file or sharded binary directory) — or
//! `sharded:PATH` / `json:PATH` to force the format for a fresh store
//! (the old `--store-format` flag is a deprecated alias).  The
//! sharded format appends
//! each measured cell immediately, so a second instance over the same
//! store directory sees this one's cells as they land.  `--trace` writes the canonical telemetry
//! stream (cell spans + `RequestServed` events); `--metrics` prints
//! request-latency percentiles, batch shape and cache hit rate to
//! stderr at shutdown.

use kc_core::{HistoryRecord, JsonLinesSink, RunHistory};
use kc_experiments::{Campaign, CampaignEngine, Runner, SummaryOpts};
use kc_prophesy::{history_sidecar, CellBackend, StoreFormat, StoreOptions, StoreSpec};
use kc_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Slow cells to keep in the `--metrics` / trace summary.
const SUMMARY_TOP_N: usize = 10;

/// Everything the command line configures.
#[derive(Default)]
struct Options {
    listen: Option<String>,
    store: Option<StoreSpec>,
    store_format: Option<StoreFormat>,
    compact_ratio: Option<f64>,
    trace: Option<PathBuf>,
    history: Option<PathBuf>,
    metrics: bool,
    noise_free: bool,
    reps: Option<u32>,
    jobs: Option<usize>,
    max_inflight: Option<usize>,
    max_batch: Option<usize>,
}

/// One command-line flag (same declarative table as `paper_tables`):
/// name, value placeholder, help line, and how it lands in
/// [`Options`].
struct Flag {
    name: &'static str,
    metavar: Option<&'static str>,
    help: &'static str,
    apply: fn(&mut Options, &str) -> Result<(), String>,
}

fn parse_positive(name: &str, v: &str) -> Result<usize, String> {
    let n: usize = v.parse().map_err(|_| format!("bad {name} value '{v}'"))?;
    if n == 0 {
        return Err(format!("{name} must be at least 1"));
    }
    Ok(n)
}

const FLAGS: [Flag; 12] = [
    Flag {
        name: "--listen",
        metavar: Some("ADDR"),
        help: "serve TCP connections on ADDR (e.g. 127.0.0.1:7070) instead of stdin",
        apply: |o, v| {
            o.listen = Some(v.to_string());
            Ok(())
        },
    },
    Flag {
        name: "--store",
        metavar: Some("SPEC"),
        help: "load/save raw cell measurements in a kc-prophesy cell store; \
               SPEC is PATH (format auto-detected) or 'sharded:PATH' / \
               'json:PATH' to force a format for a fresh store",
        apply: |o, v| {
            o.store = Some(v.parse()?);
            Ok(())
        },
    },
    Flag {
        name: "--store-format",
        metavar: Some("FORMAT"),
        help: "deprecated alias for a 'FORMAT:PATH' --store spec ('json' or 'sharded')",
        apply: |o, v| {
            o.store_format = Some(v.parse()?);
            Ok(())
        },
    },
    Flag {
        name: "--compact-ratio",
        metavar: Some("RATIO"),
        help: "auto-compact a sharded-store shard once more than RATIO of its \
               frames are superseded (0 < RATIO < 1; ignored by JSON stores)",
        apply: |o, v| {
            let ratio: f64 = v
                .parse()
                .map_err(|_| format!("bad --compact-ratio value '{v}'"))?;
            if !(ratio > 0.0 && ratio < 1.0) {
                return Err(format!(
                    "--compact-ratio must be strictly between 0 and 1, got {v}"
                ));
            }
            o.compact_ratio = Some(ratio);
            Ok(())
        },
    },
    Flag {
        name: "--noise-free",
        metavar: None,
        help: "disable the machine's timer noise",
        apply: |o, _| {
            o.noise_free = true;
            Ok(())
        },
    },
    Flag {
        name: "--reps",
        metavar: Some("N"),
        help: "timing repetitions per chain cell",
        apply: |o, v| {
            o.reps = Some(v.parse().map_err(|_| format!("bad --reps value '{v}'"))?);
            Ok(())
        },
    },
    Flag {
        name: "--jobs",
        metavar: Some("N"),
        help: "scheduler worker-pool size, >= 1 (default: available parallelism)",
        apply: |o, v| {
            o.jobs = Some(parse_positive("--jobs", v)?);
            Ok(())
        },
    },
    Flag {
        name: "--max-inflight",
        metavar: Some("N"),
        help: "max requests queued or resolving before overload responses (default 256)",
        apply: |o, v| {
            o.max_inflight = Some(parse_positive("--max-inflight", v)?);
            Ok(())
        },
    },
    Flag {
        name: "--max-batch",
        metavar: Some("N"),
        help: "max requests resolved per engine batch (default 64)",
        apply: |o, v| {
            o.max_batch = Some(parse_positive("--max-batch", v)?);
            Ok(())
        },
    },
    Flag {
        name: "--trace",
        metavar: Some("FILE"),
        help: "write the telemetry stream (cells + requests) as canonical JSON lines",
        apply: |o, v| {
            o.trace = Some(PathBuf::from(v));
            Ok(())
        },
    },
    Flag {
        name: "--metrics",
        metavar: None,
        help: "print serve + campaign aggregates to stderr at shutdown",
        apply: |o, _| {
            o.metrics = true;
            Ok(())
        },
    },
    Flag {
        name: "--history",
        metavar: Some("FILE"),
        help: "append this run's summary + cell durations to FILE \
               (default: STORE.history.jsonl when --store is given)",
        apply: |o, v| {
            o.history = Some(PathBuf::from(v));
            Ok(())
        },
    },
];

fn usage_text() -> String {
    let mut flags = String::new();
    for f in &FLAGS {
        let head = match f.metavar {
            Some(m) => format!("{} {m}", f.name),
            None => f.name.to_string(),
        };
        flags.push_str(&format!("  {head:<22} {}\n", f.help));
    }
    format!(
        "usage: kc_served [FLAG ...]\n\
         reads line-delimited JSON prediction requests from stdin \
         (one response line per request line, in order; EOF drains \
         and exits) unless --listen is given\n{flags}"
    )
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    eprint!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Options {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--help" || arg == "-h" {
            print!("{}", usage_text());
            std::process::exit(0);
        }
        let Some(flag) = FLAGS.iter().find(|f| f.name == arg) else {
            die(format!("unknown argument '{arg}'"));
        };
        let value = match flag.metavar {
            Some(_) => {
                i += 1;
                match args.get(i) {
                    Some(v) => v.as_str(),
                    None => die(format!("{arg} needs a value")),
                }
            }
            None => "",
        };
        if let Err(e) = (flag.apply)(&mut o, value) {
            die(e);
        }
        i += 1;
    }
    if let Some(format) = o.store_format.take() {
        eprintln!("warning: --store-format is deprecated; spell the spec as --store {format}:PATH");
        o.store = match o.store.take() {
            Some(spec) => Some(spec.with_legacy_format(format).unwrap_or_else(|e| die(e))),
            None => die("--store-format needs --store".to_string()),
        };
    }
    o
}

/// Point SIGTERM at the server's shutdown flag, so the TCP accept
/// loop stops and drains.  Pipe mode drains at EOF, which is the
/// reliable shutdown path there (a blocked stdin read resumes after
/// the handler runs and keeps the process alive until the pipe
/// closes).
#[cfg(unix)]
fn install_sigterm(flag: Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::OnceLock;
    static FLAG: OnceLock<Arc<std::sync::atomic::AtomicBool>> = OnceLock::new();
    let _ = FLAG.set(flag);
    extern "C" fn on_sigterm(_sig: i32) {
        if let Some(f) = FLAG.get() {
            f.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm(_flag: Arc<std::sync::atomic::AtomicBool>) {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    let mut runner = Runner::default();
    if opts.noise_free {
        runner.machine = runner.machine.without_noise();
    }
    if let Some(reps) = opts.reps {
        runner.reps = reps;
    }

    let store: Option<Arc<dyn CellBackend>> = opts.store.as_ref().map(|spec| {
        let options = StoreOptions {
            compact_ratio: opts.compact_ratio,
        };
        spec.open_with(options).unwrap_or_else(|e| {
            eprintln!("error: cannot open cell store {}: {e}", spec.path.display());
            std::process::exit(2);
        })
    });
    let history_path: Option<PathBuf> = opts
        .history
        .clone()
        .or_else(|| opts.store.as_ref().map(|spec| history_sidecar(&spec.path)));

    let mut builder = Campaign::builder(runner);
    if let Some(s) = &store {
        builder = builder.backend(Box::new(Arc::clone(s)));
    }
    if let Some(jobs) = opts.jobs {
        builder = builder.jobs(jobs);
    }
    let campaign = Arc::new(builder.build());
    if let Some(s) = &store {
        // store diagnostics (read errors answered as misses) land in
        // the campaign's event stream instead of stderr
        s.attach_sink(campaign.sink());
    }
    let trace_sink: Option<Arc<JsonLinesSink>> = opts.trace.as_ref().map(|p| {
        let sink = Arc::new(JsonLinesSink::new(p.clone()));
        campaign.attach_sink(sink.clone());
        sink
    });

    let mut config = ServerConfig::default();
    if let Some(n) = opts.max_inflight {
        config.max_inflight = n;
    }
    if let Some(n) = opts.max_batch {
        config.max_batch = n;
    }
    let engine = Arc::new(CampaignEngine::new(campaign.clone()));
    let server = Server::new(engine, config);
    if let Some(sink) = &trace_sink {
        // request events land in the same trace as the cell spans
        server.attach_sink(sink.clone() as Arc<dyn kc_core::TelemetrySink>);
    }
    install_sigterm(server.shutdown_flag());

    let served = match &opts.listen {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "[serve] listening on {} (jobs {}, max inflight {}, max batch {})",
                listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.clone()),
                campaign.jobs(),
                config.max_inflight,
                config.max_batch,
            );
            server.serve_tcp(listener)
        }
        None => {
            let stdin = std::io::stdin();
            server.serve_pipe(stdin.lock(), std::io::stdout())
        }
    };
    if let Err(e) = served {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
    // drain every admitted request, then stop the batcher
    server.shutdown();

    let report = server.metrics().report();
    let cache = campaign.cache_stats();
    eprintln!(
        "[cache] {} requests, {} memory hits, {} backend hits, {} executed",
        cache.requests, cache.hits, cache.backend_hits, cache.executed
    );
    let wants_summary = opts.metrics || trace_sink.is_some() || history_path.is_some();
    let summary = wants_summary.then(|| {
        let mut o = SummaryOpts::top(SUMMARY_TOP_N);
        if trace_sink.is_some() {
            o = o.recorded();
        }
        campaign.summary(o)
    });
    if opts.metrics {
        eprint!("[metrics]\n{report}");
        eprint!("{}", summary.as_ref().expect("summary computed"));
    }
    if let Some(sink) = &trace_sink {
        campaign
            .flush_sinks()
            .expect("failed to write telemetry trace");
        eprintln!(
            "[trace] {} events written to {}",
            sink.len(),
            sink.path().display()
        );
    }
    if let (Some(s), Some(spec)) = (&store, &opts.store) {
        s.flush().expect("failed to save cell store");
        let b = s.stats();
        let errors = if b.read_errors > 0 {
            format!(", {} read errors", b.read_errors)
        } else {
            String::new()
        };
        eprintln!(
            "[store] {} cells saved to {} ({}, {} loads, {} hits, {} stores{errors})",
            s.len(),
            spec.path.display(),
            s.format(),
            b.loads,
            b.load_hits,
            b.stores
        );
    }
    if let Some(p) = &history_path {
        let summary = summary.expect("summary computed");
        let mut record = HistoryRecord::from_events(summary, &campaign.telemetry_events())
            .with_jobs(campaign.jobs() as u64);
        if let Some(s) = &store {
            record = record.with_backend(s.stats().into());
        }
        RunHistory::append(p, &record).expect("failed to append run history");
        eprintln!(
            "[history] run {} appended to {} ({} cell durations)",
            RunHistory::load(p).map(|h| h.len()).unwrap_or(0),
            p.display(),
            record.cell_durations.len()
        );
    }
    eprintln!(
        "[serve] {} request(s) answered (ok {}, error {}, overloaded {}); exiting 0",
        report.requests, report.ok, report.errors, report.overloaded
    );
}
