//! `kc_trace` — render a `--trace` JSON-lines file as a span timeline.
//!
//! ```text
//! kc_trace render TRACE.jsonl [-o OUT.svg]
//! ```
//!
//! The campaign trace (`paper_tables --trace`, `kc_served --trace`)
//! is a stream of [`TelemetryEvent`]s without absolute timestamps:
//! canonical order plus per-event durations.  `render` reconstructs a
//! timeline from exactly that — one horizontal lane per executing
//! worker, `CellExecuted` spans packed end to end in stream order
//! with width proportional to `duration_secs`, plus a `serve` lane
//! for `RequestServed` events — and writes it as one self-contained
//! SVG (no external scripts or styles; hovering a span shows its
//! cell key and duration via a `<title>` tooltip).
//!
//! The picture answers the questions a regression report raises:
//! which workers carried the run, where the slow cells sit, and how
//! evenly the scheduler spread them.  Output goes to `-o` (or stdout
//! when omitted); a one-line summary of lanes and span counts goes
//! to stderr.

use kc_core::{read_jsonl, TelemetryEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: kc_trace render TRACE.jsonl [-o OUT.svg]\n\
         \n\
         renders a campaign --trace file as a self-contained SVG span\n\
         timeline: one lane per worker, CellExecuted spans packed in\n\
         stream order (width = simulated duration), plus a serve lane\n\
         for RequestServed events; writes to stdout unless -o is given"
    );
    std::process::exit(2);
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    usage();
}

/// One rendered span: a placed interval on a named lane.
struct Span {
    lane: String,
    start: f64,
    duration: f64,
    label: String,
    color: &'static str,
}

/// A muted, print-safe palette; spans are colored by benchmark (the
/// first `|`-segment of the cell key) so one kernel family reads as
/// one hue across lanes.
const PALETTE: [&str; 6] = [
    "#4878a8", "#d1605e", "#6aa56a", "#e0a352", "#8b7cb3", "#8a8a8a",
];

/// Status colors for the serve lane.
fn status_color(status: &str) -> &'static str {
    match status {
        "ok" => "#6aa56a",
        "overloaded" => "#e0a352",
        "deadline" => "#8b7cb3",
        _ => "#d1605e",
    }
}

/// Pack events into per-lane spans, stream order, no gaps.
fn layout(events: &[TelemetryEvent]) -> Vec<Span> {
    let mut palette: BTreeMap<String, &'static str> = BTreeMap::new();
    let mut cursors: BTreeMap<String, f64> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in events {
        match event {
            TelemetryEvent::CellExecuted {
                key,
                duration_secs,
                worker,
            } => {
                let benchmark = key.split('|').next().unwrap_or("").to_string();
                let next = palette.len() % PALETTE.len();
                let color = *palette.entry(benchmark).or_insert(PALETTE[next]);
                let lane = if worker.is_empty() { "worker" } else { worker };
                let cursor = cursors.entry(lane.to_string()).or_insert(0.0);
                spans.push(Span {
                    lane: lane.to_string(),
                    start: *cursor,
                    duration: *duration_secs,
                    label: format!("{key} — {:.3} ms", duration_secs * 1e3),
                    color,
                });
                *cursor += duration_secs;
            }
            TelemetryEvent::RequestServed {
                request,
                status,
                batch_size,
                duration_secs,
                ..
            } => {
                let cursor = cursors.entry("serve".to_string()).or_insert(0.0);
                spans.push(Span {
                    lane: "serve".to_string(),
                    start: *cursor,
                    duration: *duration_secs,
                    label: format!(
                        "{request} [{status}, batch {batch_size}] — {:.3} ms",
                        duration_secs * 1e3
                    ),
                    color: status_color(status),
                });
                *cursor += duration_secs;
            }
            _ => {}
        }
    }
    spans
}

/// Minimal XML text escaping for labels embedded in the SVG.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

const LANE_HEIGHT: f64 = 22.0;
const LANE_GAP: f64 = 6.0;
const MARGIN_LEFT: f64 = 150.0;
const MARGIN_TOP: f64 = 34.0;
const PLOT_WIDTH: f64 = 1000.0;

/// Render packed spans as one self-contained SVG document.
fn render_svg(spans: &[Span], source: &Path) -> String {
    let mut lanes: Vec<&str> = Vec::new();
    let mut extent = 0.0f64;
    for s in spans {
        if !lanes.contains(&s.lane.as_str()) {
            lanes.push(&s.lane);
        }
        extent = extent.max(s.start + s.duration);
    }
    if extent <= 0.0 {
        extent = 1.0;
    }
    let scale = PLOT_WIDTH / extent;
    let height = MARGIN_TOP + lanes.len().max(1) as f64 * (LANE_HEIGHT + LANE_GAP) + 24.0;
    let width = MARGIN_LEFT + PLOT_WIDTH + 20.0;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(
        svg,
        "  <title>kc trace timeline: {}</title>",
        escape(&source.display().to_string())
    );
    let _ = writeln!(
        svg,
        "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>"
    );
    let _ = writeln!(
        svg,
        "  <text x=\"{MARGIN_LEFT}\" y=\"16\" fill=\"#333\">{} — {} spans, {} lanes, {:.3} ms packed extent</text>",
        escape(&source.display().to_string()),
        spans.len(),
        lanes.len(),
        extent * 1e3,
    );
    // axis ticks: 5 even divisions of the packed extent
    for tick in 0..=5 {
        let secs = extent * tick as f64 / 5.0;
        let x = MARGIN_LEFT + secs * scale;
        let _ = writeln!(
            svg,
            "  <line x1=\"{x:.1}\" y1=\"{MARGIN_TOP}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>",
            height - 24.0
        );
        let _ = writeln!(
            svg,
            "  <text x=\"{x:.1}\" y=\"{:.1}\" fill=\"#888\" text-anchor=\"middle\">{:.2}ms</text>",
            height - 8.0,
            secs * 1e3
        );
    }
    for (i, lane) in lanes.iter().enumerate() {
        let y = MARGIN_TOP + i as f64 * (LANE_HEIGHT + LANE_GAP);
        let _ = writeln!(
            svg,
            "  <text x=\"{:.1}\" y=\"{:.1}\" fill=\"#333\" text-anchor=\"end\">{}</text>",
            MARGIN_LEFT - 8.0,
            y + LANE_HEIGHT - 7.0,
            escape(lane)
        );
        for s in spans.iter().filter(|s| s.lane == **lane) {
            let x = MARGIN_LEFT + s.start * scale;
            let w = (s.duration * scale).max(1.0);
            let _ = writeln!(
                svg,
                "  <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{LANE_HEIGHT}\" \
                 fill=\"{}\" stroke=\"#fff\" stroke-width=\"0.5\"><title>{}</title></rect>",
                s.color,
                escape(&s.label)
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn render(trace: &Path, out: Option<&Path>) {
    let events =
        read_jsonl(trace).unwrap_or_else(|e| die(format!("cannot read {}: {e}", trace.display())));
    let spans = layout(&events);
    let lanes: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.lane.as_str()).collect();
    let svg = render_svg(&spans, trace);
    match out {
        Some(path) => std::fs::write(path, &svg)
            .unwrap_or_else(|e| die(format!("cannot write {}: {e}", path.display()))),
        None => print!("{svg}"),
    }
    eprintln!(
        "[kc_trace] {} events -> {} spans on {} lanes{}",
        events.len(),
        spans.len(),
        lanes.len(),
        out.map(|p| format!(" -> {}", p.display()))
            .unwrap_or_default(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("render") => {
            let mut trace: Option<PathBuf> = None;
            let mut out: Option<PathBuf> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--help" | "-h" => usage(),
                    "-o" | "--out" => {
                        i += 1;
                        let Some(v) = args.get(i) else {
                            die("-o needs a path".into());
                        };
                        out = Some(PathBuf::from(v));
                    }
                    flag if flag.starts_with('-') => die(format!("unknown flag '{flag}'")),
                    path if trace.is_none() => trace = Some(PathBuf::from(path)),
                    extra => die(format!("unexpected argument '{extra}'")),
                }
                i += 1;
            }
            let Some(trace) = trace else {
                die("render needs a TRACE.jsonl path".into());
            };
            render(&trace, out.as_deref());
        }
        Some("--help") | Some("-h") | None => usage(),
        Some(other) => die(format!("unknown subcommand '{other}'")),
    }
}
