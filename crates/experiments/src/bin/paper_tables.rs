//! Regenerate the paper's tables from the command line.
//!
//! ```text
//! paper_tables [EXPERIMENT ...] [--noise-free] [--out DIR] [--reps N]
//!
//! EXPERIMENT: classes | bt-s | bt-w | bt-a | sp-w | sp-a | sp-b |
//!             lu-w | lu-a | lu-b | transitions | ablations | all
//! ```
//!
//! With `--out DIR`, each experiment additionally writes `<id>.txt`
//! and `<id>.json` artifacts into DIR (consumed by EXPERIMENTS.md).

use kc_experiments::render::Artifact;
use kc_experiments::{
    ablations, analytic, bt, granularity, lu, machines, reuse, sp, transitions, Runner,
};
use kc_npb::{Benchmark, Class};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: paper_tables [EXPERIMENT ...] [--noise-free] [--out DIR] [--reps N]\n\
         experiments: classes bt-s bt-w bt-a sp-w sp-a sp-b lu-w lu-a lu-b transitions ablations analytic reuse machines granularity all"
    );
    std::process::exit(2);
}

fn classes_tables() -> String {
    let mut s = String::new();
    for (name, b, classes) in [
        (
            "Table 1: Data sets used with the NPB BT",
            Benchmark::Bt,
            vec![Class::S, Class::W, Class::A],
        ),
        (
            "Table 5: Data sets used with the NPB SP",
            Benchmark::Sp,
            vec![Class::W, Class::A, Class::B],
        ),
        (
            "Table 7: Data sets used with the NPB LU",
            Benchmark::Lu,
            vec![Class::W, Class::A, Class::B],
        ),
    ] {
        s.push_str(name);
        s.push('\n');
        for c in classes {
            let p = b.problem(c);
            s.push_str(&format!(
                "  {c}   {n} x {n} x {n}   ({iters} loop iterations)\n",
                n = p.size,
                iters = p.iterations
            ));
        }
        s.push('\n');
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut runner = Runner::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--noise-free" => runner.machine = runner.machine.clone().without_noise(),
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--reps" => {
                i += 1;
                runner.reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            e if e.starts_with('-') => usage(),
            e => experiments.push(e.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "classes",
            "bt-s",
            "bt-w",
            "bt-a",
            "sp-w",
            "sp-a",
            "sp-b",
            "lu-w",
            "lu-a",
            "lu-b",
            "transitions",
            "ablations",
            "analytic",
            "reuse",
            "machines",
            "granularity",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for exp in &experiments {
        let started = std::time::Instant::now();
        let artifact: Option<Artifact> = match exp.as_str() {
            "classes" => {
                println!("{}", classes_tables());
                None
            }
            "bt-s" => Some(Artifact::from_pair("table2_bt_s", &bt::table2(&runner))),
            "bt-w" => Some(Artifact::from_pair("table3_bt_w", &bt::table3(&runner))),
            "bt-a" => Some(Artifact::from_pair("table4_bt_a", &bt::table4(&runner))),
            "sp-w" => Some(Artifact::from_pair(
                "table6a_sp_w",
                &sp::table6(&runner, Class::W),
            )),
            "sp-a" => Some(Artifact::from_pair(
                "table6b_sp_a",
                &sp::table6(&runner, Class::A),
            )),
            "sp-b" => Some(Artifact::from_pair(
                "table6c_sp_b",
                &sp::table6(&runner, Class::B),
            )),
            "lu-w" => Some(Artifact::from_pair(
                "table8a_lu_w",
                &lu::table8(&runner, Class::W),
            )),
            "lu-a" => Some(Artifact::from_pair(
                "table8b_lu_a",
                &lu::table8(&runner, Class::A),
            )),
            "lu-b" => Some(Artifact::from_pair(
                "table8c_lu_b",
                &lu::table8(&runner, Class::B),
            )),
            "transitions" => {
                let classes = [Class::S, Class::W, Class::A];
                let procs = [4, 9, 16, 25];
                Some(Artifact::from_couplings(
                    "transitions",
                    vec![
                        transitions::transition_table(&runner, &classes, &procs),
                        transitions::regime_table(&runner, &classes, &procs),
                    ],
                ))
            }
            "analytic" => {
                let mut a = Artifact::from_couplings("analytic", vec![]);
                a.predictions = vec![
                    analytic::analytic_table(&runner, Benchmark::Bt, Class::W, &[4, 9, 16, 25], 3),
                    analytic::analytic_table(&runner, Benchmark::Sp, Class::A, &[4, 9, 16, 25], 5),
                    analytic::analytic_table(&runner, Benchmark::Lu, Class::A, &[4, 8, 16, 32], 3),
                ];
                Some(a)
            }
            "granularity" => {
                let (c, p) = granularity::granularity_tables(&runner, Class::W, &[4, 9, 16]);
                let mut a = Artifact::from_couplings("granularity", vec![c]);
                a.predictions = vec![p];
                Some(a)
            }
            "machines" => {
                let (t1, o1) =
                    machines::machine_comparison(Benchmark::Bt, Class::W, 9, 3, runner.reps);
                let (t2, o2) =
                    machines::machine_comparison(Benchmark::Lu, Class::W, 8, 3, runner.reps);
                for (label, o) in [("BT W/9", &o1), ("LU W/8", &o2)] {
                    let (pr, ar) = machines::relative_performance(o);
                    println!(
                        "{label}: predicted machine ratio {pr:.3}, actual {ar:.3}                          ({:.1}% off)",
                        100.0 * (pr - ar).abs() / ar
                    );
                }
                Some(Artifact::from_couplings("machines", vec![t1, t2]))
            }
            "reuse" => {
                let (t1, _) = reuse::proc_transfer_table(
                    &runner,
                    Benchmark::Bt,
                    Class::W,
                    &[4, 9, 16, 25],
                    3,
                );
                let (t2, _) = reuse::class_transfer_table(
                    &runner,
                    Benchmark::Bt,
                    &[Class::S, Class::W, Class::A],
                    16,
                    3,
                );
                let (t3, _) = reuse::proc_transfer_table(
                    &runner,
                    Benchmark::Lu,
                    Class::A,
                    &[4, 8, 16, 32],
                    3,
                );
                Some(Artifact::from_couplings("reuse", vec![t1, t2, t3]))
            }
            "ablations" => Some(Artifact::from_couplings(
                "ablations",
                vec![
                    ablations::chain_length_sweep(&runner, Benchmark::Bt, Class::W, 9),
                    ablations::cache_capacity_sweep(
                        &runner,
                        &[1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20],
                    ),
                    ablations::contention_sweep(&runner, &[0.0, 0.01, 0.02, 0.05, 0.1]),
                    ablations::noise_sweep(&runner, &[0.0, 1.0, 4.0, 16.0]),
                ],
            )),
            other => {
                eprintln!("unknown experiment '{other}'");
                usage();
            }
        };
        if let Some(a) = artifact {
            println!("{}", a.render_text());
            if let Some(dir) = &out {
                a.write_to(dir).expect("failed to write artifacts");
            }
            eprintln!("[{exp}] done in {:.1}s", started.elapsed().as_secs_f64());
        }
    }
}
